//! Property battery for the online energy-budget controller.
//!
//! Three contracts, fuzzed over the vendored deterministic proptest shim:
//!
//! 1. **Monotone in headroom** — from any identical controller state, a
//!    costlier observation (less budget headroom) never yields a *looser*
//!    setpoint: `ratio_scale`, `frequency_cap` and `watt_cap` are
//!    non-increasing in observed spend, `austerity` non-decreasing, and
//!    `exhausted` is upward-closed.
//! 2. **Split recovery** — driven by readings synthesised from an affine
//!    power model `J(t) = base·t + dynamic·busy(t)`, the controller's
//!    forgetting least-squares [`SplitEstimator`] recovers `(base, dynamic)`
//!    to within a tight relative epsilon once the utilisation trace has
//!    rank.
//! 3. **Bit-deterministic replay** — the controller is pure f64 state: the
//!    same observation sequence replays to bit-identical setpoints and
//!    spend, which is what lets the conformance kit and the budget bench
//!    compare traces with `to_bits` instead of tolerances.

// The vendored proptest shim expands token-by-token; several property
// blocks with doc comments exceed the default recursion limit.
#![recursion_limit = "512"]

use proptest::prelude::*;

use significance_repro::energy::{
    BudgetConfig, BudgetController, BudgetTarget, EnergyBreakdown, EnergyReading,
};

/// Wall seconds between consecutive observations.
const STEP_SECONDS: f64 = 0.25;

/// A cumulative reading at `elapsed` seconds with `busy` busy-core-seconds
/// and `joules` total spend.
fn reading(elapsed: f64, busy: f64, joules: f64) -> EnergyReading {
    EnergyReading {
        wall_seconds: elapsed,
        busy_core_seconds: busy,
        joules,
        average_watts: if elapsed > 0.0 { joules / elapsed } else { 0.0 },
        breakdown: EnergyBreakdown {
            dynamic_joules: joules,
            ..Default::default()
        },
    }
}

fn joule_config(joules: f64, horizon_seconds: f64) -> BudgetConfig {
    BudgetConfig::new(BudgetTarget::TotalJoules {
        joules,
        horizon_seconds,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fork one controller after an arbitrary shared prefix and feed the two
    /// copies a cheap vs a costly final observation: every setpoint field
    /// must move (weakly) in the tightening direction on the costly branch.
    #[test]
    fn setpoints_are_monotone_in_headroom(
        budget_joules in 5.0f64..50.0,
        prefix_watts in collection::vec(0.5f64..10.0, 0..20),
        final_watts_a in 0.5f64..10.0,
        final_watts_b in 0.5f64..10.0,
        utilisation in 0.0f64..2.0,
    ) {
        let horizon = (prefix_watts.len() + 2) as f64 * STEP_SECONDS * 4.0;
        let mut controller = BudgetController::new(joule_config(budget_joules, horizon));
        let mut elapsed = 0.0f64;
        let mut joules = 0.0f64;
        for watts in &prefix_watts {
            elapsed += STEP_SECONDS;
            joules += watts * STEP_SECONDS;
            controller.observe(elapsed, &reading(elapsed, utilisation * elapsed, joules));
        }
        let lo_watts = final_watts_a.min(final_watts_b);
        let hi_watts = final_watts_a.max(final_watts_b);
        elapsed += STEP_SECONDS;
        let busy = utilisation * elapsed;

        // `BudgetController` is `Copy`: fork the exact state.
        let mut fork_lo = controller;
        let mut fork_hi = controller;
        let sp_lo = fork_lo.observe(elapsed, &reading(elapsed, busy, joules + lo_watts * STEP_SECONDS));
        let sp_hi = fork_hi.observe(elapsed, &reading(elapsed, busy, joules + hi_watts * STEP_SECONDS));

        prop_assert!(
            sp_hi.austerity >= sp_lo.austerity,
            "less headroom lowered austerity: {} -> {}",
            sp_lo.austerity,
            sp_hi.austerity
        );
        prop_assert!(
            sp_hi.ratio_scale <= sp_lo.ratio_scale,
            "less headroom raised the ratio scale: {} -> {}",
            sp_lo.ratio_scale,
            sp_hi.ratio_scale
        );
        prop_assert!(
            sp_hi.frequency_cap <= sp_lo.frequency_cap,
            "less headroom raised the frequency cap: {} -> {}",
            sp_lo.frequency_cap,
            sp_hi.frequency_cap
        );
        prop_assert!(
            sp_hi.watt_cap <= sp_lo.watt_cap,
            "spending more raised the planned watt cap: {} -> {}",
            sp_lo.watt_cap,
            sp_hi.watt_cap
        );
        // Exhaustion is upward-closed in spend.
        prop_assert!(!sp_lo.exhausted || sp_hi.exhausted);
        // And both setpoints respect the configured floors.
        for sp in [sp_lo, sp_hi] {
            let config = controller.config();
            prop_assert!(sp.ratio_scale >= config.min_ratio_scale - 1e-12);
            prop_assert!(sp.ratio_scale <= 1.0 + 1e-12);
            prop_assert!(sp.frequency_cap >= config.cap_floor - 1e-12);
            prop_assert!(sp.frequency_cap <= 1.0 + 1e-12);
        }
    }

    /// Readings synthesised from an affine power model: the online
    /// forgetting-least-squares estimator must recover the model's
    /// static/dynamic split almost exactly (the trace is noise-free, so the
    /// only error budget is floating-point conditioning).
    #[test]
    fn split_estimate_converges_to_the_configured_model_split(
        base_watts in 2.0f64..30.0,
        dynamic_watts in 0.5f64..8.0,
        utilisations in collection::vec(0.0f64..4.0, 8..64),
    ) {
        // A watt envelope keeps the controller observing forever (no
        // horizon); the estimator rides along on every observation.
        let mut controller = BudgetController::new(BudgetConfig::new(
            BudgetTarget::WattEnvelope { watts: base_watts },
        ));
        let mut elapsed = 0.0f64;
        let mut busy = 0.0f64;
        // Two fixed anchor utilisations guarantee the trace has rank even if
        // every generated utilisation collapses to the same value.
        for u in [0.0, 2.0].iter().chain(utilisations.iter()) {
            elapsed += STEP_SECONDS;
            busy += u * STEP_SECONDS;
            let joules = base_watts * elapsed + dynamic_watts * busy;
            controller.observe(elapsed, &reading(elapsed, busy, joules));
        }
        let (fitted_base, fitted_dynamic) = controller
            .estimator()
            .split()
            .expect("anchored trace has rank");
        prop_assert!(
            (fitted_base - base_watts).abs() <= 1e-3 * base_watts,
            "base split off: fitted {fitted_base}, model {base_watts}"
        );
        prop_assert!(
            (fitted_dynamic - dynamic_watts).abs() <= 1e-3 * dynamic_watts,
            "dynamic split off: fitted {fitted_dynamic}, model {dynamic_watts}"
        );
    }

    /// The controller replays bit-for-bit: identical observation sequences
    /// produce identical setpoints and spend down to the last mantissa bit.
    #[test]
    fn controller_replay_is_bit_deterministic(
        budget_joules in 1.0f64..100.0,
        watts in collection::vec(0.1f64..20.0, 1..40),
        utilisation in 0.0f64..2.0,
    ) {
        let horizon = watts.len() as f64 * STEP_SECONDS * 2.0;
        let config = joule_config(budget_joules, horizon);
        let mut first = BudgetController::new(config);
        let mut second = BudgetController::new(config);
        let mut elapsed = 0.0f64;
        let mut joules = 0.0f64;
        for w in &watts {
            elapsed += STEP_SECONDS;
            joules += w * STEP_SECONDS;
            let r = reading(elapsed, utilisation * elapsed, joules);
            let a = first.observe(elapsed, &r);
            let b = second.observe(elapsed, &r);
            prop_assert_eq!(a.ratio_scale.to_bits(), b.ratio_scale.to_bits());
            prop_assert_eq!(a.frequency_cap.to_bits(), b.frequency_cap.to_bits());
            prop_assert_eq!(a.watt_cap.to_bits(), b.watt_cap.to_bits());
            prop_assert_eq!(a.austerity.to_bits(), b.austerity.to_bits());
            prop_assert_eq!(a.exhausted, b.exhausted);
        }
        prop_assert_eq!(
            first.spent_joules().to_bits(),
            second.spent_joules().to_bits()
        );
        prop_assert_eq!(
            first.setpoint().austerity.to_bits(),
            second.setpoint().austerity.to_bits()
        );
    }
}

//! Cross-crate integration tests: runtime policies driving real kernels,
//! with energy accounting and quality evaluation end to end.

use significance_repro::energy::{EnergyMeter, PowerModel};
use significance_repro::kernels::sobel::Sobel;
use significance_repro::kernels::{all_benchmarks, Approach, Benchmark, Degree, ExecutionConfig};
use significance_repro::prelude::*;

fn workers() -> usize {
    ExecutionConfig::default_workers().min(4)
}

#[test]
fn every_benchmark_runs_under_every_policy() {
    for benchmark in all_benchmarks() {
        // Use the bench-scale inputs via default configs but only the
        // Aggressive degree (cheapest) to keep the test fast.
        for policy in [
            Policy::Gtb { buffer_size: 16 },
            Policy::GtbMaxBuffer,
            Policy::Lqh,
        ] {
            let run = benchmark.run(&ExecutionConfig::significance(
                workers(),
                policy,
                Degree::Aggressive,
            ));
            assert!(
                !run.values.is_empty(),
                "{} produced no output under {:?}",
                benchmark.name(),
                policy
            );
            assert!(
                run.tasks.total > 0,
                "{} executed no tasks under {:?}",
                benchmark.name(),
                policy
            );
        }
    }
}

#[test]
fn quality_degrades_monotonically_with_degree_for_sobel() {
    let sobel = Sobel {
        width: 128,
        height: 128,
    };
    let reference = sobel.run(&ExecutionConfig::accurate(workers()));
    let mut previous = 0.0;
    for degree in [Degree::Mild, Degree::Medium, Degree::Aggressive] {
        let run = sobel.run(&ExecutionConfig::significance(
            workers(),
            Policy::GtbMaxBuffer,
            degree,
        ));
        let quality = sobel.quality(&reference, &run).value;
        assert!(
            quality + 1e-12 >= previous,
            "quality should not improve as approximation grows: {quality} < {previous}"
        );
        previous = quality;
    }
}

#[test]
fn approximate_execution_reduces_modelled_energy() {
    // Use the work-unit interpretation: fewer busy core-seconds at equal
    // wall time means less energy under any affine power model.
    let sobel = Sobel {
        width: 256,
        height: 256,
    };
    let accurate = sobel.run(&ExecutionConfig::significance(
        workers(),
        Policy::GtbMaxBuffer,
        Degree::Mild,
    ));
    let aggressive = sobel.run(&ExecutionConfig::significance(
        workers(),
        Policy::GtbMaxBuffer,
        Degree::Aggressive,
    ));
    assert!(
        aggressive.busy_core_seconds < accurate.busy_core_seconds,
        "aggressive approximation should do less work: {} vs {}",
        aggressive.busy_core_seconds,
        accurate.busy_core_seconds
    );
    let model = PowerModel::for_host();
    let wall = accurate
        .elapsed
        .as_secs_f64()
        .max(aggressive.elapsed.as_secs_f64());
    let e_accurate = model.energy_joules(wall, accurate.busy_core_seconds);
    let e_aggressive = model.energy_joules(wall, aggressive.busy_core_seconds);
    assert!(e_aggressive < e_accurate);
}

#[test]
fn energy_meter_integrates_runtime_busy_time() {
    let meter = EnergyMeter::new(PowerModel::for_host());
    let sobel = Sobel {
        width: 128,
        height: 128,
    };
    let run = sobel.run(&ExecutionConfig::significance(
        workers(),
        Policy::Lqh,
        Degree::Medium,
    ));
    meter.record_busy_secs(run.busy_core_seconds);
    let reading = meter.read_at(run.elapsed.as_secs_f64());
    assert!(reading.joules > 0.0);
    assert!(reading.busy_core_seconds > 0.0);
}

#[test]
fn perforation_baseline_is_available_where_the_paper_applies_it() {
    for benchmark in all_benchmarks() {
        let info = benchmark.info();
        if info.perforation_supported {
            let run = benchmark.run(&ExecutionConfig {
                workers: workers(),
                approach: Approach::Perforation {
                    degree: Degree::Aggressive,
                },
            });
            assert!(
                !run.values.is_empty(),
                "{} perforation run empty",
                info.name
            );
        } else {
            assert_eq!(
                info.name, "Fluidanimate",
                "only Fluidanimate lacks a perforation comparator"
            );
        }
    }
}

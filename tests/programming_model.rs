//! Integration tests of the programming model itself: pragma-style macros,
//! dependences, group barriers and ratio semantics, exercised through the
//! workspace façade crate exactly as a downstream user would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use significance_repro::core::{task, taskwait, DepKey, SharedGrid};
use significance_repro::prelude::*;

#[test]
fn pragma_style_pipeline_with_dependencies() {
    let rt = Runtime::builder().workers(4).policy(Policy::Lqh).build();
    let stage_a = DepKey::named("stage-a");
    let stage_b = DepKey::named("stage-b");
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));

    // Producer -> transformer -> consumer, wired purely through in/out keys.
    {
        let log = log.clone();
        task!(
            rt,
            out([stage_a]),
            body(move || log.lock().unwrap().push("produce"))
        );
    }
    {
        let log = log.clone();
        task!(rt, in([stage_a]), out([stage_b]), body(move || {
            log.lock().unwrap().push("transform")
        }));
    }
    {
        let log = log.clone();
        task!(rt, in([stage_b]), body(move || log.lock().unwrap().push("consume")));
    }
    taskwait!(rt);

    assert_eq!(
        *log.lock().unwrap(),
        vec!["produce", "transform", "consume"]
    );
}

#[test]
fn ratio_at_group_barrier_controls_accuracy_mix() {
    let rt = Runtime::builder()
        .workers(4)
        .policy(Policy::GtbMaxBuffer)
        .build();
    let group = rt.create_group("mix", 1.0);
    let accurate = Arc::new(AtomicUsize::new(0));
    let approximate = Arc::new(AtomicUsize::new(0));
    for i in 0..60u32 {
        let acc = accurate.clone();
        let apx = approximate.clone();
        task!(
            rt,
            significant(((i % 9) + 1) as f64 / 10.0),
            approxfun(move || {
                apx.fetch_add(1, Ordering::Relaxed);
            }),
            label(&group),
            body(move || {
                acc.fetch_add(1, Ordering::Relaxed);
            })
        );
    }
    taskwait!(rt, label(&group), ratio(0.25));
    assert_eq!(accurate.load(Ordering::Relaxed), 15);
    assert_eq!(approximate.load(Ordering::Relaxed), 45);
    let stats = rt.group_stats(&group);
    assert_eq!(
        stats.inverted, 0,
        "GTB Max-Buffer never inverts significance"
    );
}

#[test]
fn shared_grid_rows_written_by_parallel_tasks() {
    let rt = Runtime::builder().workers(4).build();
    let grid: SharedGrid<u32> = SharedGrid::new(32, 64, 0);
    let group = rt.create_group("grid", 1.0);
    for row in 0..32 {
        let mut writer = grid.row_writer(row);
        rt.task(move || {
            for (i, cell) in writer.as_mut_slice().iter_mut().enumerate() {
                *cell = (row * 1000 + i) as u32;
            }
        })
        .group(&group)
        .spawn();
    }
    rt.wait_group(&group);
    let data = grid.snapshot();
    assert_eq!(data[0], 0);
    assert_eq!(data[5 * 64 + 3], 5003);
    assert_eq!(data[31 * 64 + 63], 31063);
}

#[test]
fn special_significance_values_are_unconditional() {
    let rt = Runtime::builder()
        .workers(2)
        .policy(Policy::GtbMaxBuffer)
        .build();
    let group = rt.create_group("special", 0.5);
    let critical_ran = Arc::new(AtomicUsize::new(0));
    let negligible_ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..10 {
        let c = critical_ran.clone();
        rt.task(move || {
            c.fetch_add(1, Ordering::Relaxed);
        })
        .approx(|| {})
        .significance(1.0)
        .group(&group)
        .spawn();
        let n = negligible_ran.clone();
        rt.task(move || {
            n.fetch_add(1, Ordering::Relaxed);
        })
        .approx(|| {})
        .significance(0.0)
        .group(&group)
        .spawn();
    }
    rt.wait_group(&group);
    assert_eq!(critical_ran.load(Ordering::Relaxed), 10);
    assert_eq!(negligible_ran.load(Ordering::Relaxed), 0);
}

#[test]
fn unannotated_tasks_behave_like_a_plain_task_runtime() {
    // Without significance annotations and without ratios, the runtime is an
    // ordinary task-parallel runtime: everything runs accurately.
    let rt = Runtime::with_policy(Policy::Lqh);
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..200 {
        let c = counter.clone();
        rt.task(move || {
            c.fetch_add(1, Ordering::Relaxed);
        })
        .spawn();
    }
    rt.wait_all();
    assert_eq!(counter.load(Ordering::Relaxed), 200);
    assert_eq!(rt.stats().accurate(), 200);
    assert_eq!(rt.stats().approximate() + rt.stats().dropped(), 0);
}

//! Property-based tests (proptest) on the runtime's core invariants.

use proptest::prelude::*;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use significance_repro::prelude::*;
use significance_repro::quality::{psnr, relative_error};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every spawned task completes exactly once, whatever the mix of
    /// significances and whatever the ratio, under every policy.
    #[test]
    fn all_tasks_complete_exactly_once(
        task_count in 1usize..200,
        ratio in 0.0f64..=1.0,
        policy_index in 0usize..3,
        significances in proptest::collection::vec(0.0f64..=1.0, 1..200),
    ) {
        let policy = match policy_index {
            0 => Policy::Gtb { buffer_size: 16 },
            1 => Policy::GtbMaxBuffer,
            _ => Policy::Lqh,
        };
        let rt = Runtime::builder().workers(4).policy(policy).build();
        let group = rt.create_group("prop", ratio);
        let executions = Arc::new(AtomicUsize::new(0));
        for i in 0..task_count {
            let sig = significances[i % significances.len()];
            let acc = executions.clone();
            let apx = executions.clone();
            rt.task(move || { acc.fetch_add(1, Ordering::Relaxed); })
                .approx(move || { apx.fetch_add(1, Ordering::Relaxed); })
                .significance(sig)
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        prop_assert_eq!(stats.total(), task_count);
        // Every task ran exactly one body (none dropped: approx bodies exist).
        prop_assert_eq!(executions.load(Ordering::Relaxed), task_count);
        prop_assert_eq!(stats.dropped, 0);
    }

    /// GTB with an unbounded buffer meets the requested ratio (up to ceil
    /// rounding) and never inverts significance, for any task population.
    #[test]
    fn gtb_max_buffer_is_exact(
        task_count in 1usize..150,
        ratio in 0.0f64..=1.0,
    ) {
        let rt = Runtime::builder().workers(4).policy(Policy::GtbMaxBuffer).build();
        let group = rt.create_group("exact", ratio);
        for i in 0..task_count {
            // Significance in (0, 1) so the ratio fully decides the split.
            let sig = ((i % 9) + 1) as f64 / 10.0;
            rt.task(|| {}).approx(|| {}).significance(sig).group(&group).spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        let expected_accurate = (ratio * task_count as f64).ceil() as usize;
        prop_assert_eq!(stats.accurate, expected_accurate.min(task_count));
        prop_assert_eq!(stats.inverted, 0);
    }

    /// The relative-error metric is a metric-like score: zero iff identical,
    /// symmetric in the error magnitude, and monotone in uniform scaling of
    /// the perturbation.
    #[test]
    fn relative_error_is_sound(
        reference in proptest::collection::vec(1.0f64..1e3, 1..64),
        scale in 0.0f64..0.5,
    ) {
        let perturbed: Vec<f64> = reference.iter().map(|v| v * (1.0 + scale)).collect();
        let err = relative_error(&reference, &perturbed);
        prop_assert!((err - scale).abs() < 1e-9);
        prop_assert_eq!(relative_error(&reference, &reference), 0.0);
        let larger: Vec<f64> = reference.iter().map(|v| v * (1.0 + scale * 2.0)).collect();
        prop_assert!(relative_error(&reference, &larger) >= err);
    }

    /// PSNR decreases (PSNR^-1 increases) as uniform noise grows.
    #[test]
    fn psnr_monotone_in_noise(
        pixels in proptest::collection::vec(0.0f64..=255.0, 8..128),
        noise in 1.0f64..40.0,
    ) {
        let small: Vec<f64> = pixels.iter().map(|p| (p + noise * 0.5).min(255.0)).collect();
        let large: Vec<f64> = pixels.iter().map(|p| (p + noise).min(255.0)).collect();
        let p_small = psnr(&pixels, &small, 255.0);
        let p_large = psnr(&pixels, &large, 255.0);
        prop_assert!(p_small >= p_large);
    }
}

/// Non-proptest sanity check kept alongside: the achieved ratio reported by
/// group statistics is always consistent with the mode counts.
#[test]
fn achieved_ratio_is_consistent_with_counts() {
    let rt = Runtime::builder()
        .workers(2)
        .policy(Policy::GtbMaxBuffer)
        .build();
    let group = rt.create_group("consistency", 0.3);
    for i in 0..40u32 {
        rt.task(|| {})
            .approx(|| {})
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
    }
    rt.wait_group(&group);
    let stats = rt.group_stats(&group);
    let expected = stats.accurate as f64 / stats.total() as f64;
    assert!((stats.achieved_ratio() - expected).abs() < 1e-12);
}

//! Integration tests for the execution-environment layer: per-worker DVFS
//! frequency domains, governor behaviour under every policy, and the energy
//! report built from the per-worker shards.

use proptest::prelude::*;

use significance_repro::energy::{FrequencyScale, PowerModel};
use significance_repro::prelude::*;

const ALL_POLICIES: [Policy; 4] = [
    Policy::SignificanceAgnostic,
    Policy::Gtb { buffer_size: 16 },
    Policy::GtbMaxBuffer,
    Policy::Lqh,
];

fn runtime(policy: Policy) -> Runtime {
    Runtime::builder()
        .workers(2)
        .policy(policy)
        .governor(ApproxGovernor::new(0.5))
        .build()
}

/// Under every policy, exactly the tasks that execute non-accurately are
/// dispatched below nominal frequency. In particular a task that *has* an
/// approximate body but is promoted to exact execution (high significance,
/// ratio pressure, agnostic policy) must run at nominal.
#[test]
fn governor_scales_exactly_the_non_accurate_tasks_under_all_policies() {
    for policy in ALL_POLICIES {
        let rt = runtime(policy);
        let group = rt.create_group("gov", 0.4);
        for i in 0..200u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        rt.wait_all();
        let report = rt.energy_report();
        let stats = rt.stats();
        assert_eq!(
            report.scaled_tasks() as usize,
            stats.approximate() + stats.dropped(),
            "policy {policy:?}: scaled dispatches must equal non-accurate executions"
        );
        if policy == Policy::SignificanceAgnostic {
            assert_eq!(report.scaled_tasks(), 0, "agnostic runs everything exact");
        } else {
            assert!(
                report.scaled_tasks() > 0,
                "policy {policy:?} at ratio 0.4 must approximate some tasks"
            );
        }
    }
}

/// Critical tasks (significance 1.0) are never scaled, under any policy,
/// even when the ratio requests full approximation.
#[test]
fn critical_tasks_always_run_at_nominal_frequency() {
    for policy in ALL_POLICIES {
        let rt = runtime(policy);
        let group = rt.create_group("critical", 0.0);
        for _ in 0..50 {
            rt.task(|| {})
                .approx(|| {})
                .significance(1.0)
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        let report = rt.energy_report();
        assert_eq!(
            report.scaled_tasks(),
            0,
            "policy {policy:?}: critical tasks must stay at nominal frequency"
        );
        assert_eq!(rt.stats().accurate(), 50);
    }
}

/// The energy report conserves busy time: the per-worker shards fold to
/// exactly the busy core-seconds the scheduler statistics account, and the
/// per-worker modelled time never falls below the measured time.
#[test]
fn energy_report_conserves_busy_seconds_across_workers() {
    let rt = Runtime::builder()
        .workers(4)
        .policy(Policy::GtbMaxBuffer)
        .governor(SignificanceLadderGovernor::with_ladder(4, 0.5))
        .build();
    let group = rt.create_group("conserve", 0.5);
    for i in 0..300u32 {
        rt.task(|| std::thread::sleep(std::time::Duration::from_micros(120)))
            .approx(|| std::thread::sleep(std::time::Duration::from_micros(40)))
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
    }
    rt.wait_group(&group);
    let report = rt.energy_report();
    // One accounting shard per worker thread.
    assert_eq!(report.workers.len(), rt.workers());
    let folded: f64 = report.workers.iter().map(|w| w.busy_seconds).sum();
    assert!((folded - report.busy_seconds()).abs() < 1e-12);
    assert!(
        (report.busy_seconds() - rt.stats().busy_core_seconds()).abs() < 1e-9,
        "energy shards and scheduler stats disagree: {} vs {}",
        report.busy_seconds(),
        rt.stats().busy_core_seconds()
    );
    for worker in &report.workers {
        assert!(
            worker.modelled_busy_seconds >= worker.busy_seconds - 1e-12,
            "dilation can only extend modelled time"
        );
        assert!(
            (worker.accurate_busy_seconds + worker.approximate_busy_seconds)
                <= worker.modelled_busy_seconds + 1e-9
        );
    }
    assert!(report.modelled_wall_seconds() >= report.wall_seconds);
    let reading = report.reading();
    assert!(reading.joules > 0.0);
    assert!((reading.breakdown.total() - reading.joules).abs() < 1e-9);
}

/// The default (nominal) governor leaves the accounting identical to the
/// plain busy-time integration: no scaled tasks, no dilation, and the
/// reading's dynamic term equals busy × nominal active watts.
#[test]
fn nominal_governor_accounting_matches_plain_integration() {
    let model = PowerModel::for_host();
    let rt = Runtime::builder().workers(2).energy_model(model).build();
    for _ in 0..100 {
        rt.task(|| std::thread::sleep(std::time::Duration::from_micros(50)))
            .spawn();
    }
    rt.wait_all();
    let report = rt.energy_report();
    assert_eq!(report.scaled_tasks(), 0);
    assert!((report.modelled_busy_seconds() - report.busy_seconds()).abs() < 1e-9);
    let reading = report.reading();
    let expected_dynamic = report.busy_seconds() * model.active_watts_per_core;
    assert!(
        (reading.breakdown.dynamic_joules - expected_dynamic).abs()
            < 1e-6 * expected_dynamic.max(1.0),
        "dynamic {} vs expected {}",
        reading.breakdown.dynamic_joules,
        expected_dynamic
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dilating a fixed amount of work by running it at a lower frequency
    /// never decreases the total modelled energy once static power is
    /// accounted over the dilated runtime: with the testbed coefficients the
    /// static term (21 W/socket) dominates the dynamic savings
    /// (≤ 1.4 · 6.6 W per core) at every ratio.
    #[test]
    fn dilated_runtimes_never_decrease_modelled_energy_at_fixed_work(
        ratio in 0.05f64..=1.0,
        work_seconds in 0.001f64..100.0,
    ) {
        let model = PowerModel {
            sockets: 1,
            cores_per_socket: 1,
            static_watts_per_socket: 21.0,
            active_watts_per_core: 6.6,
            idle_watts_per_core: 1.4,
        };
        let scale = FrequencyScale::new(ratio);
        let dilated = work_seconds * scale.time_dilation();
        // The work runs alone on the core: wall time equals (dilated) busy
        // time, priced by the frequency-scaled model.
        let scaled_energy = scale.apply(&model).energy_joules(dilated, dilated);
        let nominal_energy = model.energy_joules(work_seconds, work_seconds);
        prop_assert!(
            scaled_energy >= nominal_energy - 1e-9,
            "ratio {ratio}: dilated run modelled {scaled_energy} J < nominal {nominal_energy} J"
        );
    }

    /// The dynamic-only term, by contrast, never increases when frequency
    /// drops (for any power exponent ≥ 1): that asymmetry — dynamic savings
    /// vs static cost — is exactly the race-to-idle trade-off the report
    /// models.
    #[test]
    fn frequency_scaling_never_increases_dynamic_energy_per_work(
        ratio in 0.05f64..=1.0,
        exponent in 1.0f64..3.0,
    ) {
        let scale = FrequencyScale::with_exponent(ratio, exponent);
        prop_assert!(scale.dynamic_energy_factor() <= 1.0 + 1e-12);
    }
}

//! Governor conformance test kit.
//!
//! **This file is the template for every future [`Governor`]**: add a row to
//! [`all_governors`] and the new governor is automatically run through the
//! shared invariant set every CI run. The invariants are checked at three
//! levels:
//!
//! 1. **decision level** — a grid of dispatch contexts through
//!    [`Governor::decide`]: critical/accurate tasks are never scaled and
//!    never raced, no decision overclocks, and no executed frequency step
//!    increases dynamic energy at fixed work;
//! 2. **environment level** — a deterministic dispatch/record script through
//!    the runtime's real [`ExecutionEnv`] accounting (synthetic durations,
//!    no scheduler noise): busy-seconds conservation across shards, dilation
//!    monotonicity, dynamic energy bounded by the nominal baseline, and the
//!    reported transition count matching an independently replayed
//!    frequency-change count;
//! 3. **runtime level** — a live workload on the full scheduler: the energy
//!    shards must conserve the busy seconds the scheduler statistics
//!    account, and an all-critical group must execute entirely at nominal.
//!
//! Property tests additionally pin the [`AdaptiveGovernor`]'s hysteresis
//! contract: under *any* oscillating significance input, executed-frequency
//! changes are bounded by `dispatches / hysteresis + 1` per worker domain.

// The vendored proptest shim expands token-by-token; two property blocks
// with doc comments exceed the default recursion limit.
#![recursion_limit = "512"]

use std::sync::Arc;

use proptest::prelude::*;

use significance_repro::core::{
    AdaptiveGovernor, ApproxGovernor, DispatchContext, ExecutionEnv, FrequencyCapGovernor,
    Governor, NominalGovernor, RaceToIdleGovernor, SignificanceLadderGovernor,
};
use significance_repro::energy::{
    BudgetConfig, BudgetController, BudgetTarget, EnergyReading, PowerModel, SleepState,
    TransitionCost,
};
use significance_repro::prelude::*;

/// Workers used by the deterministic environment scripts.
const WORKERS: usize = 2;
/// Hysteresis configured on the adaptive governor under test.
const HYSTERESIS: u32 = 4;

fn test_model() -> PowerModel {
    PowerModel {
        sockets: 1,
        cores_per_socket: WORKERS,
        static_watts_per_socket: 10.0,
        active_watts_per_core: 6.6,
        idle_watts_per_core: 1.0,
    }
}

/// A named governor factory row of the conformance kit.
type GovernorCase = (&'static str, Box<dyn Fn() -> Arc<dyn Governor>>);

/// The five shipped governors, by factory (stateful governors — the
/// adaptive's hysteresis domains — need a fresh instance per test).
///
/// **Add new governors here** to run them through the whole kit.
fn all_governors() -> Vec<GovernorCase> {
    vec![
        ("nominal", Box::new(|| Arc::new(NominalGovernor))),
        (
            "approx-step",
            Box::new(|| Arc::new(ApproxGovernor::new(0.6))),
        ),
        (
            "significance-ladder",
            Box::new(|| Arc::new(SignificanceLadderGovernor::with_ladder(4, 0.4))),
        ),
        (
            "race-to-idle",
            Box::new(|| Arc::new(RaceToIdleGovernor::with_ladder(4, 0.4))),
        ),
        (
            "adaptive",
            Box::new(|| {
                Arc::new(AdaptiveGovernor::new(
                    &test_model(),
                    SleepState::deep(),
                    FrequencyScale::ladder(4, 0.4),
                    HYSTERESIS,
                    1e-3,
                ))
            }),
        ),
        // The cluster power-cap wrapper, engaged at 0.7: must preserve every
        // invariant of its wrapped ladder (accurate work passes through the
        // cap unclamped).
        (
            "frequency-cap",
            Box::new(|| {
                Arc::new(FrequencyCapGovernor::with_cap(
                    Arc::new(SignificanceLadderGovernor::with_ladder(4, 0.4)),
                    0.7,
                ))
            }),
        ),
    ]
}

fn ctx(worker: usize, significance: f64, accurate: bool) -> DispatchContext {
    DispatchContext {
        worker,
        significance: Significance::new(significance),
        accurate,
        policy: Policy::GtbMaxBuffer,
        group_ratio: 0.5,
        deadline_pressure: false,
    }
}

/// Decision-level invariants, shared by every governor:
/// * accurate (and in particular critical) tasks execute at nominal and are
///   never raced;
/// * no decision overclocks (ratio ≤ 1);
/// * no executed step increases dynamic energy at fixed work
///   (`dynamic_energy_factor ≤ 1`);
/// * race decisions have non-negative slack against a reference at or below
///   nominal.
#[test]
fn decisions_respect_shared_invariants_for_all_governors() {
    for (name, make) in all_governors() {
        let governor = make();
        for step in 0..=20 {
            let significance = step as f64 / 20.0;
            for worker in [0usize, 1] {
                for accurate in [true, false] {
                    let decision = governor.decide(&ctx(worker, significance, accurate));
                    let scale = decision.scale();
                    assert!(
                        scale.ratio() <= 1.0 + 1e-12,
                        "{name}: decision overclocks at significance {significance}"
                    );
                    assert!(
                        scale.dynamic_energy_factor() <= 1.0 + 1e-12,
                        "{name}: executed step increases dynamic energy per work unit"
                    );
                    if accurate {
                        assert!(
                            scale.is_nominal(),
                            "{name}: accurate task scaled at significance {significance}"
                        );
                        assert!(
                            !decision.is_race(),
                            "{name}: accurate task raced at significance {significance}"
                        );
                    }
                    if let Some(reference) = decision.race_reference() {
                        assert!(
                            reference.ratio() <= 1.0 + 1e-12,
                            "{name}: race reference above nominal"
                        );
                        assert!(
                            decision.slack_factor() >= 0.0,
                            "{name}: negative race slack"
                        );
                    }
                }
            }
        }
    }
}

/// The deterministic script every governor's environment run replays: a
/// cycle of significances with Max-Buffer-style accuracy decisions.
fn script() -> Vec<(f64, bool)> {
    (0..200)
        .map(|i| {
            let significance = ((i % 9) + 1) as f64 / 10.0;
            (significance, significance > 0.5)
        })
        .collect()
}

/// Drive one governor through a scripted [`ExecutionEnv`] run. Returns the
/// environment plus the frequency-change count replayed independently from
/// the decisions the governor actually returned.
fn run_script(governor: Arc<dyn Governor>) -> (ExecutionEnv, u64, f64) {
    let env = ExecutionEnv::new(
        test_model(),
        governor,
        Some(SleepState::deep()),
        TransitionCost::typical(),
        WORKERS,
    );
    let mut last_ratio = [1.0f64; WORKERS];
    let mut replayed_changes = 0u64;
    let mut total_busy = 0.0f64;
    for (i, (significance, accurate)) in script().into_iter().enumerate() {
        let worker = i % WORKERS;
        let decision = env.dispatch(worker, &ctx(worker, significance, accurate));
        if decision.scale().ratio() != last_ratio[worker] {
            replayed_changes += 1;
            last_ratio[worker] = decision.scale().ratio();
        }
        let busy_micros = if accurate { 100 } else { 40 };
        total_busy += busy_micros as f64 * 1e-6;
        let mode = if accurate {
            ExecutionMode::Accurate
        } else {
            ExecutionMode::Approximate
        };
        env.record(
            worker,
            mode,
            std::time::Duration::from_micros(busy_micros),
            decision,
        );
    }
    (env, replayed_changes, total_busy)
}

/// Environment-level invariants: busy conservation, dilation monotonicity,
/// transition-count agreement and the dynamic-energy bound, for all five
/// governors, deterministically.
#[test]
fn environment_accounting_conserves_and_bounds_for_all_governors() {
    let nominal_watts = test_model().active_watts_per_core;
    for (name, make) in all_governors() {
        let (env, replayed_changes, total_busy) = run_script(make());
        let report = env.report(total_busy / WORKERS as f64, WORKERS);

        // Busy-seconds conservation: the shards fold to exactly what was
        // recorded.
        assert!(
            (report.busy_seconds() - total_busy).abs() < 1e-9,
            "{name}: shards account {} busy seconds, script recorded {total_busy}",
            report.busy_seconds()
        );
        // Dilation only ever extends modelled time.
        for worker in &report.workers {
            assert!(
                worker.modelled_busy_seconds >= worker.busy_seconds - 1e-12,
                "{name}: modelled busy below measured on worker {}",
                worker.worker
            );
        }
        // Transition count matches the frequency-change count replayed from
        // the governor's own decisions.
        assert_eq!(
            report.frequency_transitions(),
            replayed_changes,
            "{name}: reported transitions disagree with replayed frequency changes"
        );
        // Downscaling at fixed work never increases dynamic energy over the
        // nominal baseline.
        let nominal_dynamic = total_busy * nominal_watts;
        assert!(
            report.dynamic_joules() <= nominal_dynamic * (1.0 + 1e-9),
            "{name}: dynamic {} J above the nominal baseline {nominal_dynamic} J",
            report.dynamic_joules()
        );
        // The reading is internally consistent.
        let reading = report.reading();
        assert!(
            (reading.breakdown.total() - reading.joules).abs() < 1e-9,
            "{name}: breakdown does not sum to total"
        );
        assert!(reading.joules > 0.0, "{name}: empty reading");
    }
}

/// Runtime-level invariants on the live scheduler: the energy shards
/// conserve the busy seconds the scheduler statistics account, and an
/// all-critical group executes entirely at nominal frequency with no race.
#[test]
fn runtime_conserves_busy_seconds_and_protects_critical_tasks() {
    for (name, make) in all_governors() {
        let rt = Runtime::builder()
            .workers(WORKERS)
            .policy(Policy::GtbMaxBuffer)
            .energy_model(test_model())
            .governor_arc(make())
            .sleep_state(SleepState::deep())
            .transition_cost(TransitionCost::typical())
            .build();
        let mixed = rt.create_group("mixed", 0.4);
        for i in 0..200u32 {
            rt.task(|| std::thread::sleep(std::time::Duration::from_micros(50)))
                .approx(|| std::thread::sleep(std::time::Duration::from_micros(20)))
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&mixed)
                .spawn();
        }
        rt.wait_group(&mixed);
        let report = rt.energy_report();
        assert!(
            (report.busy_seconds() - rt.stats().busy_core_seconds()).abs() < 1e-9,
            "{name}: energy shards and scheduler stats disagree: {} vs {}",
            report.busy_seconds(),
            rt.stats().busy_core_seconds()
        );

        // Critical tasks: a ratio-0 group of significance-1.0 tasks must not
        // add a single scaled dispatch (race dispatches execute at nominal
        // and are likewise excluded by the conformance contract).
        let scaled_before = report.scaled_tasks();
        let critical = rt.create_group("critical", 0.0);
        for _ in 0..50 {
            rt.task(|| {})
                .approx(|| {})
                .significance(1.0)
                .group(&critical)
                .spawn();
        }
        rt.wait_group(&critical);
        let after = rt.energy_report();
        assert_eq!(
            after.scaled_tasks(),
            scaled_before,
            "{name}: critical tasks were dispatched below nominal"
        );
        assert_eq!(rt.group_stats(&critical).accurate, 50);
    }
}

/// The race-to-idle governor's structural guarantee: it never changes the
/// frequency domain, so a full script costs zero DVFS transitions while
/// banking sleep residency for every raced task.
#[test]
fn race_to_idle_pays_zero_transitions_and_banks_residency() {
    let (env, replayed, total_busy) = run_script(Arc::new(RaceToIdleGovernor::with_ladder(4, 0.4)));
    let report = env.report(total_busy / WORKERS as f64, WORKERS);
    assert_eq!(replayed, 0);
    assert_eq!(report.frequency_transitions(), 0);
    assert!(report.sleep_seconds() > 0.0);
    assert!(report.sleep_entries() > 0);
    assert_eq!(report.scaled_tasks(), 0);
}

// ---------------------------------------------------------------------------
// Budget-controller conformance row
//
// The online energy-budget loop is not a `Governor`, but it rides the same
// dispatch path (a group ratio throttle plus the environment's re-targetable
// frequency cap), so it gets the same deterministic-script treatment: spend
// conformance for feasible budgets, critical-work protection under maximum
// austerity, and an exact-bits no-op guarantee when the budget never binds.
// ---------------------------------------------------------------------------

/// Tasks per control interval of the budgeted script.
const BUDGET_INTERVAL_TASKS: usize = 20;
/// Wall seconds per control interval. The grid is arrival-driven: at ~0.7 ms
/// of nominal busy work per 2 ms interval across 2 workers, utilization stays
/// below 1 even fully dilated, so every run completes the whole script and
/// readings are directly comparable.
const BUDGET_INTERVAL_SECONDS: f64 = 2e-3;
/// Base significance ratio of the script's single (non-critical) group.
const BUDGET_BASE_RATIO: f64 = 0.5;
/// Tasks in the budgeted script. Longer than [`script`]: the integral
/// controller needs a few dozen observations to ramp austerity and settle,
/// so the budgeted runs get 50 control intervals instead of 10.
const BUDGET_SCRIPT_TASKS: usize = 1000;

/// Significance sequence of the budgeted script (same cycle as [`script`];
/// accuracy is decided online from the budget-scaled ratio instead of being
/// scripted).
fn budget_script() -> Vec<f64> {
    (0..BUDGET_SCRIPT_TASKS)
        .map(|i| ((i % 9) + 1) as f64 / 10.0)
        .collect()
}

/// Drive the deterministic script through a ladder environment with an
/// optional online budget loop in control. The loop applies the setpoint
/// exactly as the runtime does: `ratio_scale` multiplies the group ratio
/// (shifting the accuracy threshold) and `frequency_cap` re-targets the
/// environment's approximate-dispatch cap. Returns the final cumulative
/// reading plus the interval-end cumulative-joule trace.
fn run_budget_script(budget: Option<BudgetConfig>) -> (EnergyReading, Vec<f64>) {
    let env = ExecutionEnv::new(
        test_model(),
        Arc::new(SignificanceLadderGovernor::with_ladder(4, 0.4)),
        Some(SleepState::deep()),
        TransitionCost::typical(),
        WORKERS,
    );
    let mut controller = budget.map(BudgetController::new);
    let mut ratio_scale = 1.0f64;
    let mut trace = Vec::new();
    let script = budget_script();
    let intervals = script.len() / BUDGET_INTERVAL_TASKS;
    for (interval, chunk) in script.chunks(BUDGET_INTERVAL_TASKS).enumerate() {
        for (offset, significance) in chunk.iter().enumerate() {
            let i = interval * BUDGET_INTERVAL_TASKS + offset;
            let worker = i % WORKERS;
            let ratio = (BUDGET_BASE_RATIO * ratio_scale).clamp(0.0, 1.0);
            let accurate = *significance >= 1.0 - ratio;
            let decision = env.dispatch(worker, &ctx(worker, *significance, accurate));
            let busy_micros = if accurate { 100 } else { 40 };
            let mode = if accurate {
                ExecutionMode::Accurate
            } else {
                ExecutionMode::Approximate
            };
            env.record(
                worker,
                mode,
                std::time::Duration::from_micros(busy_micros),
                decision,
            );
        }
        let wall = (interval + 1) as f64 * BUDGET_INTERVAL_SECONDS;
        let reading = env.report(wall, WORKERS).reading();
        trace.push(reading.joules);
        if let Some(controller) = controller.as_mut() {
            let setpoint = controller.observe(wall, &reading);
            ratio_scale = setpoint.ratio_scale;
            env.set_dispatch_cap(setpoint.frequency_cap);
        }
    }
    let wall = intervals as f64 * BUDGET_INTERVAL_SECONDS;
    (env.report(wall, WORKERS).reading(), trace)
}

/// A joule budget for the deterministic script at `fraction` of the
/// open-loop spend, with the library-default ±10% tolerance band.
fn script_budget(open_joules: f64, fraction: f64) -> BudgetConfig {
    let intervals = BUDGET_SCRIPT_TASKS / BUDGET_INTERVAL_TASKS;
    BudgetConfig::new(BudgetTarget::TotalJoules {
        joules: fraction * open_joules,
        horizon_seconds: intervals as f64 * BUDGET_INTERVAL_SECONDS,
    })
}

/// Spend conformance: for every *feasible* budget (one above the all-approx
/// floor the austerity knobs can actually reach), cumulative joules never
/// exceed `budget × (1 + tolerance)` — and the budget genuinely binds, so
/// the test is not vacuous.
#[test]
fn budget_spend_never_exceeds_tolerance_band_for_feasible_budgets() {
    let (open, _) = run_budget_script(None);
    for fraction in [0.85, 0.92] {
        let config = script_budget(open.joules, fraction);
        let cap = fraction * open.joules * (1.0 + config.tolerance);
        let (reading, trace) = run_budget_script(Some(config));
        assert!(
            reading.joules <= cap,
            "budget {fraction}×open: spent {} J above the {cap} J conformance cap",
            reading.joules
        );
        assert!(
            reading.joules < open.joules,
            "budget {fraction}×open never bound: spent {} J vs open {} J",
            reading.joules,
            open.joules
        );
        // Cumulative spend is monotone, so the final check covers every
        // interval — assert the trace agrees.
        for pair in trace.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12, "cumulative joules regressed");
        }
        assert!((trace.last().copied().unwrap() - reading.joules).abs() < 1e-9);
    }
}

/// Critical-work protection under maximum austerity, end to end on the live
/// runtime: with an already-exhausted budget (austerity saturated at 1.0), a
/// critical group (ratio 0.0, significance 1.0) still executes every task
/// accurately at nominal frequency — the budget's ratio throttle exempts
/// ratio-0 groups and the dispatch cap exempts accurate work.
#[test]
fn exhausted_budget_never_scales_critical_or_accurate_tasks() {
    let rt = Runtime::builder()
        .workers(WORKERS)
        .policy(Policy::GtbMaxBuffer)
        .energy_model(test_model())
        .governor(SignificanceLadderGovernor::with_ladder(4, 0.4))
        .sleep_state(SleepState::deep())
        .transition_cost(TransitionCost::typical())
        .energy_budget(BudgetConfig::new(BudgetTarget::TotalJoules {
            joules: 1e-9,
            horizon_seconds: 1e-6,
        }))
        .build();
    // Burn enough work for the controller to observe the overspend, then
    // force a sample so the setpoint reflects it.
    let warmup = rt.create_group("warmup", 0.5);
    for i in 0..64u32 {
        rt.task(|| std::thread::sleep(std::time::Duration::from_micros(30)))
            .approx(|| std::thread::sleep(std::time::Duration::from_micros(10)))
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&warmup)
            .spawn();
    }
    rt.wait_group(&warmup);
    let setpoint = rt
        .energy_budget_sample()
        .expect("a budget was configured on the builder");
    assert!(setpoint.exhausted, "a 1 nJ budget must read as exhausted");
    assert!(
        setpoint.austerity >= 1.0 - 1e-12,
        "exhaustion must saturate austerity"
    );

    let scaled_before = rt.energy_report().scaled_tasks();
    let critical = rt.create_group("critical", 0.0);
    for _ in 0..50 {
        rt.task(|| {})
            .approx(|| {})
            .significance(1.0)
            .group(&critical)
            .spawn();
    }
    rt.wait_group(&critical);
    assert_eq!(
        rt.energy_report().scaled_tasks(),
        scaled_before,
        "critical tasks were dispatched below nominal under an exhausted budget"
    );
    assert_eq!(
        rt.group_stats(&critical).accurate,
        50,
        "an exhausted budget degraded a critical (ratio-0.0) group"
    );
}

/// Removing the budget reproduces the unbudgeted trace **bit for bit**: a
/// budget so large it never binds emits exact-neutral setpoints
/// (`ratio_scale == 1.0`, `frequency_cap == 1.0`), and both knob paths — the
/// group-ratio multiply and the dispatch-cap clamp — are exact-bits no-ops
/// at 1.0 by design. Every joule field and the whole interval trace must
/// match to the last bit, not within a tolerance.
#[test]
fn never_binding_budget_reproduces_the_unbudgeted_trace_bit_for_bit() {
    let (open, open_trace) = run_budget_script(None);
    let (budgeted, budgeted_trace) = run_budget_script(Some(script_budget(open.joules, 1e6)));
    assert_eq!(
        budgeted.joules.to_bits(),
        open.joules.to_bits(),
        "a never-binding budget perturbed total joules: {} vs {}",
        budgeted.joules,
        open.joules
    );
    assert_eq!(
        budgeted.busy_core_seconds.to_bits(),
        open.busy_core_seconds.to_bits()
    );
    assert_eq!(
        budgeted.average_watts.to_bits(),
        open.average_watts.to_bits()
    );
    assert_eq!(
        budgeted.breakdown.total().to_bits(),
        open.breakdown.total().to_bits()
    );
    let open_bits: Vec<u64> = open_trace.iter().map(|j| j.to_bits()).collect();
    let budgeted_bits: Vec<u64> = budgeted_trace.iter().map(|j| j.to_bits()).collect();
    assert_eq!(
        budgeted_bits, open_bits,
        "interval traces diverge under a never-binding budget"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hysteresis contract: under ANY significance sequence (oscillating
    /// adversarially or not), the adaptive governor changes a worker
    /// domain's executed frequency at most `dispatches / hysteresis + 1`
    /// times.
    #[test]
    fn adaptive_hysteresis_bounds_transitions_under_oscillating_significance(
        significances in proptest::collection::vec(0.0f64..=1.0, 16..200),
        hysteresis_raw in 1u64..12,
    ) {
        let hysteresis = hysteresis_raw as u32;
        let governor = AdaptiveGovernor::new(
            &test_model(),
            SleepState::deep(),
            FrequencyScale::ladder(4, 0.4),
            hysteresis,
            1e-3,
        );
        let mut last = 1.0f64;
        let mut changes = 0u64;
        for significance in &significances {
            let decision = governor.decide(&ctx(0, *significance, false));
            let ratio = decision.scale().ratio();
            if ratio != last {
                changes += 1;
                last = ratio;
            }
        }
        let bound = significances.len() as u64 / hysteresis as u64 + 1;
        prop_assert!(
            changes <= bound,
            "hysteresis {hysteresis}: {changes} changes exceed bound {bound} over {} dispatches",
            significances.len()
        );
    }

    /// Every governor, fuzzed: no decision ever scales an accurate task or
    /// increases dynamic energy per unit of work.
    #[test]
    fn fuzzed_decisions_never_scale_accurate_or_raise_dynamic_energy(
        significance in 0.0f64..=1.0,
        worker in 0usize..8,
        accurate_bit in 0u64..2,
    ) {
        let accurate = accurate_bit == 1;
        for (name, make) in all_governors() {
            let decision = make().decide(&ctx(worker, significance, accurate));
            prop_assert!(
                decision.scale().dynamic_energy_factor() <= 1.0 + 1e-12,
                "{name}: dynamic energy factor above 1"
            );
            if accurate {
                prop_assert!(decision.scale().is_nominal(), "{name}: accurate task scaled");
                prop_assert!(!decision.is_race(), "{name}: accurate task raced");
            }
        }
    }
}

//! Scheduler concurrency stress tests.
//!
//! Guards the lock-free hot path: the `claim_enqueue` exactly-once invariant
//! (no task executed twice or lost), dependence ordering under load, the
//! per-group accurate-ratio invariants of all four policies, and the
//! park/unpark wakeup protocol under multi-threaded spawning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use significance_repro::prelude::*;

const STRESS_TASKS: usize = 100_000;

fn policies() -> [Policy; 4] {
    [
        Policy::SignificanceAgnostic,
        Policy::Gtb { buffer_size: 16 },
        Policy::GtbMaxBuffer,
        Policy::Lqh,
    ]
}

#[test]
fn stress_tasks_execute_exactly_once_under_every_policy() {
    for policy in policies() {
        let rt = Runtime::builder().workers(8).policy(policy).build();
        let group = rt.create_group("stress", 0.5);
        let executions = Arc::new(AtomicUsize::new(0));
        for i in 0..STRESS_TASKS {
            let acc = executions.clone();
            let apx = executions.clone();
            rt.task(move || {
                acc.fetch_add(1, Ordering::Relaxed);
            })
            .approx(move || {
                apx.fetch_add(1, Ordering::Relaxed);
            })
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);

        // Exactly-once execution: every task ran exactly one of its bodies.
        assert_eq!(
            executions.load(Ordering::Relaxed),
            STRESS_TASKS,
            "{policy:?}: lost or duplicated executions"
        );
        assert_eq!(stats.total(), STRESS_TASKS, "{policy:?}: stats disagree");
        assert_eq!(stats.dropped, 0, "{policy:?}: nothing should be dropped");
        assert_eq!(rt.stats().spawned(), STRESS_TASKS);
        assert_eq!(rt.stats().completed(), STRESS_TASKS);

        // Per-policy accurate-ratio invariants at ratio 0.5 over significances
        // uniformly drawn from {0.1, ..., 0.9}.
        let achieved = stats.achieved_ratio();
        match policy {
            Policy::SignificanceAgnostic => {
                assert_eq!(stats.accurate, STRESS_TASKS, "agnostic runs all accurately");
            }
            Policy::GtbMaxBuffer => {
                // Perfect information: exact up to ceil rounding, no inversions.
                assert_eq!(stats.accurate, STRESS_TASKS / 2);
                assert_eq!(stats.inverted, 0);
            }
            Policy::Gtb { .. } => {
                assert!(
                    (achieved - 0.5).abs() < 0.1,
                    "GTB achieved ratio {achieved} too far from 0.5"
                );
            }
            Policy::Lqh => {
                assert!(
                    (0.2..=0.8).contains(&achieved),
                    "LQH achieved ratio {achieved} implausible for request 0.5"
                );
            }
        }
    }
}

#[test]
fn stress_dependence_chains_preserve_order_under_load() {
    const CHAINS: usize = 200;
    const LENGTH: usize = 250;
    for policy in [
        Policy::SignificanceAgnostic,
        Policy::Gtb { buffer_size: 64 },
        Policy::Lqh,
    ] {
        let rt = Runtime::builder().workers(8).policy(policy).build();
        let group = rt.create_group("chains", 1.0);
        let base = DepKey::named("chain-stress");
        let positions: Arc<Vec<AtomicUsize>> =
            Arc::new((0..CHAINS).map(|_| AtomicUsize::new(0)).collect());
        let violations = Arc::new(AtomicUsize::new(0));
        for link in 0..LENGTH {
            for chain in 0..CHAINS {
                let key = DepKey::element(base, chain);
                let positions = positions.clone();
                let violations = violations.clone();
                rt.task(move || {
                    let seen = positions[chain].fetch_add(1, Ordering::SeqCst);
                    if seen != link {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .significance(1.0)
                .group(&group)
                .reads([key])
                .writes([key])
                .spawn();
            }
        }
        rt.wait_group(&group);
        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "{policy:?}: dependence order violated"
        );
        for chain in 0..CHAINS {
            assert_eq!(
                positions[chain].load(Ordering::SeqCst),
                LENGTH,
                "{policy:?}: chain {chain} lost tasks"
            );
        }
        assert_eq!(rt.panicked_tasks(), 0);
    }
}

#[test]
fn stress_critical_and_negligible_invariants_hold() {
    for policy in [
        Policy::Gtb { buffer_size: 32 },
        Policy::GtbMaxBuffer,
        Policy::Lqh,
    ] {
        let rt = Runtime::builder().workers(8).policy(policy).build();
        let group = rt.create_group("classes", 0.4);
        let critical_accurate = Arc::new(AtomicUsize::new(0));
        let negligible_accurate = Arc::new(AtomicUsize::new(0));
        let mut critical_total = 0usize;
        for i in 0..30_000usize {
            let (sig, counter) = match i % 3 {
                0 => {
                    critical_total += 1;
                    (1.0, critical_accurate.clone())
                }
                1 => (0.0, negligible_accurate.clone()),
                _ => (0.5, Arc::new(AtomicUsize::new(0))),
            };
            rt.task(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .approx(|| {})
            .significance(sig)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        assert_eq!(
            critical_accurate.load(Ordering::Relaxed),
            critical_total,
            "{policy:?}: every significance-1.0 task must run its accurate body"
        );
        assert_eq!(
            negligible_accurate.load(Ordering::Relaxed),
            0,
            "{policy:?}: no significance-0.0 task may run its accurate body"
        );
    }
}

#[test]
fn stress_concurrent_spawners_lose_no_wakeups() {
    // Four spawner threads hammer the runtime at once: exercises the MPMC
    // inbox path and the sleep/wake Dekker protocol (a lost wakeup hangs
    // this test; the seed's check-then-wait race was exactly that bug).
    const SPAWNERS: usize = 4;
    const PER_SPAWNER: usize = 25_000;
    let rt = Runtime::builder()
        .workers(8)
        .policy(Policy::SignificanceAgnostic)
        .build();
    let executions = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..SPAWNERS {
            let rt = &rt;
            let executions = executions.clone();
            scope.spawn(move || {
                for _ in 0..PER_SPAWNER {
                    let counter = executions.clone();
                    rt.task(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                    .spawn();
                }
            });
        }
    });
    rt.wait_all();
    assert_eq!(executions.load(Ordering::Relaxed), SPAWNERS * PER_SPAWNER);
    assert_eq!(rt.stats().completed(), SPAWNERS * PER_SPAWNER);
}

#[test]
fn stress_repeated_barrier_cycles_do_not_hang() {
    // Many tiny spawn/wait cycles stress the event-count barrier's
    // register-then-recheck protocol (each cycle parks and wakes workers).
    let rt = Runtime::builder().workers(8).policy(Policy::Lqh).build();
    let group = rt.create_group("cycles", 1.0);
    let executions = Arc::new(AtomicUsize::new(0));
    for cycle in 0..500usize {
        for _ in 0..16 {
            let counter = executions.clone();
            rt.task(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .significance(1.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        assert_eq!(executions.load(Ordering::Relaxed), (cycle + 1) * 16);
    }
}

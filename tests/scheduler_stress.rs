//! Scheduler concurrency stress tests.
//!
//! Guards the lock-free hot path: the `claim_enqueue` exactly-once invariant
//! (no task executed twice or lost), dependence ordering under load (through
//! both the locked and the read-mostly tracker paths), the per-group
//! accurate-ratio invariants of all four policies, the park/unpark wakeup
//! protocol under multi-threaded spawning, and the batched spawn pipeline
//! (mixed `spawn`/`spawn_batch` callers, steal-half redistribution).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use significance_repro::prelude::*;

const STRESS_TASKS: usize = 100_000;

fn policies() -> [Policy; 4] {
    [
        Policy::SignificanceAgnostic,
        Policy::Gtb { buffer_size: 16 },
        Policy::GtbMaxBuffer,
        Policy::Lqh,
    ]
}

#[test]
fn stress_tasks_execute_exactly_once_under_every_policy() {
    for policy in policies() {
        let rt = Runtime::builder().workers(8).policy(policy).build();
        let group = rt.create_group("stress", 0.5);
        let executions = Arc::new(AtomicUsize::new(0));
        for i in 0..STRESS_TASKS {
            let acc = executions.clone();
            let apx = executions.clone();
            rt.task(move || {
                acc.fetch_add(1, Ordering::Relaxed);
            })
            .approx(move || {
                apx.fetch_add(1, Ordering::Relaxed);
            })
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);

        // Exactly-once execution: every task ran exactly one of its bodies.
        assert_eq!(
            executions.load(Ordering::Relaxed),
            STRESS_TASKS,
            "{policy:?}: lost or duplicated executions"
        );
        assert_eq!(stats.total(), STRESS_TASKS, "{policy:?}: stats disagree");
        assert_eq!(stats.dropped, 0, "{policy:?}: nothing should be dropped");
        assert_eq!(rt.stats().spawned(), STRESS_TASKS);
        assert_eq!(rt.stats().completed(), STRESS_TASKS);

        // Per-policy accurate-ratio invariants at ratio 0.5 over significances
        // uniformly drawn from {0.1, ..., 0.9}.
        let achieved = stats.achieved_ratio();
        match policy {
            Policy::SignificanceAgnostic => {
                assert_eq!(stats.accurate, STRESS_TASKS, "agnostic runs all accurately");
            }
            Policy::GtbMaxBuffer => {
                // Perfect information: exact up to ceil rounding, no inversions.
                assert_eq!(stats.accurate, STRESS_TASKS / 2);
                assert_eq!(stats.inverted, 0);
            }
            Policy::Gtb { .. } => {
                assert!(
                    (achieved - 0.5).abs() < 0.1,
                    "GTB achieved ratio {achieved} too far from 0.5"
                );
            }
            Policy::Lqh => {
                assert!(
                    (0.2..=0.8).contains(&achieved),
                    "LQH achieved ratio {achieved} implausible for request 0.5"
                );
            }
        }
    }
}

#[test]
fn stress_mixed_spawn_and_spawn_batch_execute_exactly_once() {
    // 100k tasks per policy, spawned through a mix of callers: per-task
    // `spawn`, `spawn_batch` floods of varying batch sizes, and batches
    // spawned from *inside* a task body (the worker-local deque batch
    // publish). Exactly-once must hold across all of them.
    for policy in policies() {
        let rt = Arc::new(Runtime::builder().workers(8).policy(policy).build());
        let group = rt.create_group("mixed", 0.5);
        let executions = Arc::new(AtomicUsize::new(0));
        let mut spawned = 0usize;
        let mut batch_toggle = 0usize;
        while spawned < STRESS_TASKS - 1_000 {
            // Alternate a per-task burst with a batched flood.
            if batch_toggle.is_multiple_of(2) {
                for i in 0..100 {
                    let acc = executions.clone();
                    let apx = executions.clone();
                    rt.task(move || {
                        acc.fetch_add(1, Ordering::Relaxed);
                    })
                    .approx(move || {
                        apx.fetch_add(1, Ordering::Relaxed);
                    })
                    .significance(((i % 9) + 1) as f64 / 10.0)
                    .group(&group)
                    .spawn();
                }
                spawned += 100;
            } else {
                let batch = [16usize, 64, 256, 900][batch_toggle % 4];
                let executions = &executions;
                let ids = rt.batch().group(&group).spawn_tasks((0..batch).map(|i| {
                    let acc = executions.clone();
                    let apx = executions.clone();
                    BatchTask::new(move || {
                        acc.fetch_add(1, Ordering::Relaxed);
                    })
                    .approx(move || {
                        apx.fetch_add(1, Ordering::Relaxed);
                    })
                    .significance(((i % 9) + 1) as f64 / 10.0)
                }));
                assert_eq!(ids.len(), batch);
                spawned += batch;
            }
            batch_toggle += 1;
        }
        // Top up to exactly STRESS_TASKS with a batch spawned from inside a
        // worker (exercises the local-deque batch publish + steal-half).
        let remainder = STRESS_TASKS - spawned;
        {
            let rt2 = rt.clone();
            let group2 = group.clone();
            let executions2 = executions.clone();
            rt.task(move || {
                rt2.batch()
                    .group(&group2)
                    .spawn_tasks((0..remainder - 1).map(|i| {
                        let acc = executions2.clone();
                        let apx = executions2.clone();
                        BatchTask::new(move || {
                            acc.fetch_add(1, Ordering::Relaxed);
                        })
                        .approx(move || {
                            apx.fetch_add(1, Ordering::Relaxed);
                        })
                        .significance(((i % 9) + 1) as f64 / 10.0)
                    }));
            })
            .approx({
                let executions = executions.clone();
                move || {
                    let _ = executions;
                }
            })
            .significance(1.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        // The seeder task itself runs one body but does not bump
        // `executions`; every other task bumps exactly once.
        assert_eq!(
            executions.load(Ordering::Relaxed),
            STRESS_TASKS - 1,
            "{policy:?}: lost or duplicated executions across mixed callers"
        );
        assert_eq!(stats.total(), STRESS_TASKS, "{policy:?}: stats disagree");
        assert_eq!(rt.stats().spawned(), STRESS_TASKS);
        assert_eq!(rt.stats().completed(), STRESS_TASKS);
        assert_eq!(rt.panicked_tasks(), 0);
    }
}

#[test]
fn stress_dependence_chains_preserve_order_under_load() {
    const CHAINS: usize = 200;
    const LENGTH: usize = 250;
    for policy in [
        Policy::SignificanceAgnostic,
        Policy::Gtb { buffer_size: 64 },
        Policy::Lqh,
    ] {
        let rt = Runtime::builder().workers(8).policy(policy).build();
        let group = rt.create_group("chains", 1.0);
        let base = DepKey::named("chain-stress");
        let positions: Arc<Vec<AtomicUsize>> =
            Arc::new((0..CHAINS).map(|_| AtomicUsize::new(0)).collect());
        let violations = Arc::new(AtomicUsize::new(0));
        for link in 0..LENGTH {
            for chain in 0..CHAINS {
                let key = DepKey::element(base, chain);
                let positions = positions.clone();
                let violations = violations.clone();
                rt.task(move || {
                    let seen = positions[chain].fetch_add(1, Ordering::SeqCst);
                    if seen != link {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .significance(1.0)
                .group(&group)
                .reads([key])
                .writes([key])
                .spawn();
            }
        }
        rt.wait_group(&group);
        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "{policy:?}: dependence order violated"
        );
        for chain in 0..CHAINS {
            assert_eq!(
                positions[chain].load(Ordering::SeqCst),
                LENGTH,
                "{policy:?}: chain {chain} lost tasks"
            );
        }
        assert_eq!(rt.panicked_tasks(), 0);
    }
}

#[test]
fn stress_critical_and_negligible_invariants_hold() {
    for policy in [
        Policy::Gtb { buffer_size: 32 },
        Policy::GtbMaxBuffer,
        Policy::Lqh,
    ] {
        let rt = Runtime::builder().workers(8).policy(policy).build();
        let group = rt.create_group("classes", 0.4);
        let critical_accurate = Arc::new(AtomicUsize::new(0));
        let negligible_accurate = Arc::new(AtomicUsize::new(0));
        let mut critical_total = 0usize;
        for i in 0..30_000usize {
            let (sig, counter) = match i % 3 {
                0 => {
                    critical_total += 1;
                    (1.0, critical_accurate.clone())
                }
                1 => (0.0, negligible_accurate.clone()),
                _ => (0.5, Arc::new(AtomicUsize::new(0))),
            };
            rt.task(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .approx(|| {})
            .significance(sig)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        assert_eq!(
            critical_accurate.load(Ordering::Relaxed),
            critical_total,
            "{policy:?}: every significance-1.0 task must run its accurate body"
        );
        assert_eq!(
            negligible_accurate.load(Ordering::Relaxed),
            0,
            "{policy:?}: no significance-0.0 task may run its accurate body"
        );
    }
}

#[test]
fn stress_concurrent_spawners_lose_no_wakeups() {
    // Four spawner threads hammer the runtime at once: exercises the MPMC
    // inbox path and the sleep/wake Dekker protocol (a lost wakeup hangs
    // this test; the seed's check-then-wait race was exactly that bug).
    const SPAWNERS: usize = 4;
    const PER_SPAWNER: usize = 25_000;
    let rt = Runtime::builder()
        .workers(8)
        .policy(Policy::SignificanceAgnostic)
        .build();
    let executions = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..SPAWNERS {
            let rt = &rt;
            let executions = executions.clone();
            scope.spawn(move || {
                for _ in 0..PER_SPAWNER {
                    let counter = executions.clone();
                    rt.task(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                    .spawn();
                }
            });
        }
    });
    rt.wait_all();
    assert_eq!(executions.load(Ordering::Relaxed), SPAWNERS * PER_SPAWNER);
    assert_eq!(rt.stats().completed(), SPAWNERS * PER_SPAWNER);
}

#[test]
fn stress_read_mostly_tracker_orders_readers_and_writers() {
    // Drives the read-mostly last-writer table end to end: writer tasks
    // advance a key's epoch through the locked path while swarms of
    // single-key read-only tasks register through the lock-free fast path.
    // RAW: every reader must observe the value of the writer generation it
    // was spawned after. WAR: a writer must not run before every reader of
    // the previous generation finished.
    const GENERATIONS: usize = 40;
    const READERS_PER_GEN: usize = 25;
    for policy in [Policy::SignificanceAgnostic, Policy::Lqh] {
        let rt = Runtime::builder().workers(8).policy(policy).build();
        let key = DepKey::named("read-mostly");
        let value = Arc::new(AtomicUsize::new(0));
        let readers_done = Arc::new(AtomicUsize::new(0));
        let war_violations = Arc::new(AtomicUsize::new(0));
        let raw_violations = Arc::new(AtomicUsize::new(0));
        for generation in 0..GENERATIONS {
            {
                let value = value.clone();
                let readers_done = readers_done.clone();
                let war_violations = war_violations.clone();
                rt.task(move || {
                    // WAR: all readers of earlier generations completed.
                    if readers_done.load(Ordering::SeqCst) != generation * READERS_PER_GEN {
                        war_violations.fetch_add(1, Ordering::SeqCst);
                    }
                    value.store(generation + 1, Ordering::SeqCst);
                })
                .significance(1.0)
                .writes([key])
                .spawn();
            }
            for _ in 0..READERS_PER_GEN {
                let value = value.clone();
                let readers_done = readers_done.clone();
                let raw_violations = raw_violations.clone();
                // Single in-key, no out-keys: the lock-free fast path.
                rt.task(move || {
                    // RAW: the writer of this generation already ran. (Later
                    // writers may have run too, so >= not ==.)
                    if value.load(Ordering::SeqCst) < generation + 1 {
                        raw_violations.fetch_add(1, Ordering::SeqCst);
                    }
                    readers_done.fetch_add(1, Ordering::SeqCst);
                })
                .significance(1.0)
                .reads([key])
                .spawn();
            }
        }
        rt.wait_all();
        assert_eq!(
            raw_violations.load(Ordering::SeqCst),
            0,
            "{policy:?}: a fast-path reader ran before its writer"
        );
        assert_eq!(
            war_violations.load(Ordering::SeqCst),
            0,
            "{policy:?}: a writer ran before the previous readers finished"
        );
        assert_eq!(
            readers_done.load(Ordering::SeqCst),
            GENERATIONS * READERS_PER_GEN
        );
        assert_eq!(rt.panicked_tasks(), 0);
    }
}

#[test]
fn stress_multi_key_read_only_footprints_keep_ordered_locks_and_single_key_stays_fast() {
    // Regression test for the PR 3 read-mostly tracker restriction:
    // multi-key read-only footprints must fall back to ordered
    // whole-footprint locking (non-atomic per-key registration could wire
    // dependence cycles — this test is the deadlock bait: concurrent
    // spawner threads register overlapping multi-key read footprints with
    // their keys declared in *opposing* orders while writers churn the same
    // keys), and single-key read-only footprints must keep resolving on the
    // lock-free fast path throughout that churn.
    const SPAWNERS: usize = 4;
    const GENERATIONS: usize = 40;
    const SINGLES_PER_GEN: usize = 5;
    let rt = Runtime::builder()
        .workers(8)
        .policy(Policy::SignificanceAgnostic)
        .build();
    let keys = [
        DepKey::named("ordered-a"),
        DepKey::named("ordered-b"),
        DepKey::named("ordered-c"),
    ];
    let values: Arc<Vec<AtomicUsize>> =
        Arc::new((0..keys.len()).map(|_| AtomicUsize::new(0)).collect());
    let stamp_source = Arc::new(AtomicUsize::new(0));
    let raw_violations = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for spawner in 0..SPAWNERS {
            let rt = &rt;
            let values = values.clone();
            let stamp_source = stamp_source.clone();
            let raw_violations = raw_violations.clone();
            scope.spawn(move || {
                for generation in 0..GENERATIONS {
                    // Writer: advances every key to a fresh global stamp
                    // through the locked multi-key path.
                    let stamp = stamp_source.fetch_add(1, Ordering::SeqCst) + 1;
                    {
                        let values = values.clone();
                        rt.task(move || {
                            for value in values.iter() {
                                value.fetch_max(stamp, Ordering::SeqCst);
                            }
                        })
                        .writes(keys)
                        .spawn();
                    }
                    // Multi-key read-only footprint, key order rotated per
                    // spawner and generation so concurrent registrants
                    // declare overlapping keys in opposing orders — the
                    // dependence-cycle bait the ordered locking defuses.
                    // RAW: registration happened after this thread's writer
                    // registration, so every key must already carry `stamp`.
                    {
                        let values = values.clone();
                        let raw_violations = raw_violations.clone();
                        let rotation = (spawner + generation) % keys.len();
                        let mut footprint = keys.to_vec();
                        footprint.rotate_left(rotation);
                        rt.task(move || {
                            for value in values.iter() {
                                if value.load(Ordering::SeqCst) < stamp {
                                    raw_violations.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                        })
                        .reads(footprint)
                        .spawn();
                    }
                    // Single-key read-only footprints: the lock-free fast
                    // path, racing the writer churn above.
                    for single in 0..SINGLES_PER_GEN {
                        let values = values.clone();
                        let raw_violations = raw_violations.clone();
                        let index = single % keys.len();
                        rt.task(move || {
                            if values[index].load(Ordering::SeqCst) < stamp {
                                raw_violations.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                        .reads([keys[index]])
                        .spawn();
                    }
                }
            });
        }
    });
    rt.wait_all();
    assert_eq!(
        raw_violations.load(Ordering::SeqCst),
        0,
        "a read-only footprint ran before the writer it was registered after"
    );
    assert_eq!(rt.panicked_tasks(), 0);
    // The fast-path counter proves the split: every fast resolution was a
    // single-key read (multi-key footprints must never count), and the
    // overwhelming majority of single-key reads stayed lock-free despite
    // the concurrent writer churn (first-touch and reclamation-drain
    // fallbacks account for the slack).
    let singles = SPAWNERS * GENERATIONS * SINGLES_PER_GEN;
    let fast = rt.tracker_fast_path_reads();
    assert!(
        fast <= singles,
        "fast-path count {fast} exceeds the {singles} single-key reads — a multi-key \
         footprint took the lock-free path"
    );
    assert!(
        fast >= singles / 2,
        "only {fast} of {singles} single-key reads resolved lock-free under writer churn"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Steal-half batch stealing neither duplicates nor drops tasks: a
    /// flood is seeded onto one worker's deque (spawned from inside a task
    /// body, so every task lands local), thieves redistribute it in
    /// steal-half chunks, and every task must still execute exactly once.
    #[test]
    fn batch_stealing_never_duplicates_or_drops(
        workers in 2usize..8,
        flood in 1usize..3_000,
        batch in 1usize..512,
    ) {
        let rt = Arc::new(
            Runtime::builder()
                .workers(workers)
                .policy(Policy::SignificanceAgnostic)
                .build(),
        );
        let executions = Arc::new(AtomicUsize::new(0));
        {
            let rt2 = rt.clone();
            let executions = executions.clone();
            rt.task(move || {
                // Runs on a worker: every batch goes to that worker's own
                // deque in one publish; the other workers can only get work
                // by batch stealing.
                let mut remaining = flood;
                while remaining > 0 {
                    let n = remaining.min(batch);
                    let executions = &executions;
                    rt2.spawn_batch((0..n).map(|_| {
                        let counter = executions.clone();
                        BatchTask::new(move || {
                            counter.fetch_add(1, Ordering::Relaxed);
                        })
                    }));
                    remaining -= n;
                }
            })
            .spawn();
        }
        rt.wait_all();
        prop_assert_eq!(executions.load(Ordering::Relaxed), flood);
        prop_assert_eq!(rt.stats().completed(), flood + 1);
        prop_assert_eq!(rt.stats().spawned(), flood + 1);
        prop_assert_eq!(rt.panicked_tasks(), 0);
    }
}

#[test]
fn stress_nested_wait_inside_batched_flood_does_not_hang() {
    // Regression guard for the coalesced batch wake: a batch lands chunks
    // on several *parked* workers but wakes only one; a task then blocks in
    // a nested group barrier whose satisfying tasks sit on the still-parked
    // workers. Barrier entry must hand off a wake so the pool keeps
    // draining (a lost wake here hangs this test).
    for _ in 0..50 {
        let rt = Arc::new(
            Runtime::builder()
                .workers(4)
                .policy(Policy::SignificanceAgnostic)
                .build(),
        );
        let group = rt.create_group("inner", 1.0);
        // Give the workers time to park before the flood arrives.
        std::thread::sleep(Duration::from_millis(2));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let counter = done.clone();
            rt.batch().group(&group).spawn_tasks((0..64).map(move |_| {
                let c = counter.clone();
                BatchTask::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            }));
        }
        {
            let rt2 = rt.clone();
            let group2 = group.clone();
            rt.task(move || {
                rt2.wait_group(&group2);
            })
            .spawn();
        }
        rt.wait_all();
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }
}

#[test]
fn stress_repeated_barrier_cycles_do_not_hang() {
    // Many tiny spawn/wait cycles stress the event-count barrier's
    // register-then-recheck protocol (each cycle parks and wakes workers).
    let rt = Runtime::builder().workers(8).policy(Policy::Lqh).build();
    let group = rt.create_group("cycles", 1.0);
    let executions = Arc::new(AtomicUsize::new(0));
    for cycle in 0..500usize {
        for _ in 0..16 {
            let counter = executions.clone();
            rt.task(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .significance(1.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        assert_eq!(executions.load(Ordering::Relaxed), (cycle + 1) * 16);
    }
}

//! K-means clustering with approximate distance computations: shows how the
//! ratio knob trades clustering quality against time/energy without touching
//! the algorithm.
//!
//! Run with `cargo run --release --example kmeans_clustering`.

use significance_repro::energy::PowerModel;
use significance_repro::kernels::kmeans::KMeans;
use significance_repro::kernels::{Benchmark, Degree, ExecutionConfig};
use significance_repro::prelude::*;
use significance_repro::quality::relative_error;

fn main() {
    let kmeans = KMeans::default();
    let workers = ExecutionConfig::default_workers();
    let power = PowerModel::for_host();

    let reference = kmeans.run(&ExecutionConfig::accurate(workers));
    println!(
        "accurate   : {:>8.2} ms (serial reference)",
        reference.elapsed.as_secs_f64() * 1e3
    );

    for policy in [Policy::GtbMaxBuffer, Policy::Lqh] {
        for degree in [Degree::Mild, Degree::Aggressive] {
            let run = kmeans.run(&ExecutionConfig::significance(workers, policy, degree));
            let energy = power.energy_joules(run.elapsed.as_secs_f64(), run.busy_core_seconds);
            let error = relative_error(&reference.values, &run.values) * 100.0;
            println!(
                "{:<15} {:<6}: {:>8.2} ms  {:>8.2} J  centroid rel. error {:>6.3}%  ({} acc / {} approx)",
                policy.name(),
                degree.name(),
                run.elapsed.as_secs_f64() * 1e3,
                energy,
                error,
                run.tasks.accurate,
                run.tasks.approximate,
            );
        }
    }
}

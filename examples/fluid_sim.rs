//! Fluid simulation (simplified SPH) alternating accurate and extrapolated
//! time steps — the paper's Fluidanimate scenario, where the `ratio` clause
//! of each step's barrier flips between 1.0 and 0.0.
//!
//! Run with `cargo run --release --example fluid_sim`.

use significance_repro::kernels::fluidanimate::Fluidanimate;
use significance_repro::kernels::{Benchmark, Degree, ExecutionConfig};
use significance_repro::prelude::*;
use significance_repro::quality::relative_error;

fn main() {
    let fluid = Fluidanimate::default();
    let workers = ExecutionConfig::default_workers();

    let reference = fluid.run(&ExecutionConfig::accurate(workers));
    println!(
        "fully accurate simulation: {:>8.2} ms, {} particles, {} steps",
        reference.elapsed.as_secs_f64() * 1e3,
        fluid.particles,
        fluid.steps
    );

    for degree in [Degree::Mild, Degree::Medium, Degree::Aggressive] {
        let run = fluid.run(&ExecutionConfig::significance(
            workers,
            Policy::GtbMaxBuffer,
            degree,
        ));
        let error = relative_error(&reference.values, &run.values) * 100.0;
        println!(
            "{:<6} (1 accurate step in {}): {:>8.2} ms, position rel. error {:>7.3}%",
            degree.name(),
            Fluidanimate::accurate_period_for(degree),
            run.elapsed.as_secs_f64() * 1e3,
            error
        );
    }
    println!("(as in the paper, only the Mild degree keeps the physics acceptable)");
}

//! Sobel edge detection under different approximation degrees, with modelled
//! energy — a condensed version of the paper's running example plus Figure 1.
//!
//! Writes `sobel_quadrants.pgm` (accurate / Mild / Medium / Aggressive
//! quadrants) into the current directory and prints time, energy and PSNR for
//! each degree.
//!
//! Run with `cargo run --release --example sobel_pipeline`.

use significance_repro::energy::PowerModel;
use significance_repro::kernels::sobel::Sobel;
use significance_repro::kernels::{Benchmark, Degree, ExecutionConfig};
use significance_repro::prelude::*;
use significance_repro::quality::{psnr, GrayImage};

fn main() {
    let sobel = Sobel {
        width: 512,
        height: 512,
    };
    let workers = ExecutionConfig::default_workers();
    let power = PowerModel::for_host();

    let reference = sobel.run(&ExecutionConfig::accurate(workers));
    println!(
        "accurate   : {:>8.2} ms",
        reference.elapsed.as_secs_f64() * 1e3
    );

    let mut images = Vec::new();
    for degree in [Degree::Mild, Degree::Medium, Degree::Aggressive] {
        let run = sobel.run(&ExecutionConfig::significance(
            workers,
            Policy::GtbMaxBuffer,
            degree,
        ));
        let energy = power.energy_joules(run.elapsed.as_secs_f64(), run.busy_core_seconds);
        let quality = psnr(&reference.values, &run.values, 255.0);
        println!(
            "{:<11}: {:>8.2} ms  {:>8.2} J (modelled)  PSNR {:>6.2} dB  ({} accurate / {} approx tasks)",
            format!("{:?}", degree),
            run.elapsed.as_secs_f64() * 1e3,
            energy,
            quality,
            run.tasks.accurate,
            run.tasks.approximate,
        );
        images.push(sobel.output_image(&run.values));
    }

    let quadrants = GrayImage::quadrants(
        &sobel.output_image(&reference.values),
        &images[0],
        &images[1],
        &images[2],
    );
    quadrants
        .save_pgm("sobel_quadrants.pgm")
        .expect("failed to write sobel_quadrants.pgm");
    println!("wrote sobel_quadrants.pgm (accurate / Mild / Medium / Aggressive quadrants)");
}

//! Jacobi solver with approximate early sweeps: the first sweeps drop the
//! off-band matrix contributions (ratio 0.0 at the barrier), later sweeps run
//! accurately to a relaxed tolerance.
//!
//! Run with `cargo run --release --example jacobi_solver`.

use significance_repro::kernels::jacobi::Jacobi;
use significance_repro::kernels::{Benchmark, Degree, ExecutionConfig};
use significance_repro::prelude::*;
use significance_repro::quality::relative_error;

fn main() {
    let jacobi = Jacobi::default();
    let workers = ExecutionConfig::default_workers();

    let reference = jacobi.run(&ExecutionConfig::accurate(workers));
    println!(
        "accurate solve (tol {:.0e}): {:>8.2} ms",
        jacobi.native_tolerance,
        reference.elapsed.as_secs_f64() * 1e3
    );

    for degree in [Degree::Mild, Degree::Medium, Degree::Aggressive] {
        let run = jacobi.run(&ExecutionConfig::significance(workers, Policy::Lqh, degree));
        let error = relative_error(&reference.values, &run.values) * 100.0;
        println!(
            "{:<6} (tol {:.0e}): {:>8.2} ms, solution rel. error {:>7.4}%  ({} approx sweeps of {} tasks)",
            degree.name(),
            Jacobi::tolerance_for(degree),
            run.elapsed.as_secs_f64() * 1e3,
            error,
            jacobi.approx_sweeps,
            jacobi.blocks
        );
    }
}

//! Quickstart: the significance programming model in ~40 lines.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use significance_repro::prelude::*;

fn main() {
    // A runtime with the Global Task Buffering policy and a bounded buffer.
    // The governor runs approximate tasks at 60% modelled frequency, so the
    // energy report below prices them as slower but cheaper (DVFS).
    let rt = Runtime::builder()
        .policy(Policy::Gtb { buffer_size: 16 })
        .governor(ApproxGovernor::new(0.6))
        .build();

    // A task group whose barrier will require at least 40% of the tasks to
    // run their accurate body.
    let group = rt.create_group("quickstart", 0.4);

    let accurate_runs = Arc::new(AtomicUsize::new(0));
    let approx_runs = Arc::new(AtomicUsize::new(0));

    for i in 0..100u32 {
        let acc = accurate_runs.clone();
        let apx = approx_runs.clone();
        rt.task(move || {
            // The accurate body: the full computation.
            acc.fetch_add(1, Ordering::Relaxed);
        })
        .approx(move || {
            // The approximate body: a cheaper substitute.
            apx.fetch_add(1, Ordering::Relaxed);
        })
        // Higher significance = more important for output quality.
        .significance(((i % 9) + 1) as f64 / 10.0)
        .group(&group)
        .spawn();
    }

    // The barrier enforces the group's accurate-task ratio.
    rt.wait_group(&group);

    let stats = rt.group_stats(&group);
    println!("tasks executed      : {}", stats.total());
    println!("accurate            : {}", stats.accurate);
    println!("approximate         : {}", stats.approximate);
    println!("dropped             : {}", stats.dropped);
    println!("achieved ratio      : {:.2}", stats.achieved_ratio());
    println!("significance inversions: {}", stats.inverted);

    // The execution environment accounted every dispatch: how many tasks ran
    // below nominal frequency, and what the run cost under the power model.
    let report = rt.energy_report();
    let reading = report.reading();
    println!("DVFS-scaled tasks   : {}", report.scaled_tasks());
    println!("modelled energy     : {:.3} J", reading.joules);
    println!(
        "  dynamic           : {:.3} J",
        reading.breakdown.dynamic_joules
    );
    println!(
        "  static + idle     : {:.3} J",
        reading.breakdown.static_joules + reading.breakdown.idle_joules
    );

    assert_eq!(stats.total(), 100);
    assert!(stats.achieved_ratio() >= 0.4);
    assert_eq!(
        report.scaled_tasks() as usize,
        stats.approximate + stats.dropped
    );
    assert!(reading.joules > 0.0);
}

//! Workspace-level façade crate.
//!
//! This crate exists so that the repository root can host `examples/` and
//! `tests/` that span every crate in the workspace. It re-exports the public
//! crates so examples can simply `use significance_repro::prelude::*`.

pub use sig_core as core;
pub use sig_energy as energy;
pub use sig_harness as harness;
pub use sig_kernels as kernels;
pub use sig_perforation as perforation;
pub use sig_quality as quality;

/// Convenience re-exports for examples and integration tests.
pub mod prelude {
    pub use sig_core::prelude::*;
    pub use sig_energy::{EnergyMeter, PowerModel};
    pub use sig_quality::{psnr, relative_error};
}

//! Overload-storm chaos tests for the serving layer.
//!
//! Drives a seeded storm at 2× capacity with 15% transient panics through
//! the admission controller and asserts the robustness contract end to end:
//! the books balance in every phase (nothing is silently lost), shedding is
//! significance-monotone (lower-significance classes shed at a rate no lower
//! than higher ones, and a significance-1.0 class is never shed), the system
//! does not deadlock, and post-storm tail latency recovers below the
//! pre-storm watermark.

use std::sync::Arc;
use std::time::Duration;

use sig_core::{ExecutionEnv, FaultPlan, NominalGovernor, PowerModel, Runtime, TransitionCost};
use sig_serving::{
    ArrivalPattern, RequestClass, RetryPolicy, Server, ServerConfig, SimConfig, Simulator,
    SplitMix64,
};

/// Three single-tier classes in ascending significance. Single-tier on
/// purpose: with no degradation ladder to absorb pressure, a 2× storm must
/// engage the shed path, which is what this suite exercises.
fn storm_classes(deadline: Duration) -> Vec<RequestClass> {
    let retry = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_micros(250),
        jitter: 0.3,
    };
    vec![
        RequestClass::exact("background", 0.2, deadline, retry),
        RequestClass::exact("standard", 0.6, deadline, retry),
        RequestClass::exact("critical", 1.0, deadline, retry),
    ]
}

/// Seeded Poisson arrivals paired with seeded class picks
/// (40% background / 40% standard / 20% critical).
fn mixed_schedule(rate: f64, count: usize, seed: u64) -> Vec<(u64, usize)> {
    let offsets = ArrivalPattern::Poisson { rate_per_sec: rate }.schedule(seed, count);
    let mut rng = SplitMix64::new(seed ^ 0x5707_11ca_55e5_0001);
    offsets
        .into_iter()
        .map(|at| {
            let class = match rng.next_u64() % 10 {
                0..=3 => 0,
                4..=7 => 1,
                _ => 2,
            };
            (at, class)
        })
        .collect()
}

/// Assert per-class shed *fractions* are non-increasing with significance
/// (classes are indexed in ascending significance order).
fn assert_shed_monotone(stats: &sig_serving::ServingStats) {
    for class in 1..3 {
        assert!(
            stats.shed_fraction(class) <= stats.shed_fraction(class - 1) + 1e-12,
            "shed order must be significance-monotone: fractions {:?} (shed {:?} / offered {:?})",
            (0..3).map(|c| stats.shed_fraction(c)).collect::<Vec<_>>(),
            stats.shed_by_class,
            stats.offered_by_class,
        );
    }
    assert_eq!(
        stats.shed_by_class.get(2).copied().unwrap_or(0),
        0,
        "significance-1.0 requests are never shed: {:?}",
        stats.shed_by_class
    );
}

/// Deterministic virtual-time storm: pre 0.6× → storm 2× (15% panics armed
/// throughout) → post 0.6×, all phases on one simulator so the controller,
/// governor and energy state carry across.
#[test]
fn seeded_storm_sheds_monotonically_and_recovers() {
    // 4 workers × 1 ms service = 4000 rps capacity.
    let config = SimConfig {
        panic_per_mille: 150,
        seed: 0x5702_a001,
        ..SimConfig::default()
    };
    let env = ExecutionEnv::new(
        PowerModel::for_host(),
        Arc::new(NominalGovernor),
        None,
        TransitionCost::free(),
        config.workers,
    );
    let mut sim = Simulator::new(config, storm_classes(Duration::from_millis(20)), env);

    let pre = sim.run(&mixed_schedule(2_400.0, 2_400, 11));
    let storm = sim.run(&mixed_schedule(8_000.0, 8_000, 12));
    let post = sim.run(&mixed_schedule(2_400.0, 2_400, 13));

    for (name, phase) in [("pre", &pre), ("storm", &storm), ("post", &post)] {
        assert!(
            phase.stats.balanced(),
            "{name} phase loses requests: {:?}",
            phase.stats
        );
    }
    assert!(
        storm.stats.shed > 0,
        "2× storm must shed: {:?}",
        storm.stats
    );
    assert_shed_monotone(&storm.stats);

    let pre_p99 = pre.stats.latency.quantile(0.99);
    let storm_p99 = storm.stats.latency.quantile(0.99);
    let post_p99 = post.stats.latency.quantile(0.99);
    assert!(
        storm_p99 > pre_p99,
        "storm must visibly stress the tail (pre {pre_p99}, storm {storm_p99})"
    );
    assert!(
        post_p99 < storm_p99,
        "post-storm p99 must drop below the storm tail"
    );
    assert!(
        post_p99 <= pre_p99,
        "post-storm p99 must recover below the pre-storm watermark \
         (pre {pre_p99}, post {post_p99})"
    );
}

/// The same storm through the live server and a real runtime with the fault
/// injector armed: both accounting layers must balance, the critical class
/// must never shed, and drain must return (no deadlock).
#[test]
fn live_storm_balances_both_ledgers() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);
    let rt = Runtime::builder()
        .workers(workers)
        .fault_plan(FaultPlan::new(0x570).panics(150))
        .build();
    let base_work = Duration::from_micros(500);
    let mut server = Server::new(
        &rt,
        storm_classes(Duration::from_millis(50)),
        ServerConfig {
            base_work,
            ..Default::default()
        },
    );

    // Capacity = workers / base_work; offer 2× that for ~100 ms.
    let capacity = workers as f64 / base_work.as_secs_f64();
    let rate = 2.0 * capacity;
    let count = (rate * 0.1) as usize;
    server.run(&mixed_schedule(rate, count, 21));

    let stats = server.stats().clone();
    assert!(stats.balanced(), "serving ledger: {stats:?}");
    assert_eq!(stats.offered, count as u64);
    assert_eq!(
        stats.shed_by_class.get(2).copied().unwrap_or(0),
        0,
        "significance-1.0 requests are never shed: {:?}",
        stats.shed_by_class
    );

    let outcomes = rt.wait_all();
    assert_eq!(
        outcomes.completed + outcomes.failed(),
        outcomes.spawned,
        "runtime ledger: {outcomes:?}"
    );
}

//! Admission control with tiered graceful degradation.
//!
//! The controller sits in front of the runtime and watches three signals:
//! queue depth (normalised to a watermark), the deadline-miss rate, and the
//! observed service time (all EWMA-smoothed, all clock-free — the caller
//! feeds it observations, so the same controller drives the live server and
//! the virtual-time simulator).
//!
//! Its response to pressure is strictly ordered, mirroring the paper's
//! quality/energy ladder:
//!
//! 1. **Degrade first** — between `downgrade_start` and `shed_start`
//!    pressure, requests are admitted at progressively lower tiers of their
//!    own quality ladder (lower significance, less work). Full-quality
//!    service resumes only after recovery.
//! 2. **Shed last** — above `shed_start` pressure (and only while the
//!    hysteresis flag is up), requests whose best-tier significance falls
//!    below a rising cutoff are rejected outright. The cutoff is a single
//!    threshold over significance, so at any instant the shed set is a
//!    prefix of the significance axis: strictly lowest-first, verifiable
//!    from the per-level shed histogram.
//!
//! **Hysteresis**: overload is entered at `enter_overload` smoothed pressure
//! (or a deadline-miss EWMA above `miss_watermark`) but exited only below
//! `exit_overload`. While the flag is up, even low instantaneous pressure
//! keeps requests one tier down — the system drains its backlog at reduced
//! quality instead of oscillating between full quality and shedding.

use crate::request::RequestClass;

/// Tuning for [`AdmissionController`]. Pressure is queue depth divided by
/// `queue_watermark`, EWMA-smoothed with `pressure_alpha`.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Queue depth at which pressure reads 1.0.
    pub queue_watermark: usize,
    /// Pressure at which tier downgrade begins.
    pub downgrade_start: f64,
    /// Pressure at which shedding begins (must exceed `downgrade_start`;
    /// between the two, the controller only downgrades).
    pub shed_start: f64,
    /// Pressure at which the shed cutoff reaches `max_shed_significance`.
    pub shed_full: f64,
    /// Upper bound on the shed significance cutoff, strictly below 1.0:
    /// critical (significance 1.0) requests are never shed.
    pub max_shed_significance: f64,
    /// Smoothed pressure that raises the overload flag.
    pub enter_overload: f64,
    /// Smoothed pressure below which the flag clears (must be below
    /// `enter_overload` — the hysteresis band).
    pub exit_overload: f64,
    /// Deadline-miss EWMA that forces the overload flag regardless of queue
    /// depth (a saturated-but-short queue still misses deadlines).
    pub miss_watermark: f64,
    /// EWMA smoothing factor for pressure and miss rate, in `(0, 1]`.
    pub pressure_alpha: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_watermark: 32,
            downgrade_start: 0.25,
            shed_start: 1.0,
            shed_full: 3.0,
            max_shed_significance: 0.95,
            enter_overload: 1.0,
            exit_overload: 0.5,
            miss_watermark: 0.5,
            pressure_alpha: 0.1,
        }
    }
}

impl AdmissionConfig {
    fn validate(&self) {
        assert!(self.queue_watermark > 0);
        assert!(self.downgrade_start < self.shed_start);
        assert!(self.shed_start < self.shed_full);
        assert!((0.0..1.0).contains(&self.max_shed_significance));
        assert!(self.exit_overload < self.enter_overload);
        assert!(self.pressure_alpha > 0.0 && self.pressure_alpha <= 1.0);
    }
}

/// What to do with one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admit at the given tier of the request class's ladder (0 = full
    /// quality).
    Admit {
        /// Ladder index to run the request at.
        tier: usize,
    },
    /// Reject: the request is accounted as shed, never spawned.
    Shed,
}

/// Serving-layer admission controller (see module docs). Clock-free and
/// single-threaded by design: the submission path owns it.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    pressure: f64,
    /// Energy-budget austerity in `[0, 1]`, composed with queue pressure in
    /// [`AdmissionController::effective_pressure`]. `0.0` = no budget.
    budget_pressure: f64,
    miss_rate: f64,
    service_nanos: f64,
    overloaded: bool,
    decisions: u64,
    downgraded: u64,
    shed: u64,
}

impl AdmissionController {
    /// A controller with the given tuning.
    pub fn new(config: AdmissionConfig) -> Self {
        config.validate();
        AdmissionController {
            config,
            pressure: 0.0,
            budget_pressure: 0.0,
            miss_rate: 0.0,
            service_nanos: 0.0,
            overloaded: false,
            decisions: 0,
            downgraded: 0,
            shed: 0,
        }
    }

    /// Compose queue pressure with energy-budget pressure: the budget's
    /// austerity is mapped onto the same `[downgrade_start, shed_full]`
    /// response axis and the **stricter** signal wins, so a tight budget
    /// degrades/sheds exactly like a deep queue would — same ordering, same
    /// critical-exemption — and a zero budget signal changes nothing.
    fn effective_pressure(&self) -> f64 {
        if self.budget_pressure <= 0.0 {
            return self.pressure;
        }
        let config = &self.config;
        let mapped = config.downgrade_start
            + self.budget_pressure * (config.shed_full - config.downgrade_start);
        self.pressure.max(mapped)
    }

    /// Feed the energy-budget controller's austerity (`0.0` = slack, `1.0` =
    /// budget exhausted) into admission. See
    /// [`AdmissionController::effective_pressure`].
    pub fn set_budget_pressure(&mut self, austerity: f64) {
        self.budget_pressure = austerity.clamp(0.0, 1.0);
    }

    /// Decide admission for one request of `class` given the current queue
    /// depth (requests admitted but not yet completed).
    pub fn decide(&mut self, class: &RequestClass, queue_depth: usize) -> AdmissionDecision {
        let config = &self.config;
        let raw = queue_depth as f64 / config.queue_watermark as f64;
        self.pressure += config.pressure_alpha * (raw - self.pressure);
        let pressure = self.effective_pressure();

        // Hysteresis on the smoothed signals.
        if !self.overloaded
            && (pressure >= config.enter_overload || self.miss_rate >= config.miss_watermark)
        {
            self.overloaded = true;
        } else if self.overloaded
            && pressure <= config.exit_overload
            && self.miss_rate < config.miss_watermark * 0.5
        {
            self.overloaded = false;
        }
        self.decisions += 1;

        // Shed last: only while the flag is up and pressure sits above
        // `shed_start`. One rising significance cutoff ⇒ the shed set is
        // always a prefix of the significance axis (lowest first).
        if self.overloaded && pressure >= config.shed_start {
            let span = config.shed_full - config.shed_start;
            let depth = ((pressure - config.shed_start) / span).clamp(0.0, 1.0);
            let cutoff = config.max_shed_significance * depth;
            if class.significance() < cutoff {
                self.shed += 1;
                return AdmissionDecision::Shed;
            }
        }

        // Degrade first: map pressure in [downgrade_start, shed_start] onto
        // the class's ladder depth. While the overload flag is up, stay at
        // least one tier down so the backlog drains before full quality
        // resumes.
        let span = config.shed_start - config.downgrade_start;
        let depth = ((pressure - config.downgrade_start) / span).clamp(0.0, 1.0);
        let ladder = class.tiers.len().saturating_sub(1);
        let mut tier = (depth * ladder as f64).ceil() as usize;
        if self.overloaded && ladder > 0 {
            tier = tier.max(1);
        }
        let tier = class.clamp_tier(tier);
        if tier > 0 {
            self.downgraded += 1;
        }
        AdmissionDecision::Admit { tier }
    }

    /// Feed back one completed attempt: its service time and whether the
    /// request missed its deadline.
    pub fn observe(&mut self, service_nanos: u64, deadline_missed: bool) {
        let alpha = self.config.pressure_alpha;
        self.service_nanos += alpha * (service_nanos as f64 - self.service_nanos);
        let miss = if deadline_missed { 1.0 } else { 0.0 };
        self.miss_rate += alpha * (miss - self.miss_rate);
    }

    /// Smoothed queue pressure (1.0 = at the watermark).
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    /// Current energy-budget pressure (austerity) fed via
    /// [`AdmissionController::set_budget_pressure`].
    pub fn budget_pressure(&self) -> f64 {
        self.budget_pressure
    }

    /// Whether the hysteresis overload flag is currently up.
    pub fn is_overloaded(&self) -> bool {
        self.overloaded
    }

    /// Smoothed deadline-miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        self.miss_rate
    }

    /// EWMA of observed attempt service time, nanoseconds — the expected
    /// cost of one more attempt, used to budget retries against deadlines.
    pub fn expected_service_nanos(&self) -> u64 {
        self.service_nanos as u64
    }

    /// `(decisions, downgraded, shed)` counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.decisions, self.downgraded, self.shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{QualityTier, RetryPolicy};
    use std::time::Duration;

    fn class(name: &str, significance: f64, tiers: usize) -> RequestClass {
        let tiers = (0..tiers)
            .map(|tier| QualityTier {
                significance: significance * (1.0 - 0.3 * tier as f64),
                work_factor: 1.0 / (tier + 1) as f64,
            })
            .collect();
        RequestClass {
            name: name.into(),
            tiers,
            deadline: Duration::from_millis(10),
            retry: RetryPolicy::none(),
        }
    }

    #[test]
    fn idle_system_admits_full_quality() {
        let mut controller = AdmissionController::new(AdmissionConfig::default());
        let c = class("c", 0.8, 3);
        for _ in 0..100 {
            assert_eq!(
                controller.decide(&c, 0),
                AdmissionDecision::Admit { tier: 0 }
            );
        }
        assert!(!controller.is_overloaded());
    }

    #[test]
    fn downgrade_engages_strictly_before_shedding() {
        let mut controller = AdmissionController::new(AdmissionConfig::default());
        let c = class("c", 0.6, 3);
        let mut first_downgrade = None;
        let mut first_shed = None;
        // Ramp queue depth 0..8× watermark; record when each response kicks in.
        for depth in 0..256usize {
            let decision = controller.decide(&c, depth);
            match decision {
                AdmissionDecision::Admit { tier } if tier > 0 && first_downgrade.is_none() => {
                    first_downgrade = Some(depth);
                }
                AdmissionDecision::Shed if first_shed.is_none() => {
                    first_shed = Some(depth);
                }
                _ => {}
            }
        }
        let downgrade = first_downgrade.expect("ramp must trigger downgrade");
        let shed = first_shed.expect("ramp must eventually shed");
        assert!(
            downgrade < shed,
            "downgrade at depth {downgrade} must precede shed at {shed}"
        );
    }

    #[test]
    fn shed_order_is_significance_monotone() {
        let mut controller = AdmissionController::new(AdmissionConfig::default());
        let low = class("low", 0.2, 1);
        let mid = class("mid", 0.6, 1);
        let critical = class("crit", 1.0, 1);
        // Saturate the smoothed pressure deep into the shed region.
        for _ in 0..500 {
            let _ = controller.decide(&critical, 200);
        }
        assert!(controller.is_overloaded());
        let shed_low = matches!(controller.decide(&low, 200), AdmissionDecision::Shed);
        let shed_mid = matches!(controller.decide(&mid, 200), AdmissionDecision::Shed);
        let shed_critical = matches!(controller.decide(&critical, 200), AdmissionDecision::Shed);
        assert!(shed_low, "lowest significance is shed first");
        assert!(shed_mid, "mid significance is shed at full depth");
        assert!(!shed_critical, "critical requests are never shed");
    }

    #[test]
    fn hysteresis_holds_degraded_until_exit_threshold() {
        let mut controller = AdmissionController::new(AdmissionConfig::default());
        let c = class("c", 0.8, 2);
        for _ in 0..500 {
            let _ = controller.decide(&c, 100);
        }
        assert!(controller.is_overloaded());
        // Pressure decays toward 0.75 — inside the hysteresis band
        // (exit 0.5 < 0.75 < enter 1.0): the flag must hold, and requests
        // stay at least one tier down.
        for _ in 0..500 {
            let decision = controller.decide(&c, 24);
            assert!(controller.is_overloaded(), "band holds the flag");
            if let AdmissionDecision::Admit { tier } = decision {
                assert!(tier >= 1, "overloaded admits at most tier-1 quality");
            }
        }
        // Queue drains: pressure decays below exit ⇒ full recovery.
        for _ in 0..500 {
            let _ = controller.decide(&c, 0);
        }
        assert!(!controller.is_overloaded());
        assert_eq!(
            controller.decide(&c, 0),
            AdmissionDecision::Admit { tier: 0 },
            "full quality resumes after recovery"
        );
    }

    #[test]
    fn miss_rate_alone_forces_overload() {
        let mut controller = AdmissionController::new(AdmissionConfig::default());
        let c = class("c", 0.8, 2);
        for _ in 0..200 {
            controller.observe(1_000, true);
        }
        assert!(controller.miss_rate() > 0.9);
        let _ = controller.decide(&c, 0);
        assert!(
            controller.is_overloaded(),
            "sustained deadline misses force the overload flag"
        );
        assert!(controller.expected_service_nanos() > 0);
    }
}

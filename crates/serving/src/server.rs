//! The live serving layer: open-loop request admission over a real
//! [`Runtime`].
//!
//! A [`Server`] wraps a running [`Runtime`] and turns *requests* (class +
//! arrival time) into *tasks* (significance + deadline + body), threading
//! every request through the [`AdmissionController`] and observing each
//! attempt through its [`SpawnHandle`] — no barriers anywhere on the serving
//! path.
//!
//! One request may spawn several task **generations**: the initial attempt
//! plus a retry per transient failure ([`TaskOutcome::is_transient_failure`]),
//! each with jittered exponential backoff and each budgeted against the
//! request's remaining deadline. The server maintains a request-id →
//! task-id index covering *every* generation, so
//! [`Server::cancel_request`] cancels a request whose retry clone is already
//! queued — both generations, not just the first (the PR-6 cancellation API
//! only knows task-id ranges, which a retry silently escapes).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sig_core::{Runtime, SpawnHandle, TaskId, TaskIdRange, TaskOutcome};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
use crate::report::ServingStats;
use crate::request::{RequestClass, RequestOutcome, ViolationKind};
use crate::rng::SplitMix64;

/// Identifier of one offered request (dense, in offer order).
pub type RequestId = u64;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission-control tuning.
    pub admission: AdmissionConfig,
    /// Seed for retry jitter.
    pub seed: u64,
    /// Tier-0 service time of a request: each attempt busy-spins
    /// `base_work × work_factor` of its tier.
    pub base_work: Duration,
    /// Granularity of the [`Server::run`] poll loop.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission: AdmissionConfig::default(),
            seed: 0x5eed,
            base_work: Duration::from_micros(200),
            poll_interval: Duration::from_micros(50),
        }
    }
}

/// One in-flight request.
struct ActiveRequest {
    id: RequestId,
    class: usize,
    /// Offset of the scheduled arrival from run start, nanoseconds.
    arrival_nanos: u64,
    /// Absolute deadline offset from run start, nanoseconds.
    deadline_nanos: u64,
    /// Tier of the current attempt.
    tier: usize,
    /// Whether any attempt was admitted below tier 0.
    downgraded: bool,
    /// Attempts spawned so far (retries = attempts - 1).
    attempts: u32,
    /// Handle of the in-flight attempt (`None` while backing off).
    handle: Option<SpawnHandle<u64>>,
    /// Offset at which the pending retry may spawn.
    retry_at: Option<u64>,
    cancelled: bool,
}

/// Open-loop serving front end over a [`Runtime`] (see module docs).
pub struct Server<'rt> {
    runtime: &'rt Runtime,
    classes: Vec<RequestClass>,
    config: ServerConfig,
    admission: AdmissionController,
    rng: SplitMix64,
    start: Instant,
    next_id: RequestId,
    active: Vec<ActiveRequest>,
    /// Request-id → task id of **every** generation spawned for it.
    generations: HashMap<RequestId, Vec<TaskId>>,
    stats: ServingStats,
}

impl<'rt> Server<'rt> {
    /// A server submitting into `runtime`, offering requests of `classes`.
    pub fn new(runtime: &'rt Runtime, classes: Vec<RequestClass>, config: ServerConfig) -> Self {
        for class in &classes {
            class.validate();
        }
        assert!(!classes.is_empty(), "a server needs at least one class");
        Server {
            runtime,
            classes,
            admission: AdmissionController::new(config.admission),
            rng: SplitMix64::new(config.seed ^ 0x5e21_9e0f_ca11_ab1e),
            config,
            start: Instant::now(),
            next_id: 0,
            active: Vec::new(),
            generations: HashMap::new(),
            stats: ServingStats::default(),
        }
    }

    /// Nanoseconds since the server started (the request time base).
    pub fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Offer one request of class index `class` arriving now. The admission
    /// decision happens synchronously; a shed request never spawns a task.
    pub fn offer(&mut self, class: usize) -> RequestId {
        let arrival = self.now_nanos();
        self.offer_at(class, arrival)
    }

    fn offer_at(&mut self, class: usize, arrival_nanos: u64) -> RequestId {
        assert!(class < self.classes.len(), "unknown request class {class}");
        let id = self.next_id;
        self.next_id += 1;
        self.stats.offered += 1;
        self.stats.note_offered_class(class);

        let spec = &self.classes[class];
        let depth = self.active.len();
        match self.admission.decide(spec, depth) {
            AdmissionDecision::Shed => {
                self.stats.record(&RequestOutcome::Shed);
                self.stats.note_shed_class(class);
            }
            AdmissionDecision::Admit { tier } => {
                let deadline_nanos = arrival_nanos.saturating_add(spec.deadline.as_nanos() as u64);
                let mut request = ActiveRequest {
                    id,
                    class,
                    arrival_nanos,
                    deadline_nanos,
                    tier,
                    downgraded: tier > 0,
                    attempts: 0,
                    handle: None,
                    retry_at: None,
                    cancelled: false,
                };
                self.spawn_attempt(&mut request, tier);
                self.active.push(request);
            }
        }
        id
    }

    /// Spawn one attempt of `request` at `tier`, recording the new task
    /// generation in the request index.
    fn spawn_attempt(&mut self, request: &mut ActiveRequest, tier: usize) {
        let spec = &self.classes[request.class];
        let tier = spec.clamp_tier(tier);
        let quality = spec.tiers[tier];
        let work = self.config.base_work.mul_f64(quality.work_factor.max(1e-9));
        let remaining = request
            .deadline_nanos
            .saturating_sub(self.now_nanos())
            .max(1);
        let handle = self
            .runtime
            .submit(move || busy_spin(work))
            .significance(quality.significance)
            .deadline(Duration::from_nanos(remaining))
            .spawn();
        self.generations
            .entry(request.id)
            .or_default()
            .push(handle.id());
        request.tier = tier;
        request.downgraded |= tier > 0;
        request.attempts += 1;
        request.retry_at = None;
        request.handle = Some(handle);
    }

    /// Cancel a request mid-flight: cancels **every** task generation
    /// recorded for it (initial attempt *and* queued retry clones) and stops
    /// further retries. The request terminates as
    /// [`ViolationKind::Cancelled`] unless an attempt already completed.
    pub fn cancel_request(&mut self, id: RequestId) {
        if let Some(task_ids) = self.generations.get(&id) {
            for task in task_ids {
                self.runtime.cancel_tasks(&TaskIdRange::single(*task));
            }
        }
        if let Some(request) = self.active.iter_mut().find(|r| r.id == id) {
            request.cancelled = true;
            request.retry_at = None;
        }
    }

    /// The task id of every generation spawned for `id`, in spawn order
    /// (empty if the request was shed at admission).
    pub fn task_generations(&self, id: RequestId) -> Vec<TaskId> {
        self.generations.get(&id).cloned().unwrap_or_default()
    }

    /// Sweep in-flight requests once: resolve finished attempts, issue due
    /// retries, finalise terminal requests. Non-blocking.
    pub fn poll(&mut self) {
        // If the runtime runs under an energy budget
        // (`RuntimeBuilder::energy_budget`), compose the controller's
        // austerity with admission pressure: a tight budget degrades and
        // sheds through the same ladder queue pressure does.
        if let Some(setpoint) = self.runtime.energy_budget_setpoint() {
            self.admission.set_budget_pressure(setpoint.austerity);
        }
        let now = self.now_nanos();
        let mut index = 0;
        while index < self.active.len() {
            let finished = self.step_request(index, now);
            if finished {
                let request = self.active.swap_remove(index);
                if request.downgraded {
                    self.stats.downgraded += 1;
                }
            } else {
                index += 1;
            }
        }
    }

    /// Advance one request; returns `true` when it reached a terminal
    /// outcome (already recorded in the stats).
    fn step_request(&mut self, index: usize, now: u64) -> bool {
        // A cancelled request waiting out a backoff has no task left to
        // observe: finalise it here.
        if self.active[index].cancelled && self.active[index].handle.is_none() {
            self.stats
                .record(&RequestOutcome::Violated(ViolationKind::Cancelled));
            return true;
        }

        if let Some(retry_at) = self.active[index].retry_at {
            if now >= retry_at {
                // Re-admit the retry: under pressure it may come back at a
                // lower tier (downgrade-before-shed applies to retries too),
                // or be shed outright.
                let class = self.active[index].class;
                let depth = self.active.len();
                let spec = &self.classes[class];
                match self.admission.decide(spec, depth) {
                    AdmissionDecision::Shed => {
                        self.stats.record(&RequestOutcome::Shed);
                        self.stats.note_shed_class(class);
                        return true;
                    }
                    AdmissionDecision::Admit { tier } => {
                        let tier = tier.max(self.active[index].tier);
                        let mut request =
                            std::mem::replace(&mut self.active[index], placeholder_request());
                        self.spawn_attempt(&mut request, tier);
                        self.active[index] = request;
                    }
                }
            }
            return false;
        }

        let outcome = match self.active[index].handle.as_ref() {
            Some(handle) => match handle.try_outcome() {
                Some(outcome) => outcome,
                None => return false,
            },
            None => return false,
        };

        match outcome {
            TaskOutcome::Completed(_) => {
                let request = &mut self.active[index];
                let finished = request
                    .handle
                    .as_ref()
                    .and_then(|handle| handle.finished_at())
                    .map(|at| {
                        at.saturating_duration_since(self.start)
                            .as_nanos()
                            .min(u64::MAX as u128) as u64
                    })
                    .unwrap_or(now);
                let latency = finished.saturating_sub(request.arrival_nanos);
                let service = request
                    .handle
                    .as_mut()
                    .and_then(|handle| handle.take_value())
                    .unwrap_or(0);
                let missed = finished > request.deadline_nanos;
                let (tier, retries) = (request.tier, request.attempts.saturating_sub(1));
                self.admission.observe(service, missed);
                if missed {
                    self.stats
                        .record(&RequestOutcome::Violated(ViolationKind::Late));
                } else {
                    self.stats.record(&RequestOutcome::Completed {
                        tier,
                        latency_nanos: latency,
                        retries,
                    });
                }
                true
            }
            TaskOutcome::Shed => {
                // Runtime brownout shed the attempt: a deliberate load-control
                // decision — never retried, reported as shed.
                self.stats.record(&RequestOutcome::Shed);
                let class = self.active[index].class;
                self.stats.note_shed_class(class);
                true
            }
            TaskOutcome::Panicked | TaskOutcome::Cancelled => {
                if self.active[index].cancelled {
                    self.stats
                        .record(&RequestOutcome::Violated(ViolationKind::Cancelled));
                    return true;
                }
                self.schedule_retry(index, now)
            }
        }
    }

    /// Decide the fate of a transiently failed attempt: back off and retry
    /// if the retry budget and the remaining deadline allow, else finalise
    /// as an accounted violation. Returns `true` when terminal.
    fn schedule_retry(&mut self, index: usize, now: u64) -> bool {
        let request = &mut self.active[index];
        let spec = &self.classes[request.class];
        if request.attempts > spec.retry.max_retries {
            self.stats
                .record(&RequestOutcome::Violated(ViolationKind::RetriesExhausted));
            return true;
        }
        let backoff = spec.retry.backoff_nanos(request.attempts, &mut self.rng);
        let quality = spec.tiers[spec.clamp_tier(request.tier)];
        let base_estimate = (self.config.base_work.as_nanos() as f64 * quality.work_factor) as u64;
        let expected = self.admission.expected_service_nanos().max(base_estimate);
        let resume = now.saturating_add(backoff);
        if resume.saturating_add(expected) > request.deadline_nanos {
            self.stats
                .record(&RequestOutcome::Violated(ViolationKind::BudgetExhausted));
            return true;
        }
        request.handle = None;
        request.retry_at = Some(resume);
        false
    }

    /// Block until every in-flight request reaches a terminal outcome.
    pub fn drain(&mut self) {
        while !self.active.is_empty() {
            self.poll();
            if !self.active.is_empty() {
                std::thread::sleep(self.config.poll_interval);
            }
        }
    }

    /// Run an open-loop schedule: `schedule` pairs `(arrival offset nanos,
    /// class index)`, ascending. Arrivals are submitted on time regardless of
    /// completions — at 2× capacity the server keeps receiving 2× capacity —
    /// then the run drains. Returns the final scoreboard.
    pub fn run(&mut self, schedule: &[(u64, usize)]) -> &ServingStats {
        let mut next = 0;
        while next < schedule.len() {
            let now = self.now_nanos();
            while next < schedule.len() && schedule[next].0 <= now {
                let (arrival, class) = schedule[next];
                self.offer_at(class, arrival);
                next += 1;
            }
            self.poll();
            if next < schedule.len() {
                let wait = schedule[next].0.saturating_sub(self.now_nanos());
                let wait = Duration::from_nanos(wait).min(self.config.poll_interval);
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
        }
        self.drain();
        &self.stats
    }

    /// The scoreboard so far.
    pub fn stats(&self) -> &ServingStats {
        &self.stats
    }

    /// The admission controller (pressure, overload flag, counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Requests currently in flight (admitted, not yet terminal).
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }
}

/// Busy-spin for `duration`, returning the measured nanoseconds — the
/// synthetic request body (CPU-bound, interruption-free, fault-injectable).
fn busy_spin(duration: Duration) -> u64 {
    let start = Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Inert placeholder swapped in while a request is re-spawned (never
/// observed: the slot is overwritten before the borrow ends).
fn placeholder_request() -> ActiveRequest {
    ActiveRequest {
        id: u64::MAX,
        class: 0,
        arrival_nanos: 0,
        deadline_nanos: 0,
        tier: 0,
        downgraded: false,
        attempts: 0,
        handle: None,
        retry_at: None,
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{QualityTier, RetryPolicy};
    use sig_core::{FaultPlan, Runtime};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn quick_class(deadline: Duration, retry: RetryPolicy) -> RequestClass {
        RequestClass {
            name: "test".into(),
            tiers: vec![
                QualityTier {
                    significance: 0.9,
                    work_factor: 1.0,
                },
                QualityTier {
                    significance: 0.5,
                    work_factor: 0.5,
                },
            ],
            deadline,
            retry,
        }
    }

    #[test]
    fn uncontended_requests_complete_within_deadline() {
        let rt = Runtime::builder().workers(2).build();
        let class = quick_class(Duration::from_secs(5), RetryPolicy::none());
        let mut server = Server::new(
            &rt,
            vec![class],
            ServerConfig {
                base_work: Duration::from_micros(50),
                ..Default::default()
            },
        );
        for _ in 0..50 {
            server.offer(0);
        }
        server.drain();
        let stats = server.stats();
        assert!(stats.balanced(), "identity: {stats:?}");
        assert_eq!(stats.offered, 50);
        assert_eq!(stats.completed, 50);
        assert_eq!(stats.latency.count(), 50);
    }

    #[test]
    fn transient_faults_retry_and_books_balance() {
        let rt = Runtime::builder()
            .workers(2)
            .fault_plan(FaultPlan::new(7).panics(300))
            .build();
        let retry = RetryPolicy {
            max_retries: 6,
            base_backoff: Duration::from_micros(100),
            jitter: 0.5,
        };
        let class = quick_class(Duration::from_secs(10), retry);
        let mut server = Server::new(
            &rt,
            vec![class],
            ServerConfig {
                base_work: Duration::from_micros(50),
                ..Default::default()
            },
        );
        for _ in 0..100 {
            server.offer(0);
        }
        server.drain();
        let stats = server.stats();
        assert!(stats.balanced(), "identity: {stats:?}");
        assert_eq!(stats.offered, 100);
        assert!(stats.retries > 0, "30% panics must force retries");
        assert!(
            stats.completed >= 95,
            "generous budget should complete nearly all: {stats:?}"
        );
        // Nothing is silently lost: the runtime's own books also balance.
        let outcomes = rt.wait_all();
        assert_eq!(outcomes.completed + outcomes.failed(), outcomes.spawned);
    }

    /// Regression (satellite): cancelling a request whose retry clone is
    /// already queued must cancel **both** generations via the request-id →
    /// task-id index — a plain task-range cancel of the first spawn would
    /// miss the retry and let the request complete anyway.
    #[test]
    fn cancel_request_covers_queued_retry_generations() {
        let rt = Runtime::builder().workers(1).build();
        let retry = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(30),
            jitter: 0.0,
        };
        let class = quick_class(Duration::from_secs(30), retry);
        let mut server = Server::new(&rt, vec![class], ServerConfig::default());

        // Gate 1 pins the single worker so the first attempt stays queued.
        let gate1 = Arc::new(AtomicBool::new(false));
        let hold = gate1.clone();
        rt.task(move || while !hold.load(Ordering::Acquire) {})
            .spawn();

        let id = server.offer(0);
        let first_generation = server.task_generations(id);
        assert_eq!(first_generation.len(), 1);

        // Cancel generation 1 directly (simulating a transient failure),
        // then release the worker: the attempt resolves Cancelled and the
        // server schedules a backoff retry.
        rt.cancel_tasks(&TaskIdRange::single(first_generation[0]));
        gate1.store(true, Ordering::Release);
        while server.in_flight() == 1 && server.task_generations(id).len() == 1 {
            server.poll();
            if server.active.first().is_some_and(|r| r.retry_at.is_some()) {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(server.in_flight(), 1, "retry must be pending, not lost");

        // Gate 2 pins the worker again so the retry generation spawns but
        // stays queued.
        let gate2 = Arc::new(AtomicBool::new(false));
        let hold = gate2.clone();
        rt.task(move || while !hold.load(Ordering::Acquire) {})
            .spawn();
        while server.task_generations(id).len() < 2 {
            server.poll();
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(server.task_generations(id).len(), 2);

        // The regression: cancel through the index — it must reach the
        // queued generation-2 clone, not just the long-terminal first spawn.
        server.cancel_request(id);
        gate2.store(true, Ordering::Release);
        server.drain();

        let stats = server.stats();
        assert!(stats.balanced(), "identity: {stats:?}");
        assert_eq!(stats.cancelled, 1, "request ends Cancelled: {stats:?}");
        assert_eq!(stats.completed, 0, "the retry must not complete");
        let outcomes = rt.wait_all();
        assert_eq!(outcomes.completed + outcomes.failed(), outcomes.spawned);
        assert_eq!(outcomes.cancelled, 2, "both generations cancelled");
    }
}

//! Seeded splitmix64 generator: the same tiny deterministic PRNG the fault
//! plan uses, here driving arrival schedules and retry jitter so every
//! serving experiment replays bit-identically from its seed.

/// Splitmix64 state. Cheap (three multiplies per draw), full-period over
/// `u64`, and deterministic across platforms.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in the half-open unit interval `[0, 1)`, with 53 bits
    /// of mantissa (never exactly 1.0, so `ln` below is always finite).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponentially distributed draw with the given rate (events per
    /// unit time), via inversion. Returns the gap until the next event.
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // 1 - u is in (0, 1]: ln is finite and the gap non-negative.
        -(1.0 - self.next_f64()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = SplitMix64::new(43);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SplitMix64::new(9);
        let rate = 4.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(rate)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} should be near {}",
            1.0 / rate
        );
    }
}

//! Open-loop load generation: seeded arrival schedules.
//!
//! Open-loop means arrivals do **not** wait for completions — the schedule
//! is fixed up front (as in trace-driven FaaS harnesses), so overload is
//! expressible: at 2× capacity the generator keeps submitting at 2× capacity
//! no matter how far behind the server falls. Every pattern is a pure
//! function of its parameters and a seed, so live runs and the deterministic
//! simulator replay the identical schedule.

use std::fmt;
use std::path::Path;

use crate::rng::SplitMix64;

const NANOS_PER_SEC: f64 = 1e9;

/// Why a recorded trace failed to parse (see
/// [`ArrivalPattern::from_trace_text`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// A non-comment line was not a `u64` nanosecond offset.
    BadOffset {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The trace contained no offsets at all.
    Empty,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::BadOffset { line, token } => {
                write!(
                    f,
                    "trace line {line}: {token:?} is not a nanosecond offset (expected \
                     a non-negative integer)"
                )
            }
            TraceParseError::Empty => write!(f, "trace contains no arrival offsets"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// A seeded arrival process. All variants produce *offsets in nanoseconds
/// from the start of the run*, sorted ascending.
#[derive(Debug, Clone)]
pub enum ArrivalPattern {
    /// Memoryless Poisson arrivals at `rate_per_sec`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// On/off modulated Poisson: `burst_len_nanos` of `burst_rate_per_sec`
    /// arrivals at the start of every `period_nanos`, `base_rate_per_sec`
    /// for the remainder — the diurnal-spike shape open-loop serving
    /// papers stress.
    Bursty {
        /// Arrival rate outside bursts, in requests per second.
        base_rate_per_sec: f64,
        /// Arrival rate inside bursts, in requests per second.
        burst_rate_per_sec: f64,
        /// Length of the bursty prefix of each period, nanoseconds.
        burst_len_nanos: u64,
        /// Modulation period, nanoseconds.
        period_nanos: u64,
    },
    /// Verbatim replay of a recorded trace of arrival offsets (nanoseconds,
    /// need not be sorted; the schedule sorts them).
    Trace(Vec<u64>),
}

impl ArrivalPattern {
    /// Parse a recorded trace from its text form: one nanosecond offset per
    /// line (offsets from the start of the run, need not be sorted). Blank
    /// lines and `#` comments are ignored; `_` separators inside numbers are
    /// allowed (`1_000_000`). Returns [`ArrivalPattern::Trace`].
    pub fn from_trace_text(text: &str) -> Result<Self, TraceParseError> {
        let mut offsets = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let token: String = line.chars().filter(|&c| c != '_').collect();
            match token.parse::<u64>() {
                Ok(offset) => offsets.push(offset),
                Err(_) => {
                    return Err(TraceParseError::BadOffset {
                        line: index + 1,
                        token: line.to_string(),
                    })
                }
            }
        }
        if offsets.is_empty() {
            return Err(TraceParseError::Empty);
        }
        Ok(ArrivalPattern::Trace(offsets))
    }

    /// Read and parse a trace file (see
    /// [`ArrivalPattern::from_trace_text`] for the format). I/O errors are
    /// boxed alongside parse errors so callers report either uniformly.
    pub fn from_trace_file(path: impl AsRef<Path>) -> Result<Self, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path.as_ref())?;
        Ok(Self::from_trace_text(&text)?)
    }

    /// The first `count` arrival offsets of the seeded schedule, in
    /// nanoseconds, ascending. A `Trace` returns at most its own length.
    pub fn schedule(&self, seed: u64, count: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed ^ 0xa55a_5aa5_0f0f_f0f0);
        match self {
            ArrivalPattern::Poisson { rate_per_sec } => {
                assert!(*rate_per_sec > 0.0, "Poisson rate must be positive");
                let mut at = 0.0f64;
                (0..count)
                    .map(|_| {
                        at += rng.next_exp(rate_per_sec / NANOS_PER_SEC);
                        at as u64
                    })
                    .collect()
            }
            ArrivalPattern::Bursty {
                base_rate_per_sec,
                burst_rate_per_sec,
                burst_len_nanos,
                period_nanos,
            } => {
                assert!(*base_rate_per_sec > 0.0 && *burst_rate_per_sec > 0.0);
                assert!(*period_nanos > 0 && burst_len_nanos <= period_nanos);
                // Piecewise-Poisson via thinning-free segment walking: draw
                // the next gap at the rate of the current segment; if it
                // crosses the segment boundary, rescale the remainder at the
                // next segment's rate (memorylessness makes this exact).
                let mut schedule = Vec::with_capacity(count);
                let mut at = 0.0f64;
                while schedule.len() < count {
                    let mut gap_units = rng.next_exp(1.0); // unit-rate exponential
                    loop {
                        let in_period = at % *period_nanos as f64;
                        let in_burst = in_period < *burst_len_nanos as f64;
                        let rate = if in_burst {
                            burst_rate_per_sec / NANOS_PER_SEC
                        } else {
                            base_rate_per_sec / NANOS_PER_SEC
                        };
                        let boundary = if in_burst {
                            *burst_len_nanos as f64 - in_period
                        } else {
                            *period_nanos as f64 - in_period
                        };
                        let gap = gap_units / rate;
                        if gap <= boundary {
                            at += gap;
                            break;
                        }
                        at += boundary;
                        gap_units -= boundary * rate;
                    }
                    schedule.push(at as u64);
                }
                schedule
            }
            ArrivalPattern::Trace(offsets) => {
                let mut schedule: Vec<u64> = offsets.iter().copied().take(count).collect();
                schedule.sort_unstable();
                schedule
            }
        }
    }

    /// The pattern's long-run mean rate in requests per second (the trace
    /// variant derives it from its own span).
    pub fn mean_rate_per_sec(&self) -> f64 {
        match self {
            ArrivalPattern::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalPattern::Bursty {
                base_rate_per_sec,
                burst_rate_per_sec,
                burst_len_nanos,
                period_nanos,
            } => {
                let burst_fraction = *burst_len_nanos as f64 / *period_nanos as f64;
                burst_rate_per_sec * burst_fraction + base_rate_per_sec * (1.0 - burst_fraction)
            }
            ArrivalPattern::Trace(offsets) => {
                let span = offsets.iter().max().copied().unwrap_or(0);
                if span == 0 {
                    0.0
                } else {
                    offsets.len() as f64 / (span as f64 / NANOS_PER_SEC)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_sorted_deterministic_and_rate_accurate() {
        let pattern = ArrivalPattern::Poisson {
            rate_per_sec: 10_000.0,
        };
        let a = pattern.schedule(1, 20_000);
        let b = pattern.schedule(1, 20_000);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "ascending offsets");
        let span_secs = *a.last().unwrap() as f64 / NANOS_PER_SEC;
        let rate = a.len() as f64 / span_secs;
        assert!(
            (rate - 10_000.0).abs() / 10_000.0 < 0.05,
            "empirical rate {rate} within 5% of nominal"
        );
        assert_ne!(a, pattern.schedule(2, 20_000), "seeds differ");
    }

    #[test]
    fn bursty_schedule_concentrates_arrivals_in_bursts() {
        let pattern = ArrivalPattern::Bursty {
            base_rate_per_sec: 1_000.0,
            burst_rate_per_sec: 20_000.0,
            burst_len_nanos: 2_000_000, // 2 ms burst...
            period_nanos: 10_000_000,   // ...per 10 ms period
        };
        let schedule = pattern.schedule(3, 10_000);
        assert!(schedule.windows(2).all(|w| w[0] <= w[1]));
        let in_burst = schedule
            .iter()
            .filter(|&&at| at % 10_000_000 < 2_000_000)
            .count();
        // Expected burst share: (20k·2ms)/(20k·2ms + 1k·8ms) ≈ 83%.
        let share = in_burst as f64 / schedule.len() as f64;
        assert!(share > 0.7, "burst share {share} should dominate");
        let mean = pattern.mean_rate_per_sec();
        assert!((mean - (20_000.0 * 0.2 + 1_000.0 * 0.8)).abs() < 1e-6);
    }

    #[test]
    fn trace_schedule_sorts_and_truncates() {
        let pattern = ArrivalPattern::Trace(vec![30, 10, 20, 40]);
        assert_eq!(pattern.schedule(0, 3), vec![10, 20, 30]);
        assert_eq!(pattern.schedule(9, 10).len(), 4, "seed-independent");
    }

    #[test]
    fn trace_text_parses_comments_blanks_and_separators() {
        let text = "# recorded 2026-08-08\n1_000\n\n250 # early spike\n500\n";
        let pattern = ArrivalPattern::from_trace_text(text).unwrap();
        match &pattern {
            ArrivalPattern::Trace(offsets) => assert_eq!(offsets, &vec![1_000, 250, 500]),
            other => panic!("expected a trace, got {other:?}"),
        }
        assert_eq!(pattern.schedule(0, 10), vec![250, 500, 1_000]);
    }

    #[test]
    fn malformed_trace_reports_line_and_token() {
        let err = ArrivalPattern::from_trace_text("100\nnot-a-number\n200\n").unwrap_err();
        assert_eq!(
            err,
            TraceParseError::BadOffset {
                line: 2,
                token: "not-a-number".into()
            }
        );
        assert!(err.to_string().contains("line 2"), "{err}");
        let negative = ArrivalPattern::from_trace_text("-5\n").unwrap_err();
        assert!(matches!(
            negative,
            TraceParseError::BadOffset { line: 1, .. }
        ));
        assert_eq!(
            ArrivalPattern::from_trace_text("# only comments\n").unwrap_err(),
            TraceParseError::Empty
        );
    }

    #[test]
    fn trace_file_round_trips_and_missing_file_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join("sig_serving_arrival_trace_test.txt");
        std::fs::write(&path, "10\n30\n20\n").unwrap();
        let pattern = ArrivalPattern::from_trace_file(&path).unwrap();
        assert_eq!(pattern.schedule(0, 10), vec![10, 20, 30]);
        std::fs::remove_file(&path).unwrap();
        assert!(ArrivalPattern::from_trace_file(&path).is_err());
    }
}

//! Request classes: quality tiers, deadlines, and retry budgets.
//!
//! A request class is the serving-side *contract* for a family of requests:
//! a ladder of quality tiers (significance + work factor, best first), an
//! arrival-relative deadline, and a retry policy for transient failures.
//! The admission controller degrades a request by admitting it at a lower
//! tier of its own ladder — the serving analogue of the paper's per-task
//! `significant(...)` clause, priced per request instead of per group.

use std::time::Duration;

use crate::rng::SplitMix64;

/// One rung of a request class's degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityTier {
    /// Significance of tasks spawned for this tier, in `[0, 1]`. Tier 0 of
    /// a class is its full-quality contract; lower tiers carry lower
    /// significance, placing them earlier in brownout shed order.
    pub significance: f64,
    /// Relative computational cost of this tier (tier 0 ≡ 1.0); lower tiers
    /// do proportionally less work, e.g. a perforated loop or coarser model.
    pub work_factor: f64,
}

/// Jittered exponential backoff budgeted against a deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial one (0 = never retry).
    pub max_retries: u32,
    /// Backoff before retry #1; doubles each further attempt.
    pub base_backoff: Duration,
    /// Uniform jitter fraction in `[0, 1]`: the backoff is scaled by a
    /// factor drawn from `[1 - jitter, 1 + jitter]`, decorrelating retry
    /// storms after a mass failure.
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// The backoff before retry `attempt` (1-based), with seeded jitter.
    pub fn backoff_nanos(&self, attempt: u32, rng: &mut SplitMix64) -> u64 {
        if attempt == 0 || self.base_backoff.is_zero() {
            return 0;
        }
        let exponent = (attempt - 1).min(20);
        let base = self.base_backoff.as_nanos() as f64 * (1u64 << exponent) as f64;
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - jitter + 2.0 * jitter * rng.next_f64();
        (base * scale) as u64
    }
}

/// A request class: the quality ladder, deadline, and retry contract shared
/// by every request of the class.
#[derive(Debug, Clone)]
pub struct RequestClass {
    /// Class name (reporting only).
    pub name: String,
    /// Degradation ladder, best (most significant, most work) tier first.
    /// Must be non-empty, with strictly non-increasing significance.
    pub tiers: Vec<QualityTier>,
    /// Arrival-relative deadline: the request's SLO.
    pub deadline: Duration,
    /// Retry contract for transient (`Panicked`/`Cancelled`) attempt
    /// failures.
    pub retry: RetryPolicy,
}

impl RequestClass {
    /// A single-tier class: full quality or nothing (the "exact-only"
    /// baseline).
    pub fn exact(name: &str, significance: f64, deadline: Duration, retry: RetryPolicy) -> Self {
        RequestClass {
            name: name.to_string(),
            tiers: vec![QualityTier {
                significance,
                work_factor: 1.0,
            }],
            deadline,
            retry,
        }
    }

    /// The significance of the class's *best* tier — what admission ordering
    /// and shed ordering key on.
    pub fn significance(&self) -> f64 {
        self.tiers.first().map_or(0.0, |tier| tier.significance)
    }

    /// Clamp a tier index into the ladder.
    pub fn clamp_tier(&self, tier: usize) -> usize {
        tier.min(self.tiers.len().saturating_sub(1))
    }

    /// Panic unless the ladder is well-formed (non-empty, significance
    /// non-increasing, work factors in `(0, 1]` after tier 0).
    pub fn validate(&self) {
        assert!(!self.tiers.is_empty(), "class {} has no tiers", self.name);
        for pair in self.tiers.windows(2) {
            assert!(
                pair[1].significance <= pair[0].significance,
                "class {}: tier significance must be non-increasing",
                self.name
            );
        }
        for tier in &self.tiers {
            assert!(
                tier.work_factor > 0.0 && tier.work_factor <= 1.0,
                "class {}: work factors must be in (0, 1]",
                self.name
            );
        }
    }
}

/// Why a request counted as an SLO violation. Violations are *accounted
/// losses*: the request is reported, never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// The final attempt completed after the deadline.
    Late,
    /// A transient failure exhausted the retry budget.
    RetriesExhausted,
    /// A retry was still allowed, but the remaining deadline budget could
    /// not fit backoff plus expected service.
    BudgetExhausted,
    /// The request was cancelled by the caller mid-flight.
    Cancelled,
}

/// Terminal accounting state of one request: exactly one of these per
/// offered request (the serving-level accounting identity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestOutcome {
    /// Completed within its deadline at `tier`, after `retries` retries.
    Completed {
        /// Tier the successful attempt ran at.
        tier: usize,
        /// Arrival-to-completion latency in nanoseconds.
        latency_nanos: u64,
        /// Number of retries the request consumed.
        retries: u32,
    },
    /// Counted against the SLO for the given reason.
    Violated(ViolationKind),
    /// Shed by admission control (or runtime brownout) — deliberate load
    /// shedding, reported as such.
    Shed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_jitters_within_bounds() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            jitter: 0.5,
        };
        let mut rng = SplitMix64::new(11);
        for attempt in 1..=3u32 {
            let nominal = 1_000_000u64 << (attempt - 1);
            for _ in 0..100 {
                let backoff = policy.backoff_nanos(attempt, &mut rng);
                assert!(
                    backoff >= nominal / 2 && backoff <= nominal * 3 / 2,
                    "attempt {attempt}: {backoff} outside [{}, {}]",
                    nominal / 2,
                    nominal * 3 / 2
                );
            }
        }
        assert_eq!(policy.backoff_nanos(0, &mut rng), 0);
        assert_eq!(RetryPolicy::none().backoff_nanos(1, &mut rng), 0);
    }

    #[test]
    fn class_helpers() {
        let class = RequestClass {
            name: "search".into(),
            tiers: vec![
                QualityTier {
                    significance: 0.9,
                    work_factor: 1.0,
                },
                QualityTier {
                    significance: 0.5,
                    work_factor: 0.4,
                },
            ],
            deadline: Duration::from_millis(10),
            retry: RetryPolicy::none(),
        };
        class.validate();
        assert_eq!(class.significance(), 0.9);
        assert_eq!(class.clamp_tier(7), 1);
        let exact = RequestClass::exact("x", 1.0, Duration::from_secs(1), RetryPolicy::none());
        exact.validate();
        assert_eq!(exact.tiers.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn validate_rejects_increasing_significance() {
        RequestClass {
            name: "bad".into(),
            tiers: vec![
                QualityTier {
                    significance: 0.2,
                    work_factor: 1.0,
                },
                QualityTier {
                    significance: 0.8,
                    work_factor: 0.5,
                },
            ],
            deadline: Duration::from_millis(1),
            retry: RetryPolicy::none(),
        }
        .validate();
    }
}

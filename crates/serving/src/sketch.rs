//! A fixed-bucket logarithmic latency histogram.
//!
//! Serving needs tail percentiles (p50/p99) over millions of samples without
//! keeping the samples. The sketch uses HDR-style log bucketing: 32 linear
//! sub-buckets per power of two, giving a guaranteed relative error ≤ 1/32
//! (~3.1%) over the full `u64` nanosecond range at a fixed 15 KiB footprint.
//! Sketches are **mergeable** (bucket-wise addition), so per-worker or
//! per-phase sketches fold into one without precision loss beyond the bucket
//! width.

/// Sub-buckets per octave as a power of two: 2^5 = 32.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Bucket count covering all of `u64`: one 32-wide linear region plus 59
/// octaves of 32 sub-buckets.
const BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_COUNT as usize) + SUB_COUNT as usize;

fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (value >> shift) - SUB_COUNT;
    (((shift + 1) as u64 * SUB_COUNT) + sub) as usize
}

/// Inclusive upper bound of a bucket: the conservative (never
/// under-reporting) representative value for percentile queries.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index;
    }
    let octave = index >> SUB_BITS; // ≥ 1
    let sub = index & (SUB_COUNT - 1);
    let low = (SUB_COUNT + sub) << (octave - 1);
    // The topmost bucket's upper bound is u64::MAX: saturate instead of
    // wrapping past it.
    low.saturating_add((1u64 << (octave - 1)) - 1)
}

/// Mergeable log-bucket latency histogram (values in nanoseconds).
#[derive(Clone)]
pub struct LatencySketch {
    counts: Box<[u64]>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        LatencySketch::new()
    }
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> Self {
        LatencySketch {
            counts: vec![0; BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum += nanos as u128;
        self.max = self.max.max(nanos);
    }

    /// Fold `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &LatencySketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples, in nanoseconds.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded sample, in nanoseconds.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in nanoseconds, reported as the
    /// upper bound of the bucket holding the target rank — conservative, so
    /// an SLO check against the sketch never passes a latency the exact
    /// distribution would fail. Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Debug for LatencySketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencySketch")
            .field("count", &self.count)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut previous = None;
        for value in [0u64, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, u64::MAX] {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "index {index} for {value}");
            assert!(bucket_upper(index) >= value, "upper bound covers {value}");
            if let Some((prev_value, prev_index)) = previous {
                assert!(prev_value < value);
                assert!(prev_index <= index, "monotone bucketing");
            }
            previous = Some((value, index));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for value in (1u64..100_000).step_by(97) {
            let upper = bucket_upper(bucket_index(value));
            let error = (upper - value) as f64 / value as f64;
            assert!(error <= 1.0 / 32.0 + 1e-9, "error {error} at {value}");
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut sketch = LatencySketch::new();
        for value in 1..=10_000u64 {
            sketch.record(value * 1_000); // 1 µs .. 10 ms, uniform
        }
        assert_eq!(sketch.count(), 10_000);
        let p50 = sketch.quantile(0.5) as f64;
        let p99 = sketch.quantile(0.99) as f64;
        assert!((p50 - 5_000_000.0).abs() / 5_000_000.0 < 0.05, "p50 {p50}");
        assert!((p99 - 9_900_000.0).abs() / 9_900_000.0 < 0.05, "p99 {p99}");
        assert_eq!(sketch.max(), 10_000_000);
        assert!((sketch.mean() - 5_000_500.0 * 1_000.0 / 1_000.0).abs() < 1_000.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut left = LatencySketch::new();
        let mut right = LatencySketch::new();
        let mut combined = LatencySketch::new();
        for i in 0..1000u64 {
            let value = i * i;
            if i % 2 == 0 {
                left.record(value);
            } else {
                right.record(value);
            }
            combined.record(value);
        }
        left.merge(&right);
        assert_eq!(left.count(), combined.count());
        assert_eq!(left.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(left.quantile(q), combined.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let mut sketch = LatencySketch::new();
        assert_eq!(sketch.quantile(0.99), 0);
        assert_eq!(sketch.mean(), 0.0);
        sketch.record(777);
        assert_eq!(sketch.quantile(0.0), sketch.quantile(1.0));
        assert_eq!(sketch.quantile(0.5).min(777 + 24), sketch.quantile(0.5));
        assert_eq!(sketch.max(), 777);
    }
}

//! Serving-level accounting: the per-run scoreboard both the live server and
//! the virtual-time simulator fill in.
//!
//! The central invariant is the **request accounting identity**:
//! `offered == completed + violated + shed`. Nothing is ever silently lost —
//! a request that exhausts its retries, misses its deadline, or is rejected
//! by admission control is *counted*, in exactly one bucket.

use crate::request::{RequestOutcome, ViolationKind};
use crate::sketch::LatencySketch;

/// Scoreboard for one serving run (or one phase of a run).
#[derive(Debug, Clone, Default)]
pub struct ServingStats {
    /// Requests offered by the open-loop generator.
    pub offered: u64,
    /// Requests completed within their deadline.
    pub completed: u64,
    /// Requests shed (by admission control or runtime brownout).
    pub shed: u64,
    /// Final attempts that completed after the deadline.
    pub late: u64,
    /// Requests whose transient failures exhausted the retry budget.
    pub retries_exhausted: u64,
    /// Requests whose remaining deadline could not fit another attempt.
    pub budget_exhausted: u64,
    /// Requests cancelled by the caller mid-flight.
    pub cancelled: u64,
    /// Total retry attempts consumed across all requests.
    pub retries: u64,
    /// Requests admitted below tier 0 (graceful degradation engagements).
    pub downgraded: u64,
    /// Completions by ladder tier (index 0 = full quality). Grows on demand.
    pub completed_by_tier: Vec<u64>,
    /// Offered requests by class index. Grows on demand.
    pub offered_by_class: Vec<u64>,
    /// Shed requests by class index — together with `offered_by_class` this
    /// makes significance-monotone shed order checkable: per-class shed
    /// *fractions* must not increase with class significance.
    pub shed_by_class: Vec<u64>,
    /// Arrival-to-completion latency of completed requests, nanoseconds.
    pub latency: LatencySketch,
}

fn bump(counts: &mut Vec<u64>, index: usize) {
    if counts.len() <= index {
        counts.resize(index + 1, 0);
    }
    counts[index] += 1;
}

impl ServingStats {
    /// Record one terminal request outcome (call exactly once per offered
    /// request).
    pub fn record(&mut self, outcome: &RequestOutcome) {
        match outcome {
            RequestOutcome::Completed {
                tier,
                latency_nanos,
                retries,
            } => {
                self.completed += 1;
                self.retries += u64::from(*retries);
                if self.completed_by_tier.len() <= *tier {
                    self.completed_by_tier.resize(*tier + 1, 0);
                }
                self.completed_by_tier[*tier] += 1;
                self.latency.record(*latency_nanos);
            }
            RequestOutcome::Violated(kind) => match kind {
                ViolationKind::Late => self.late += 1,
                ViolationKind::RetriesExhausted => self.retries_exhausted += 1,
                ViolationKind::BudgetExhausted => self.budget_exhausted += 1,
                ViolationKind::Cancelled => self.cancelled += 1,
            },
            RequestOutcome::Shed => self.shed += 1,
        }
    }

    /// Note one offered request of `class` (call alongside bumping
    /// `offered`).
    pub fn note_offered_class(&mut self, class: usize) {
        bump(&mut self.offered_by_class, class);
    }

    /// Note one shed request of `class` (call alongside recording
    /// [`RequestOutcome::Shed`]).
    pub fn note_shed_class(&mut self, class: usize) {
        bump(&mut self.shed_by_class, class);
    }

    /// Per-class shed fraction (`0.0` for classes never offered).
    pub fn shed_fraction(&self, class: usize) -> f64 {
        let offered = self.offered_by_class.get(class).copied().unwrap_or(0);
        if offered == 0 {
            return 0.0;
        }
        let shed = self.shed_by_class.get(class).copied().unwrap_or(0);
        shed as f64 / offered as f64
    }

    /// Total SLO violations (all [`ViolationKind`]s).
    pub fn violations(&self) -> u64 {
        self.late + self.retries_exhausted + self.budget_exhausted + self.cancelled
    }

    /// The request accounting identity: every offered request landed in
    /// exactly one terminal bucket.
    pub fn balanced(&self) -> bool {
        self.offered == self.completed + self.violations() + self.shed
    }

    /// Fraction of offered requests completed within deadline.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Fold `other` into `self` (e.g. per-phase scoreboards into a run
    /// total).
    pub fn merge(&mut self, other: &ServingStats) {
        self.offered += other.offered;
        self.completed += other.completed;
        self.shed += other.shed;
        self.late += other.late;
        self.retries_exhausted += other.retries_exhausted;
        self.budget_exhausted += other.budget_exhausted;
        self.cancelled += other.cancelled;
        self.retries += other.retries;
        self.downgraded += other.downgraded;
        if self.completed_by_tier.len() < other.completed_by_tier.len() {
            self.completed_by_tier
                .resize(other.completed_by_tier.len(), 0);
        }
        for (tier, count) in other.completed_by_tier.iter().enumerate() {
            self.completed_by_tier[tier] += count;
        }
        for counts in [
            (&mut self.offered_by_class, &other.offered_by_class),
            (&mut self.shed_by_class, &other.shed_by_class),
        ] {
            let (mine, theirs) = counts;
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), 0);
            }
            for (class, count) in theirs.iter().enumerate() {
                mine[class] += count;
            }
        }
        self.latency.merge(&other.latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_merge() {
        let mut a = ServingStats {
            offered: 4,
            ..Default::default()
        };
        a.record(&RequestOutcome::Completed {
            tier: 0,
            latency_nanos: 1_000,
            retries: 1,
        });
        a.record(&RequestOutcome::Completed {
            tier: 2,
            latency_nanos: 3_000,
            retries: 0,
        });
        a.record(&RequestOutcome::Violated(ViolationKind::Late));
        a.record(&RequestOutcome::Shed);
        for class in [0, 0, 1, 2] {
            a.note_offered_class(class);
        }
        a.note_shed_class(2);
        assert!(a.balanced());
        assert_eq!(a.violations(), 1);
        assert_eq!(a.completed_by_tier, vec![1, 0, 1]);
        assert_eq!(a.retries, 1);
        assert!((a.goodput() - 0.5).abs() < 1e-12);

        let mut b = ServingStats {
            offered: 1,
            ..Default::default()
        };
        b.record(&RequestOutcome::Violated(ViolationKind::RetriesExhausted));
        b.note_offered_class(2);
        assert!(b.balanced());
        a.merge(&b);
        assert_eq!(a.offered, 5);
        assert!(a.balanced());
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.offered_by_class, vec![2, 1, 2]);
        assert_eq!(a.shed_by_class, vec![0, 0, 1]);
        assert!((a.shed_fraction(2) - 0.5).abs() < 1e-12);
        assert_eq!(a.shed_fraction(0), 0.0);
        assert_eq!(a.shed_fraction(9), 0.0);
    }
}

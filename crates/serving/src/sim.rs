//! Deterministic virtual-time serving simulator.
//!
//! The live [`Server`](crate::server::Server) measures real wall-clock
//! latency, which no CI gate can pin down. The simulator replays the *same*
//! serving semantics — open-loop arrivals, admission control with
//! downgrade-before-shed, retry budgets, per-attempt faults — as a
//! discrete-event model over **virtual nanoseconds**: `W` simulated workers,
//! a FIFO ready queue, deterministic service times (`base_service ×
//! work_factor`, dilated by the governor's frequency decision), and seeded
//! fault/backoff draws. Same seed, same config ⇒ bit-identical scoreboard,
//! tail percentiles, and joules, on any machine.
//!
//! Energy flows through the real [`ExecutionEnv`] — the governor under test
//! makes its actual dispatch decisions and the affine power model prices
//! them — so the simulator compares energy strategies with the same
//! accounting the runtime uses, just driven by synthetic durations (the same
//! trick as the governor conformance kit).
//!
//! Successive [`Simulator::run`] calls share controller, governor, and
//! energy state: a pre-storm / storm / post-storm sequence is three calls on
//! one simulator, each returning its own [`PhaseReport`].

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;

use sig_core::{
    BudgetConfig, BudgetController, BudgetSetpoint, BudgetTarget, DispatchContext, ExecutionEnv,
    ExecutionMode, Policy,
};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
use crate::report::ServingStats;
use crate::request::{RequestClass, RequestOutcome, ViolationKind};
use crate::rng::SplitMix64;

/// Tuning for a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated worker count (must match the [`ExecutionEnv`] shard count).
    pub workers: usize,
    /// Tier-0 service time of an attempt, virtual nanoseconds.
    pub base_service_nanos: u64,
    /// Per-attempt transient-fault probability, per mille (the simulated
    /// fault plan: a faulted attempt consumes half its service time, then
    /// panics).
    pub panic_per_mille: u16,
    /// Seed for fault and backoff-jitter draws.
    pub seed: u64,
    /// Admission-control tuning.
    pub admission: AdmissionConfig,
    /// Online energy budget (default: none). The controller samples the
    /// environment's cumulative reading on a virtual-time cadence; its
    /// austerity composes with admission pressure
    /// ([`AdmissionController::set_budget_pressure`]) and its frequency cap
    /// throttles approximate attempts via the environment's dispatch-cap
    /// hook. Purely virtual-time driven, so replays stay bit-deterministic.
    pub budget: Option<BudgetConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            workers: 4,
            base_service_nanos: 1_000_000, // 1 ms
            panic_per_mille: 0,
            seed: 42,
            admission: AdmissionConfig::default(),
            budget: None,
        }
    }
}

/// The scoreboard and energy bill of one [`Simulator::run`] phase.
#[derive(Debug)]
pub struct PhaseReport {
    /// Request accounting for the phase (its identity must hold).
    pub stats: ServingStats,
    /// Modelled joules consumed during the phase (static + dynamic, priced
    /// by the environment's power model over the phase's virtual span).
    pub joules: f64,
    /// Virtual span of the phase, nanoseconds.
    pub wall_nanos: u64,
}

impl PhaseReport {
    /// Modelled joules per completed request (`inf` if energy was spent and
    /// nothing completed).
    pub fn joules_per_completed(&self) -> f64 {
        if self.stats.completed == 0 {
            if self.joules == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.joules / self.stats.completed as f64
        }
    }
}

enum EventKind {
    Arrival {
        class: usize,
    },
    Finish {
        worker: usize,
        request: usize,
        busy_nanos: u64,
        panicked: bool,
    },
    Retry {
        request: usize,
    },
}

struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    // Ties break by push order (seq), keeping replay deterministic.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct SimRequest {
    class: usize,
    arrival: u64,
    deadline: u64,
    tier: usize,
    downgraded: bool,
    attempts: u32,
}

/// Discrete-event serving model (see module docs).
pub struct Simulator {
    config: SimConfig,
    classes: Vec<RequestClass>,
    env: ExecutionEnv,
    admission: AdmissionController,
    rng: SplitMix64,
    /// Virtual now, carried across phases.
    now: u64,
    /// Joules watermark at the end of the previous phase.
    consumed_joules: f64,
    /// Energy-budget loop, if configured: controller plus its virtual-time
    /// sampling cadence (carried across phases, like the controller state).
    budget: Option<BudgetController>,
    budget_interval_nanos: u64,
    next_budget_nanos: u64,
}

impl Simulator {
    /// A simulator over `classes`, pricing energy through `env` (which must
    /// have been built with `config.workers` shards and the governor under
    /// test).
    pub fn new(config: SimConfig, classes: Vec<RequestClass>, env: ExecutionEnv) -> Self {
        assert!(config.workers > 0);
        assert!(config.base_service_nanos > 0);
        for class in &classes {
            class.validate();
        }
        let budget = config.budget.map(BudgetController::new);
        // Budget sampling cadence in virtual time: ~1/200th of a joule
        // budget's horizon, 1 ms for open-ended watt envelopes.
        let budget_interval_nanos = match config.budget.map(|b| b.target) {
            Some(BudgetTarget::TotalJoules {
                horizon_seconds, ..
            }) => ((horizon_seconds / 200.0).clamp(10e-6, 50e-3) * 1e9) as u64,
            Some(BudgetTarget::WattEnvelope { .. }) => 1_000_000,
            None => u64::MAX,
        };
        Simulator {
            admission: AdmissionController::new(config.admission),
            rng: SplitMix64::new(config.seed ^ 0x51e7_ab1e_0dd5_ca1e),
            config,
            classes,
            env,
            now: 0,
            consumed_joules: 0.0,
            budget,
            budget_interval_nanos,
            next_budget_nanos: 0,
        }
    }

    /// Sample the budget controller if its virtual-time cadence is due, and
    /// push the setpoint into both actuators (admission pressure and the
    /// environment's approximate-dispatch frequency cap).
    fn budget_tick(&mut self, at: u64) {
        let Some(controller) = self.budget.as_mut() else {
            return;
        };
        if at < self.next_budget_nanos {
            return;
        }
        self.next_budget_nanos = at.saturating_add(self.budget_interval_nanos);
        let wall = at as f64 * 1e-9;
        let reading = self.env.report(wall, self.config.workers).reading();
        let setpoint = controller.observe(wall, &reading);
        self.admission.set_budget_pressure(setpoint.austerity);
        self.env
            .set_dispatch_cap(setpoint.frequency_cap.clamp(0.05, 1.0));
    }

    /// Service time of one attempt of `class` at `tier`, virtual nanos
    /// (before frequency dilation).
    fn service_nanos(&self, class: usize, tier: usize) -> u64 {
        let quality = self.classes[class].tiers[self.classes[class].clamp_tier(tier)];
        ((self.config.base_service_nanos as f64 * quality.work_factor) as u64).max(1)
    }

    /// Run one phase: `schedule` pairs `(arrival offset from phase start,
    /// class index)`, ascending. Returns when every offered request of the
    /// phase is terminal. Controller, governor, and energy state carry over
    /// to the next phase.
    pub fn run(&mut self, schedule: &[(u64, usize)]) -> PhaseReport {
        let phase_start = self.now;
        let mut stats = ServingStats::default();
        let mut requests: Vec<SimRequest> = Vec::with_capacity(schedule.len());
        let mut heap: BinaryHeap<Event> = BinaryHeap::with_capacity(schedule.len() * 2);
        let mut ready: VecDeque<usize> = VecDeque::new();
        let mut free_workers: Vec<usize> = (0..self.config.workers).rev().collect();
        let mut in_flight = 0usize;
        let mut seq = 0u64;

        for &(offset, class) in schedule {
            heap.push(Event {
                at: phase_start.saturating_add(offset),
                seq,
                kind: EventKind::Arrival { class },
            });
            seq += 1;
        }

        while let Some(event) = heap.pop() {
            self.now = self.now.max(event.at);
            let at = event.at;
            self.budget_tick(at);
            match event.kind {
                EventKind::Arrival { class } => {
                    stats.offered += 1;
                    stats.note_offered_class(class);
                    let spec = &self.classes[class];
                    match self.admission.decide(spec, in_flight) {
                        AdmissionDecision::Shed => {
                            stats.record(&RequestOutcome::Shed);
                            stats.note_shed_class(class);
                        }
                        AdmissionDecision::Admit { tier } => {
                            let tier = spec.clamp_tier(tier);
                            requests.push(SimRequest {
                                class,
                                arrival: at,
                                deadline: at.saturating_add(spec.deadline.as_nanos() as u64),
                                tier,
                                downgraded: tier > 0,
                                attempts: 0,
                            });
                            in_flight += 1;
                            ready.push_back(requests.len() - 1);
                        }
                    }
                }
                EventKind::Finish {
                    worker,
                    request,
                    busy_nanos,
                    panicked,
                } => {
                    free_workers.push(worker);
                    let terminal = if panicked {
                        self.resolve_transient(
                            request,
                            at,
                            &mut requests,
                            &mut heap,
                            &mut seq,
                            &mut ready,
                            in_flight,
                            &mut stats,
                        )
                    } else {
                        let req = &requests[request];
                        let latency = at.saturating_sub(req.arrival);
                        let missed = at > req.deadline;
                        self.admission.observe(busy_nanos, missed);
                        if missed {
                            stats.record(&RequestOutcome::Violated(ViolationKind::Late));
                        } else {
                            stats.record(&RequestOutcome::Completed {
                                tier: req.tier,
                                latency_nanos: latency,
                                retries: req.attempts.saturating_sub(1),
                            });
                        }
                        true
                    };
                    if terminal {
                        if requests[request].downgraded {
                            stats.downgraded += 1;
                        }
                        in_flight -= 1;
                    }
                }
                EventKind::Retry { request } => {
                    // Retries re-enter admission: under pressure they come
                    // back at a lower tier, or are shed outright.
                    let class = requests[request].class;
                    let spec = &self.classes[class];
                    match self.admission.decide(spec, in_flight) {
                        AdmissionDecision::Shed => {
                            stats.record(&RequestOutcome::Shed);
                            stats.note_shed_class(class);
                            if requests[request].downgraded {
                                stats.downgraded += 1;
                            }
                            in_flight -= 1;
                        }
                        AdmissionDecision::Admit { tier } => {
                            let req = &mut requests[request];
                            let tier = spec.clamp_tier(tier.max(req.tier));
                            req.downgraded |= tier > 0;
                            req.tier = tier;
                            ready.push_back(request);
                        }
                    }
                }
            }
            self.dispatch(
                at,
                &mut requests,
                &mut heap,
                &mut seq,
                &mut ready,
                &mut free_workers,
            );
        }

        let wall_nanos = self.now - phase_start;
        let total_joules = self
            .env
            .report(self.now as f64 * 1e-9, self.config.workers)
            .reading()
            .joules;
        let joules = total_joules - self.consumed_joules;
        self.consumed_joules = total_joules;
        PhaseReport {
            stats,
            joules,
            wall_nanos,
        }
    }

    /// Start attempts on every free worker while the ready queue is
    /// non-empty.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        at: u64,
        requests: &mut [SimRequest],
        heap: &mut BinaryHeap<Event>,
        seq: &mut u64,
        ready: &mut VecDeque<usize>,
        free_workers: &mut Vec<usize>,
    ) {
        while !free_workers.is_empty() {
            let Some(request) = ready.pop_front() else {
                return;
            };
            let worker = free_workers.pop().unwrap();
            let req = &mut requests[request];
            req.attempts += 1;
            let spec = &self.classes[req.class];
            let quality = spec.tiers[spec.clamp_tier(req.tier)];
            let service =
                ((self.config.base_service_nanos as f64 * quality.work_factor) as u64).max(1);
            // Full-quality (tier 0) attempts are the "accurate body"; lower
            // tiers are the approximate variant the governor may scale.
            let ctx = DispatchContext {
                worker,
                significance: quality.significance.into(),
                accurate: req.tier == 0,
                policy: Policy::SignificanceAgnostic,
                group_ratio: 1.0,
                deadline_pressure: at.saturating_add(service) > req.deadline,
            };
            let decision = self.env.dispatch(worker, &ctx);
            let panicked = self.config.panic_per_mille > 0
                && self.rng.next_u64() % 1000 < u64::from(self.config.panic_per_mille);
            // A faulted attempt burns half its service time before dying.
            let busy = if panicked {
                (service / 2).max(1)
            } else {
                service
            };
            let wall = (busy as f64 * decision.scale().time_dilation()) as u64;
            let mode = if req.tier == 0 {
                ExecutionMode::Accurate
            } else {
                ExecutionMode::Approximate
            };
            self.env
                .record(worker, mode, Duration::from_nanos(busy), decision);
            heap.push(Event {
                at: at.saturating_add(wall.max(1)),
                seq: *seq,
                kind: EventKind::Finish {
                    worker,
                    request,
                    busy_nanos: busy,
                    panicked,
                },
            });
            *seq += 1;
        }
    }

    /// A transient (panicked) attempt: back off and retry within the
    /// deadline budget, or finalise as an accounted violation. Returns
    /// `true` when the request is terminal.
    #[allow(clippy::too_many_arguments)]
    fn resolve_transient(
        &mut self,
        request: usize,
        at: u64,
        requests: &mut [SimRequest],
        heap: &mut BinaryHeap<Event>,
        seq: &mut u64,
        _ready: &mut VecDeque<usize>,
        _in_flight: usize,
        stats: &mut ServingStats,
    ) -> bool {
        let req = &requests[request];
        let spec = &self.classes[req.class];
        if req.attempts > spec.retry.max_retries {
            self.admission
                .observe(self.service_nanos(req.class, req.tier), true);
            stats.record(&RequestOutcome::Violated(ViolationKind::RetriesExhausted));
            return true;
        }
        let backoff = spec.retry.backoff_nanos(req.attempts, &mut self.rng);
        let expected = self
            .admission
            .expected_service_nanos()
            .max(self.service_nanos(req.class, req.tier));
        let resume = at.saturating_add(backoff);
        if resume.saturating_add(expected) > req.deadline {
            self.admission.observe(expected, true);
            stats.record(&RequestOutcome::Violated(ViolationKind::BudgetExhausted));
            return true;
        }
        heap.push(Event {
            at: resume,
            seq: *seq,
            kind: EventKind::Retry { request },
        });
        *seq += 1;
        false
    }

    /// The admission controller's live state.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Virtual now, nanoseconds since simulator construction.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Latest setpoint of the energy-budget controller, if one is
    /// configured.
    pub fn budget_setpoint(&self) -> Option<BudgetSetpoint> {
        self.budget.as_ref().map(|c| c.setpoint())
    }

    /// Cumulative joules the budget controller has observed (its own
    /// accounting of spend against the budget), if one is configured.
    pub fn budget_spent_joules(&self) -> Option<f64> {
        self.budget.as_ref().map(|c| c.spent_joules())
    }

    /// The budget controller's last observation `(elapsed_seconds,
    /// busy_core_seconds, joules)` — the anchor for cross-tier accounting
    /// checks against the environment's cumulative reading.
    pub fn budget_observation(&self) -> Option<(f64, f64, f64)> {
        self.budget.as_ref().and_then(|c| c.last_observation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalPattern;
    use crate::request::{QualityTier, RetryPolicy};
    use sig_core::{ExecutionEnv, NominalGovernor, PowerModel, TransitionCost};
    use std::sync::Arc;

    fn env(workers: usize) -> ExecutionEnv {
        ExecutionEnv::new(
            PowerModel::for_host(),
            Arc::new(NominalGovernor),
            None,
            TransitionCost::free(),
            workers,
        )
    }

    fn ladder_class(significance: f64) -> RequestClass {
        RequestClass {
            name: "ladder".into(),
            tiers: vec![
                QualityTier {
                    significance,
                    work_factor: 1.0,
                },
                QualityTier {
                    significance: significance * 0.6,
                    work_factor: 0.5,
                },
                QualityTier {
                    significance: significance * 0.3,
                    work_factor: 0.25,
                },
            ],
            deadline: Duration::from_millis(20),
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(200),
                jitter: 0.3,
            },
        }
    }

    fn schedule(rate: f64, count: usize, seed: u64) -> Vec<(u64, usize)> {
        ArrivalPattern::Poisson { rate_per_sec: rate }
            .schedule(seed, count)
            .into_iter()
            .map(|at| (at, 0))
            .collect()
    }

    #[test]
    fn underload_completes_everything_at_full_quality() {
        // 4 workers × 1 ms service = 4000 rps capacity; offer 1000 rps.
        let mut sim = Simulator::new(SimConfig::default(), vec![ladder_class(0.8)], env(4));
        let report = sim.run(&schedule(1000.0, 2000, 7));
        assert!(report.stats.balanced(), "{:?}", report.stats);
        assert_eq!(report.stats.completed, 2000);
        assert_eq!(report.stats.shed, 0);
        assert_eq!(report.stats.completed_by_tier[0], 2000);
        assert!(report.joules > 0.0);
    }

    #[test]
    fn overload_downgrades_then_sheds_and_books_balance() {
        let mut sim = Simulator::new(
            SimConfig {
                panic_per_mille: 150,
                ..Default::default()
            },
            vec![ladder_class(0.8)],
            env(4),
        );
        // 6× tier-0 capacity with 15% attempt faults — beyond what the
        // ladder (4× at its lowest rung) can absorb, so shedding must
        // engage after degradation does.
        let report = sim.run(&schedule(24_000.0, 8000, 9));
        let stats = &report.stats;
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(stats.offered, 8000);
        assert!(stats.downgraded > 0, "pressure must downgrade: {stats:?}");
        assert!(stats.shed > 0, "2× load must shed: {stats:?}");
        assert!(stats.completed > 0, "degradation keeps goodput: {stats:?}");
        assert!(
            stats.downgraded > stats.shed / 8,
            "downgrade engages, not just shedding: {stats:?}"
        );
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = || {
            let mut sim = Simulator::new(
                SimConfig {
                    panic_per_mille: 100,
                    ..Default::default()
                },
                vec![ladder_class(0.7)],
                env(4),
            );
            let report = sim.run(&schedule(6000.0, 4000, 3));
            (
                report.stats.completed,
                report.stats.shed,
                report.stats.violations(),
                report.stats.latency.quantile(0.99),
                report.joules.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn phases_share_state_and_report_separately() {
        let mut sim = Simulator::new(SimConfig::default(), vec![ladder_class(0.8)], env(4));
        let calm = sim.run(&schedule(1000.0, 1000, 1));
        let storm = sim.run(&schedule(30_000.0, 4000, 2));
        let after = sim.run(&schedule(1000.0, 1000, 4));
        for phase in [&calm, &storm, &after] {
            assert!(phase.stats.balanced());
        }
        assert!(storm.stats.shed > 0);
        assert!(
            after.stats.latency.quantile(0.99) < storm.stats.latency.quantile(0.99),
            "post-storm p99 recovers"
        );
        assert!(calm.joules > 0.0 && storm.joules > 0.0 && after.joules > 0.0);
    }
}

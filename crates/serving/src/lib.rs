//! # sig-serving
//!
//! Open-loop serving under overload for the significance-aware runtime.
//!
//! The PPoPP 2015 programming model prices computation by *significance*:
//! every task says how much its result matters, and the runtime trades
//! accuracy for time/energy accordingly. This crate carries that contract to
//! the serving boundary, where the load is **open-loop** — arrivals do not
//! wait for completions, so offered load can exceed capacity and something
//! must give. What gives, and in which order, is the point:
//!
//! 1. **Degrade first** — the [`AdmissionController`] re-admits requests at
//!    lower rungs of their own quality ladder (lower significance, less
//!    work) as pressure builds;
//! 2. **Shed last, lowest-significance first** — outright rejection starts
//!    only above the shed threshold, along a single rising significance
//!    cutoff, and never touches critical requests;
//! 3. **Never lose silently** — every offered request terminates in exactly
//!    one accounted bucket (`offered == completed + violated + shed`, the
//!    serving identity of [`ServingStats`]), with transient failures retried
//!    under jittered exponential backoff only while the deadline budget
//!    allows.
//!
//! Two drivers share those semantics: the live [`Server`] over a real
//! [`Runtime`](sig_core::Runtime) (per-request observation through
//! [`SpawnHandle`](sig_core::SpawnHandle)s, no barriers), and the
//! virtual-time [`Simulator`] whose seeded runs reproduce latency
//! percentiles and modelled joules bit-identically for CI gating.

#![warn(missing_docs)]

pub mod admission;
pub mod arrival;
pub mod report;
pub mod request;
pub mod rng;
pub mod server;
pub mod sim;
pub mod sketch;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
pub use arrival::{ArrivalPattern, TraceParseError};
pub use report::ServingStats;
pub use request::{QualityTier, RequestClass, RequestOutcome, RetryPolicy, ViolationKind};
pub use rng::SplitMix64;
pub use server::{RequestId, Server, ServerConfig};
pub use sim::{PhaseReport, SimConfig, Simulator};
pub use sketch::LatencySketch;

//! Table 2 bench: cost of the policy-accuracy bookkeeping, plus a one-shot
//! printout of the Table 2 metrics (inversions / ratio deviation) for the
//! bench-sized inputs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sig_bench::{bench_workers, sobel};
use sig_core::Policy;
use sig_harness::experiment::ExperimentDefaults;
use sig_harness::table2;
use sig_kernels::{Benchmark, Degree, ExecutionConfig};

fn table2_bench(c: &mut Criterion) {
    let workers = bench_workers();

    // Print the accuracy metrics once so `cargo bench` output contains the
    // Table 2 reproduction alongside the timing numbers.
    let defaults = ExperimentDefaults {
        workers,
        ..Default::default()
    };
    let rows = table2::run(Some("Sobel"), &defaults);
    eprintln!(
        "\nTable 2 (Sobel, Medium degree):\n{}",
        table2::render(&rows)
    );

    let benchmark = sobel();
    let mut group = c.benchmark_group("table2/sobel-medium");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, policy) in [
        ("GTB", Policy::Gtb { buffer_size: 32 }),
        ("GTB-MaxBuffer", Policy::GtbMaxBuffer),
        ("LQH", Policy::Lqh),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                benchmark.run(&ExecutionConfig::significance(
                    workers,
                    policy,
                    Degree::Medium,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table2_bench);
criterion_main!(benches);

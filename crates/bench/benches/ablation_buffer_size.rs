//! Ablation: GTB buffer-size sweep (design-choice check called out in
//! DESIGN.md).
//!
//! The paper compares only "a smaller value" against the Max-Buffer variant;
//! this bench sweeps the buffer size to show where the trade-off between
//! decision quality and task-issue latency lands.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sig_bench::{bench_workers, sobel};
use sig_core::Policy;
use sig_kernels::{Benchmark, Degree, ExecutionConfig};

fn buffer_size_sweep(c: &mut Criterion) {
    let workers = bench_workers();
    let benchmark = sobel();
    let mut group = c.benchmark_group("ablation/gtb-buffer-size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for buffer_size in [4usize, 16, 64, 256] {
        group.bench_function(format!("buffer-{buffer_size}"), |b| {
            b.iter(|| {
                benchmark.run(&ExecutionConfig::significance(
                    workers,
                    Policy::Gtb { buffer_size },
                    Degree::Medium,
                ))
            })
        });
    }
    group.bench_function("buffer-max", |b| {
        b.iter(|| {
            benchmark.run(&ExecutionConfig::significance(
                workers,
                Policy::GtbMaxBuffer,
                Degree::Medium,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, buffer_size_sweep);
criterion_main!(benches);

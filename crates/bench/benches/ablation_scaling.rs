//! Ablation: worker-count scaling of the significance runtime (Sobel and
//! K-means), checking that the policies do not impede parallel scalability.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sig_bench::{bench_workers, kmeans, sobel};
use sig_core::Policy;
use sig_kernels::{Benchmark, Degree, ExecutionConfig};

fn scaling(c: &mut Criterion) {
    let max_workers = bench_workers();
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= max_workers)
        .collect();

    let cases: Vec<(&str, Box<dyn Benchmark>)> =
        vec![("sobel", Box::new(sobel())), ("kmeans", Box::new(kmeans()))];
    for (name, benchmark) in &cases {
        let mut group = c.benchmark_group(format!("ablation/scaling/{name}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
        for &workers in &worker_counts {
            group.bench_function(format!("lqh-workers-{workers}"), |b| {
                b.iter(|| {
                    benchmark.run(&ExecutionConfig::significance(
                        workers,
                        Policy::Lqh,
                        Degree::Medium,
                    ))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, scaling);
criterion_main!(benches);

//! Figure 2 bench: execution time of every benchmark under the accurate
//! baseline, the three significance policies (Medium degree) and loop
//! perforation. Energy and quality for the same configurations come from
//! `sig-experiments fig2`, which reuses identical code paths; Criterion's
//! contribution is statistically robust timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sig_bench::{bench_suite, bench_workers};
use sig_core::Policy;
use sig_kernels::{Approach, Degree, ExecutionConfig};

fn fig2(c: &mut Criterion) {
    let workers = bench_workers();
    for benchmark in bench_suite() {
        let mut group = c.benchmark_group(format!("fig2/{}", benchmark.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));

        group.bench_function("accurate", |b| {
            b.iter(|| benchmark.run(&ExecutionConfig::accurate(workers)))
        });
        for (label, policy) in [
            ("GTB", Policy::Gtb { buffer_size: 32 }),
            ("GTB-MaxBuffer", Policy::GtbMaxBuffer),
            ("LQH", Policy::Lqh),
        ] {
            group.bench_function(format!("{label}/Medium"), |b| {
                b.iter(|| {
                    benchmark.run(&ExecutionConfig::significance(
                        workers,
                        policy,
                        Degree::Medium,
                    ))
                })
            });
        }
        if benchmark.info().perforation_supported {
            group.bench_function("perforation/Medium", |b| {
                b.iter(|| {
                    benchmark.run(&ExecutionConfig {
                        workers,
                        approach: Approach::Perforation {
                            degree: Degree::Medium,
                        },
                    })
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig2);
criterion_main!(benches);

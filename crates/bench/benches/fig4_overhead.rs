//! Figure 4 bench: runtime overhead of the significance-aware policies when
//! every task runs accurately (ratio 100%), relative to the
//! significance-agnostic runtime.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sig_bench::{bench_suite, bench_workers};
use sig_core::Policy;

fn fig4(c: &mut Criterion) {
    let workers = bench_workers();
    for benchmark in bench_suite() {
        let mut group = c.benchmark_group(format!("fig4/{}", benchmark.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
        for (label, policy) in [
            ("agnostic", Policy::SignificanceAgnostic),
            ("GTB", Policy::Gtb { buffer_size: 32 }),
            ("GTB-MaxBuffer", Policy::GtbMaxBuffer),
            ("LQH", Policy::Lqh),
        ] {
            group.bench_function(label, |b| {
                b.iter(|| benchmark.run_full_accuracy(workers, policy))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig4);
criterion_main!(benches);

//! Cluster benchmark: many runtimes, one energy budget.
//!
//! Runs the bit-deterministic cluster simulator over a matrix of fleet
//! sizes × global watt caps × dispatch policies, on the **identical seeded
//! arrival schedule** per cell pair, and reports goodput, tail latency,
//! joules per completed request, and the cap-violation integral.
//!
//! The headline comparison is dispatch policy under a *tight* cap: the
//! significance-aware router must beat round-robin on joules/completed at
//! equal-or-better goodput. Under a tight cap the controller carves the
//! fleet into full-power and frequency-capped nodes; the aware router sends
//! critical work to the fast half and degraded work to the cheap half,
//! while round-robin queues critical requests behind dilated background
//! work.
//!
//! Results are written as JSON (default `BENCH_cluster.json`).
//!
//! ```text
//! cluster-bench [--seed N] [--smoke] [--out PATH] [--check COMMITTED.json]
//!               [--trace FILE]
//! ```
//!
//! `--check` replays the deterministic matrix and fails (non-zero exit) on
//! any unbalanced book, any cap violation, any tight-cap cell where the
//! significance-aware policy does not beat round-robin, or a >20% goodput
//! regression vs the committed numbers.
//!
//! `--trace FILE` replays a recorded arrival trace (one nanosecond offset
//! per line, `#` comments) through the smallest fleet under the tight cap —
//! reported alongside the matrix, not gated.

use sig_cluster::{ClusterConfig, ClusterPhaseReport, ClusterSim, DispatchPolicy};
use sig_serving::{ArrivalPattern, QualityTier, RequestClass, RetryPolicy, SplitMix64};
use std::time::Duration;

/// Fleet sizes of the full matrix (smoke trims to the first two, scaled
/// down).
const FLEETS: [usize; 3] = [6, 24, 96];
const SMOKE_FLEETS: [usize; 2] = [4, 12];
/// Workers per node.
const WORKERS: usize = 2;
/// Tier-0 service time.
const SERVICE_NANOS: u64 = 1_000_000;
/// Offered load relative to the *uncapped* fleet's tier-0 capacity.
const LOAD_FACTOR: f64 = 1.1;
/// Transient-fault rate, per mille.
const PANIC_PER_MILLE: u16 = 30;
/// Full draw of one default node (2 W static + 2 × 6.6 W active).
const NODE_FULL_WATTS: f64 = 15.2;
/// Cap levels as fractions of the fleet's full draw: generous leaves every
/// worker powered; tight affords ~75% of the busy slots, forcing the
/// controller to carve the fleet into full and frequency-capped halves.
const CAP_LEVELS: [(&str, f64); 2] = [("generous", 1.3), ("tight", 0.8)];
const POLICIES: [DispatchPolicy; 2] = [
    DispatchPolicy::SignificanceAware,
    DispatchPolicy::RoundRobin,
];

struct Config {
    seed: u64,
    requests_per_node: usize,
    fleets: Vec<usize>,
    out: String,
    write_out: bool,
    check: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        seed: 0xc1a5,
        requests_per_node: 300,
        fleets: FLEETS.to_vec(),
        out: "BENCH_cluster.json".to_string(),
        write_out: true,
        check: None,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--check" => {
                config.check = Some(args.next().expect("--check needs a committed JSON path"));
            }
            "--trace" => config.trace = Some(args.next().expect("--trace needs a file path")),
            "--smoke" => {
                config.fleets = SMOKE_FLEETS.to_vec();
                config.requests_per_node = 100;
                config.write_out = false;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: cluster-bench [--seed N] [--smoke] [--out PATH] \
                     [--check COMMITTED.json] [--trace FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// The serving-bench class mix: critical 1.0 (single tier), standard 0.7
/// and background 0.3 with three-rung quality ladders.
fn classes() -> Vec<RequestClass> {
    let deadline = Duration::from_nanos(SERVICE_NANOS * 20);
    let retry = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_nanos(SERVICE_NANOS / 4),
        jitter: 0.3,
    };
    let ladder = |significance: f64| {
        vec![
            QualityTier {
                significance,
                work_factor: 1.0,
            },
            QualityTier {
                significance: significance * 0.6,
                work_factor: 0.5,
            },
            QualityTier {
                significance: significance * 0.3,
                work_factor: 0.25,
            },
        ]
    };
    vec![
        RequestClass::exact("critical", 1.0, deadline, retry),
        RequestClass {
            name: "standard".into(),
            tiers: ladder(0.7),
            deadline,
            retry,
        },
        RequestClass {
            name: "background".into(),
            tiers: ladder(0.3),
            deadline,
            retry,
        },
    ]
}

/// Deterministic class mix: ~20% critical, ~50% standard, ~30% background.
fn pick_class(rng: &mut SplitMix64) -> usize {
    match rng.next_u64() % 10 {
        0 | 1 => 0,
        2..=6 => 1,
        _ => 2,
    }
}

/// The seeded schedule of one fleet size: Poisson arrivals at `LOAD_FACTOR`
/// of the uncapped fleet capacity, with per-arrival class picks. Identical
/// across caps and policies for that fleet.
fn build_schedule(nodes: usize, requests: usize, seed: u64) -> Vec<(u64, usize)> {
    let capacity_rps = (nodes * WORKERS) as f64 * 1e9 / SERVICE_NANOS as f64;
    let offsets = ArrivalPattern::Poisson {
        rate_per_sec: capacity_rps * LOAD_FACTOR,
    }
    .schedule(seed, requests);
    attach_classes(offsets, seed)
}

fn attach_classes(offsets: Vec<u64>, seed: u64) -> Vec<(u64, usize)> {
    let mut rng = SplitMix64::new(seed ^ 0xc1a5_5e5e_ed00_0002);
    offsets
        .into_iter()
        .map(|at| (at, pick_class(&mut rng)))
        .collect()
}

fn cell_config(
    nodes: usize,
    cap_fraction: f64,
    policy: DispatchPolicy,
    seed: u64,
) -> ClusterConfig {
    let mut config = ClusterConfig {
        nodes,
        workers_per_node: WORKERS,
        base_service_nanos: SERVICE_NANOS,
        panic_per_mille: PANIC_PER_MILLE,
        seed,
        policy,
        ..ClusterConfig::default()
    };
    config.cap.cap_watts = nodes as f64 * NODE_FULL_WATTS * cap_fraction;
    config
}

struct Cell {
    nodes: usize,
    cap_name: &'static str,
    cap_watts: f64,
    policy: DispatchPolicy,
    report: ClusterPhaseReport,
}

fn run_matrix(config: &Config) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &nodes in &config.fleets {
        let schedule = build_schedule(
            nodes,
            nodes * config.requests_per_node,
            config.seed ^ (nodes as u64),
        );
        for &(cap_name, cap_fraction) in &CAP_LEVELS {
            for &policy in &POLICIES {
                let cluster = cell_config(nodes, cap_fraction, policy, config.seed);
                let cap_watts = cluster.cap.cap_watts;
                let mut sim = ClusterSim::new(cluster, classes());
                let report = sim.run(&schedule, &[]);
                cells.push(Cell {
                    nodes,
                    cap_name,
                    cap_watts,
                    policy,
                    report,
                });
            }
        }
    }
    cells
}

/// Invariant errors across the whole matrix (collected, not panicked, so
/// `--check` reports everything at once).
fn matrix_invariant_errors(cells: &[Cell]) -> Vec<String> {
    let mut errors = Vec::new();
    for cell in cells {
        let label = format!("n{} {} {}", cell.nodes, cell.cap_name, cell.policy.name());
        if !cell.report.balanced() {
            errors.push(format!("{label}: fleet accounting identity broken"));
        }
        if cell.report.violation_joules > 1e-9 {
            errors.push(format!(
                "{label}: cap violated by {} J",
                cell.report.violation_joules
            ));
        }
        if cell.report.max_shed_significance >= 1.0 {
            errors.push(format!("{label}: a significance-1.0 request was shed"));
        }
    }
    // The headline: under the tight cap, significance-aware routing beats
    // round-robin on joules/completed at equal-or-better goodput.
    for cell in cells {
        if cell.cap_name != "tight" || cell.policy != DispatchPolicy::SignificanceAware {
            continue;
        }
        let Some(rr) = cells.iter().find(|c| {
            c.nodes == cell.nodes && c.cap_name == "tight" && c.policy == DispatchPolicy::RoundRobin
        }) else {
            continue;
        };
        let (sig_jpc, rr_jpc) = (
            cell.report.joules_per_completed(),
            rr.report.joules_per_completed(),
        );
        if sig_jpc >= rr_jpc {
            errors.push(format!(
                "n{} tight: sig-aware joules/completed {sig_jpc:.6} not below round-robin \
                 {rr_jpc:.6}",
                cell.nodes
            ));
        }
        if cell.report.goodput() + 0.005 < rr.report.goodput() {
            errors.push(format!(
                "n{} tight: sig-aware goodput {:.4} below round-robin {:.4}",
                cell.nodes,
                cell.report.goodput(),
                rr.report.goodput()
            ));
        }
    }
    errors
}

/// Minimal extractor for `"key": number` (the vendored serde shim has no
/// deserializer).
fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// CI regression gate: deterministic replay of the matrix vs the committed
/// report. Fails on any invariant error or a >20% goodput regression in any
/// cell present in the committed JSON.
fn run_check(config: &Config, committed_path: &str) -> ! {
    let committed = std::fs::read_to_string(committed_path)
        .unwrap_or_else(|e| panic!("cannot read {committed_path}: {e}"));
    let cells = run_matrix(config);
    let mut errors = matrix_invariant_errors(&cells);
    for cell in &cells {
        let key = format!(
            "n{}_{}_{}_goodput",
            cell.nodes,
            cell.cap_name,
            cell.policy.name()
        );
        match extract_json_number(&committed, &key) {
            None => errors.push(format!("committed report lacks {key}")),
            Some(committed_goodput) => {
                let threshold = committed_goodput * 0.8;
                let goodput = cell.report.goodput();
                eprintln!(
                    "cluster-bench check [{key}]: goodput now {goodput:.4} vs committed \
                     {committed_goodput:.4} (threshold {threshold:.4})"
                );
                if goodput < threshold {
                    errors.push(format!(
                        "{key}: goodput regressed >20% ({goodput:.4} vs committed \
                         {committed_goodput:.4})"
                    ));
                }
            }
        }
    }
    if !errors.is_empty() {
        for error in &errors {
            eprintln!("FAIL: {error}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "OK: books balance, caps hold, sig-aware beats round-robin under every tight cap, \
         no cell regressed >20% goodput"
    );
    std::process::exit(0);
}

fn cell_json(cell: &Cell, indent: &str) -> String {
    let stats = &cell.report.stats;
    format!(
        "{indent}{{\n{indent}  \"nodes\": {},\n{indent}  \"cap\": \"{}\",\n{indent}  \
         \"cap_watts\": {:.3},\n{indent}  \"policy\": \"{}\",\n{indent}  \"offered\": {},\n\
         {indent}  \"completed\": {},\n{indent}  \"shed\": {},\n{indent}  \"violations\": {},\n\
         {indent}  \"lost_to_crash\": {},\n{indent}  \"downgraded\": {},\n{indent}  \
         \"retries\": {},\n{indent}  \"goodput\": {:.4},\n{indent}  \"p50_nanos\": {},\n\
         {indent}  \"p99_nanos\": {},\n{indent}  \"joules\": {:.6},\n{indent}  \
         \"joules_per_completed\": {:.9},\n{indent}  \"average_watts\": {:.3},\n{indent}  \
         \"violation_joules\": {:.9},\n{indent}  \"wall_nanos\": {}\n{indent}}}",
        cell.nodes,
        cell.cap_name,
        cell.cap_watts,
        cell.policy.name(),
        stats.offered,
        stats.completed,
        stats.shed,
        stats.violations(),
        cell.report.lost_to_crash,
        stats.downgraded,
        stats.retries,
        cell.report.goodput(),
        stats.latency.quantile(0.5),
        stats.latency.quantile(0.99),
        cell.report.joules,
        cell.report.joules_per_completed(),
        cell.report.average_watts(),
        cell.report.violation_joules,
        cell.report.wall_nanos,
    )
}

/// Replay a recorded arrival trace through the smallest fleet under the
/// tight cap (reported, not gated).
fn run_trace(config: &Config, path: &str) -> String {
    let pattern = ArrivalPattern::from_trace_file(path)
        .unwrap_or_else(|e| panic!("cannot load trace {path}: {e}"));
    let ArrivalPattern::Trace(offsets) = pattern else {
        unreachable!("from_trace_file always returns Trace");
    };
    let count = offsets.len();
    let schedule = attach_classes(offsets, config.seed);
    let nodes = config.fleets[0];
    let cluster = cell_config(nodes, 0.8, DispatchPolicy::SignificanceAware, config.seed);
    let mut sim = ClusterSim::new(cluster, classes());
    let report = sim.run(&schedule, &[]);
    assert!(report.balanced(), "trace replay books must balance");
    eprintln!(
        "  trace {path}: {count} arrivals on {nodes} nodes (tight cap): goodput {:.3} | \
         p99 {:.3} ms | {:.6} J/completed",
        report.goodput(),
        report.stats.latency.quantile(0.99) as f64 / 1e6,
        report.joules_per_completed(),
    );
    format!(
        "  \"trace\": {{\n    \"path\": \"{path}\",\n    \"arrivals\": {count},\n    \
         \"nodes\": {nodes},\n    \"goodput\": {:.4},\n    \"p99_nanos\": {},\n    \
         \"joules_per_completed\": {:.9},\n    \"violation_joules\": {:.9}\n  }}",
        report.goodput(),
        report.stats.latency.quantile(0.99),
        report.joules_per_completed(),
        report.violation_joules,
    )
}

fn main() {
    let config = parse_args();

    if let Some(committed) = config.check.clone() {
        run_check(&config, &committed);
    }

    eprintln!(
        "cluster-bench: fleets {:?} × caps {:?} × policies [sig_aware, round_robin], \
         {} req/node at {LOAD_FACTOR}x capacity, faults {PANIC_PER_MILLE}‰, seed {:#x}",
        config.fleets,
        CAP_LEVELS.map(|(name, f)| format!("{name}={f}x")),
        config.requests_per_node,
        config.seed,
    );

    let cells = run_matrix(&config);
    let errors = matrix_invariant_errors(&cells);
    for cell in &cells {
        eprintln!(
            "  n{:<3} {:>8} {:>11}: goodput {:.3} | p99 {:6.3} ms | {:.6} J/completed | \
             avg {:6.2} W (cap {:.1}) | shed {} | violation {:.3} J",
            cell.nodes,
            cell.cap_name,
            cell.policy.name(),
            cell.report.goodput(),
            cell.report.stats.latency.quantile(0.99) as f64 / 1e6,
            cell.report.joules_per_completed(),
            cell.report.average_watts(),
            cell.cap_watts,
            cell.report.stats.shed,
            cell.report.violation_joules,
        );
    }
    assert!(errors.is_empty(), "matrix invariants violated: {errors:#?}");

    let trace_json = match &config.trace {
        Some(path) => run_trace(&config, path),
        None => "  \"trace\": null".to_string(),
    };

    // Flat gate keys (goodput and joules/completed per cell) ride next to
    // the nested cell list so `--check`'s extractor finds them directly.
    let mut gate_keys = Vec::new();
    for cell in &cells {
        let prefix = format!("n{}_{}_{}", cell.nodes, cell.cap_name, cell.policy.name());
        gate_keys.push(format!(
            "    \"{prefix}_goodput\": {:.4},\n    \"{prefix}_joules_per_completed\": {:.9}",
            cell.report.goodput(),
            cell.report.joules_per_completed()
        ));
    }
    let cell_jsons: Vec<String> = cells.iter().map(|cell| cell_json(cell, "    ")).collect();

    let json = format!(
        "{{\n  \"benchmark\": \"cluster_bench\",\n  \"description\": \"cluster-scale \
         simulation: fleets of real-environment nodes under one global watt cap, comparing \
         significance-aware dispatch against round-robin on the identical seeded schedule. \
         The cap controller waterfills per-node busy slots (never exceeding the cap) and \
         frequency-caps the power-restricted nodes; the aware router sends critical work to \
         full-power nodes and degraded work to cheap ones\",\n  \"workers_per_node\": \
         {WORKERS},\n  \"base_service_nanos\": {SERVICE_NANOS},\n  \"load_factor\": \
         {LOAD_FACTOR},\n  \"panic_per_mille\": {PANIC_PER_MILLE},\n  \"seed\": {},\n  \
         \"requests_per_node\": {},\n  \"cells\": [\n{}\n  ],\n  \"gates\": {{\n{}\n  }},\n\
         {},\n  \"metadata\": {{\n    \"note\": \"every cell is a bit-deterministic \
         virtual-time run (seeded arrivals, faults, backoff; energy priced per node through \
         the runtime's ExecutionEnv plus an exact piecewise-constant fleet power integral). \
         violation_joules integrates modelled draw above the cap and must be 0; offered == \
         completed + violations + shed + lost_to_crash in every cell.\"\n  }}\n}}\n",
        config.seed,
        config.requests_per_node,
        cell_jsons.join(",\n"),
        gate_keys.join(",\n"),
        trace_json,
    );
    if config.write_out {
        std::fs::write(&config.out, &json).expect("failed to write results");
        eprintln!("  wrote {}", config.out);
    }
    println!("{json}");
}

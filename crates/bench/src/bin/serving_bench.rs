//! Open-loop serving benchmark: SLO-vs-joules under overload.
//!
//! Sweeps offered load from 0.5× to 2× of tier-0 capacity through the
//! deterministic virtual-time serving simulator, comparing three variants
//! over the **identical seeded arrival schedule**:
//!
//! * **exact-only** — single-tier request classes (full quality or nothing)
//!   under a [`NominalGovernor`]: the significance-blind baseline. Under
//!   overload its only tools are queueing and shedding.
//! * **ladder** — three-tier quality ladders per class with a
//!   [`SignificanceLadderGovernor`]: admission control degrades requests to
//!   cheaper, lower-significance tiers before shedding, and degraded tiers
//!   execute at scaled frequency.
//! * **adaptive** — the same ladders under an [`AdaptiveGovernor`]
//!   (per-rung stretch vs race-to-idle with hysteresis).
//!
//! Every load point reports p50/p99 latency, goodput by tier, shed / retry /
//! violation counts, modelled joules per completed request, and the **lost**
//! count — offered minus (completed + violated + shed) — which must be zero:
//! overload degrades answers, it never loses requests.
//!
//! A small live section runs the same serving stack over a real [`Runtime`]
//! (measured wall-clock latency; reported, not gated).
//!
//! Results are written as JSON (default `BENCH_serving.json`).
//!
//! ```text
//! serving-bench [--workers N] [--requests N] [--service NANOS] [--seed N]
//!               [--smoke] [--out PATH] [--check COMMITTED.json]
//! ```
//!
//! `--check` replays the deterministic sweep and fails (non-zero exit) if
//! any request is lost, if tier downgrade does not engage at or before the
//! load level where shedding starts, if the adaptive variant's p99 at 1.5×
//! exceeds the exact-only baseline's, or if any variant's p99 at 1.5× load
//! regressed more than 20% over the committed number.

use std::sync::Arc;
use std::time::Duration;

use sig_core::{
    AdaptiveGovernor, ExecutionEnv, FaultPlan, Governor, NominalGovernor, Runtime,
    SignificanceLadderGovernor,
};
use sig_energy::{FrequencyScale, PowerModel, SleepState, TransitionCost};
use sig_serving::{
    AdmissionConfig, ArrivalPattern, PhaseReport, QualityTier, RequestClass, RetryPolicy, Server,
    ServerConfig, SimConfig, Simulator, SplitMix64,
};

/// Load multipliers swept over tier-0 capacity.
const LOAD_POINTS: [f64; 6] = [0.5, 0.75, 1.0, 1.25, 1.5, 2.0];
/// Index of the 1.5× point in [`LOAD_POINTS`] (the gated one).
const GATE_POINT: usize = 4;
/// Per-attempt transient-fault probability, per mille (faults are armed for
/// the whole sweep).
const PANIC_PER_MILLE: u16 = 150;
/// DVFS ladder depth / floor shared by the ladder and adaptive variants.
const LADDER_STEPS: usize = 4;
const LADDER_FLOOR: f64 = 0.4;
/// Power-model exponent: dynamic-heavy package where frequency scaling pays.
const POWER_EXPONENT: f64 = 2.4;
/// Adaptive-governor hysteresis (dispatches before a domain re-targets).
const HYSTERESIS: u32 = 4;

struct Config {
    workers: usize,
    requests: usize,
    service_nanos: u64,
    seed: u64,
    out: String,
    write_out: bool,
    live: bool,
    check: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        workers: 4,
        requests: 20_000,
        service_nanos: 1_000_000, // 1 ms
        seed: 0x5e2e,
        out: "BENCH_serving.json".to_string(),
        write_out: true,
        live: true,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--workers" => config.workers = num("--workers") as usize,
            "--requests" => config.requests = num("--requests") as usize,
            "--service" => config.service_nanos = num("--service") as u64,
            "--seed" => config.seed = num("--seed") as u64,
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--check" => {
                config.check = Some(args.next().expect("--check needs a committed JSON path"));
            }
            "--smoke" => {
                config.requests = 2_000;
                config.write_out = false;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: serving-bench [--workers N] [--requests N] [--service NANOS] \
                     [--seed N] [--smoke] [--out PATH] [--check COMMITTED.json]"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// The request-class population: a critical class that never degrades and
/// never sheds, a standard class, and a background class. With `ladder`,
/// the sub-critical classes carry three-rung quality ladders; without it
/// every class is full-quality-or-nothing (the exact-only contract).
fn classes(ladder: bool, service_nanos: u64) -> Vec<RequestClass> {
    let deadline = Duration::from_nanos(service_nanos * 20);
    let retry = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_nanos(service_nanos / 4),
        jitter: 0.3,
    };
    let tiers = |significance: f64| -> Vec<QualityTier> {
        if ladder {
            vec![
                QualityTier {
                    significance,
                    work_factor: 1.0,
                },
                QualityTier {
                    significance: significance * 0.6,
                    work_factor: 0.5,
                },
                QualityTier {
                    significance: significance * 0.3,
                    work_factor: 0.25,
                },
            ]
        } else {
            vec![QualityTier {
                significance,
                work_factor: 1.0,
            }]
        }
    };
    vec![
        RequestClass {
            name: "critical".into(),
            tiers: vec![QualityTier {
                significance: 1.0,
                work_factor: 1.0,
            }],
            deadline,
            retry,
        },
        RequestClass {
            name: "standard".into(),
            tiers: tiers(0.7),
            deadline,
            retry,
        },
        RequestClass {
            name: "background".into(),
            tiers: tiers(0.3),
            deadline,
            retry,
        },
    ]
}

/// Deterministic class mix: ~20% critical, ~50% standard, ~30% background.
fn pick_class(rng: &mut SplitMix64) -> usize {
    match rng.next_u64() % 10 {
        0 | 1 => 0,
        2..=6 => 1,
        _ => 2,
    }
}

/// The seeded open-loop schedule of one load point: Poisson arrivals at
/// `rate` with per-arrival class picks. Identical across variants.
fn build_schedule(rate: f64, count: usize, seed: u64) -> Vec<(u64, usize)> {
    let offsets = ArrivalPattern::Poisson { rate_per_sec: rate }.schedule(seed, count);
    let mut rng = SplitMix64::new(seed ^ 0xc1a5_5e5e_ed00_0001);
    offsets
        .into_iter()
        .map(|at| (at, pick_class(&mut rng)))
        .collect()
}

/// The dynamic-heavy power model the sweep prices energy with.
fn power_model(workers: usize) -> PowerModel {
    PowerModel {
        sockets: 1,
        cores_per_socket: workers,
        static_watts_per_socket: 1.0 * workers as f64,
        active_watts_per_core: 6.6,
        idle_watts_per_core: 0.5,
    }
}

fn dvfs_ladder() -> Vec<FrequencyScale> {
    FrequencyScale::ladder(LADDER_STEPS, LADDER_FLOOR)
        .into_iter()
        .map(|s| FrequencyScale::with_exponent(s.ratio(), POWER_EXPONENT))
        .collect()
}

/// One serving variant: its class shape and governor.
struct Variant {
    name: &'static str,
    ladder: bool,
    governor: fn(&Config) -> Arc<dyn Governor>,
}

fn nominal_governor(_config: &Config) -> Arc<dyn Governor> {
    Arc::new(NominalGovernor)
}

fn ladder_governor(_config: &Config) -> Arc<dyn Governor> {
    Arc::new(SignificanceLadderGovernor::new(dvfs_ladder()))
}

fn adaptive_governor(config: &Config) -> Arc<dyn Governor> {
    Arc::new(AdaptiveGovernor::new(
        &power_model(config.workers),
        SleepState::shallow(),
        dvfs_ladder(),
        HYSTERESIS,
        config.service_nanos as f64 * 1e-9,
    ))
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "exact_only",
        ladder: false,
        governor: nominal_governor,
    },
    Variant {
        name: "ladder",
        ladder: true,
        governor: ladder_governor,
    },
    Variant {
        name: "adaptive",
        ladder: true,
        governor: adaptive_governor,
    },
];

/// One measured load point of one variant.
struct LoadResult {
    multiplier: f64,
    report: PhaseReport,
    lost: i64,
}

fn run_variant(config: &Config, variant: &Variant) -> Vec<LoadResult> {
    let capacity_rps = config.workers as f64 * 1e9 / config.service_nanos as f64;
    LOAD_POINTS
        .iter()
        .enumerate()
        .map(|(point, &multiplier)| {
            let env = ExecutionEnv::new(
                power_model(config.workers),
                (variant.governor)(config),
                Some(SleepState::shallow()),
                TransitionCost::typical(),
                config.workers,
            );
            let mut sim = Simulator::new(
                SimConfig {
                    workers: config.workers,
                    base_service_nanos: config.service_nanos,
                    panic_per_mille: PANIC_PER_MILLE,
                    seed: config.seed ^ ((point as u64) << 8),
                    admission: AdmissionConfig::default(),
                    budget: None,
                },
                classes(variant.ladder, config.service_nanos),
                env,
            );
            let schedule = build_schedule(
                capacity_rps * multiplier,
                config.requests,
                config.seed.wrapping_add(point as u64),
            );
            let report = sim.run(&schedule);
            let stats = &report.stats;
            let lost =
                stats.offered as i64 - (stats.completed + stats.violations() + stats.shed) as i64;
            LoadResult {
                multiplier,
                report,
                lost,
            }
        })
        .collect()
}

/// The lowest load multiplier at which `pick` first returns a non-zero
/// count, or `None` if it never does.
fn first_engagement(results: &[LoadResult], pick: fn(&LoadResult) -> u64) -> Option<f64> {
    results
        .iter()
        .find(|point| pick(point) > 0)
        .map(|point| point.multiplier)
}

/// Check the sweep-level invariants of one variant's results; returns error
/// strings instead of panicking so `--check` can report all failures.
fn sweep_invariant_errors(name: &str, results: &[LoadResult], ladder: bool) -> Vec<String> {
    let mut errors = Vec::new();
    for point in results {
        if point.lost != 0 {
            errors.push(format!(
                "{name} at {}x: {} requests lost (accounting identity broken)",
                point.multiplier, point.lost
            ));
        }
    }
    if ladder {
        let downgrade_at = first_engagement(results, |p| p.report.stats.downgraded);
        let shed_at = first_engagement(results, |p| p.report.stats.shed);
        match (downgrade_at, shed_at) {
            (None, Some(shed)) => errors.push(format!(
                "{name}: sheds at {shed}x without ever downgrading — degrade-first violated"
            )),
            (Some(down), Some(shed)) if down > shed => errors.push(format!(
                "{name}: first shed at {shed}x precedes first downgrade at {down}x"
            )),
            _ => {}
        }
        if results[GATE_POINT].report.stats.downgraded == 0 {
            errors.push(format!(
                "{name}: no tier downgrade at 1.5x load — graceful degradation not engaging"
            ));
        }
    }
    errors
}

/// Minimal extractor for `"key": number` (the vendored serde shim has no
/// deserializer).
fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// CI regression gate: deterministic replay of the sweep vs the committed
/// report. Exits non-zero on any lost request, degrade-first violation,
/// adaptive-worse-than-exact inversion at 1.5×, or >20% p99 regression at
/// 1.5× on any variant.
fn run_check(config: &Config, committed_path: &str) -> ! {
    let committed = std::fs::read_to_string(committed_path)
        .unwrap_or_else(|e| panic!("cannot read {committed_path}: {e}"));
    let mut errors: Vec<String> = Vec::new();
    let mut p99_at_gate = Vec::new();
    let mut jpc_at_gate = Vec::new();
    for variant in &VARIANTS {
        let results = run_variant(config, variant);
        errors.extend(sweep_invariant_errors(
            variant.name,
            &results,
            variant.ladder,
        ));
        let gate = &results[GATE_POINT];
        let p99 = gate.report.stats.latency.quantile(0.99);
        p99_at_gate.push(p99);
        jpc_at_gate.push(gate.report.joules_per_completed());
        let key = format!("{}_p99_nanos_at_1_5x", variant.name);
        match extract_json_number(&committed, &key) {
            None => errors.push(format!("committed report lacks {key}")),
            Some(committed_p99) => {
                let threshold = committed_p99 * 1.2;
                eprintln!(
                    "serving-bench check [{}]: p99@1.5x now {p99} ns vs committed \
                     {committed_p99:.0} ns (threshold {threshold:.0})",
                    variant.name
                );
                if (p99 as f64) > threshold {
                    errors.push(format!(
                        "{}: p99 at 1.5x load regressed >20% ({p99} ns vs committed \
                         {committed_p99:.0} ns)",
                        variant.name
                    ));
                }
            }
        }
    }
    // Cross-variant acceptance at the gated load point: graceful degradation
    // must beat the significance-blind baseline on latency AND energy.
    let (exact_p99, adaptive_p99) = (p99_at_gate[0], p99_at_gate[2]);
    if adaptive_p99 > exact_p99 {
        errors.push(format!(
            "adaptive p99 at 1.5x ({adaptive_p99} ns) exceeds exact-only ({exact_p99} ns)"
        ));
    }
    let (exact_jpc, adaptive_jpc) = (jpc_at_gate[0], jpc_at_gate[2]);
    if adaptive_jpc >= exact_jpc {
        errors.push(format!(
            "adaptive joules/completed at 1.5x ({adaptive_jpc:.6}) not below exact-only \
             ({exact_jpc:.6})"
        ));
    }
    if !errors.is_empty() {
        for error in &errors {
            eprintln!("FAIL: {error}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "OK: no lost requests, degrade-first holds, adaptive p99 {adaptive_p99} ns <= exact-only \
         {exact_p99} ns and joules/completed {adaptive_jpc:.6} < {exact_jpc:.6} at 1.5x load"
    );
    std::process::exit(0);
}

fn tier_array(counts: &[u64]) -> String {
    let items: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn load_json(point: &LoadResult, indent: &str) -> String {
    let stats = &point.report.stats;
    format!(
        "{indent}{{\n{indent}  \"multiplier\": {},\n{indent}  \"offered\": {},\n{indent}  \
         \"completed\": {},\n{indent}  \"shed\": {},\n{indent}  \"violations\": {},\n\
         {indent}  \"late\": {},\n{indent}  \"retries_exhausted\": {},\n{indent}  \
         \"budget_exhausted\": {},\n{indent}  \"retries\": {},\n{indent}  \"downgraded\": {},\n\
         {indent}  \"lost\": {},\n{indent}  \"goodput\": {:.4},\n{indent}  \
         \"completed_by_tier\": {},\n{indent}  \"p50_nanos\": {},\n{indent}  \"p99_nanos\": {},\n\
         {indent}  \"mean_nanos\": {:.0},\n{indent}  \"joules\": {:.6},\n{indent}  \
         \"joules_per_completed\": {:.9},\n{indent}  \"wall_nanos\": {}\n{indent}}}",
        point.multiplier,
        stats.offered,
        stats.completed,
        stats.shed,
        stats.violations(),
        stats.late,
        stats.retries_exhausted,
        stats.budget_exhausted,
        stats.retries,
        stats.downgraded,
        point.lost,
        stats.goodput(),
        tier_array(&stats.completed_by_tier),
        stats.latency.quantile(0.5),
        stats.latency.quantile(0.99),
        stats.latency.mean(),
        point.report.joules,
        point.report.joules_per_completed(),
        point.report.wall_nanos,
    )
}

/// Short live-runtime section: the same serving stack over real workers and
/// wall-clock time (reported for flavour; the deterministic sweep is what CI
/// gates).
fn run_live(config: &Config) -> String {
    let live_workers = config.workers.min(4);
    let base_work = Duration::from_micros(200);
    let capacity_rps = live_workers as f64 / base_work.as_secs_f64();
    let rt = Runtime::builder()
        .workers(live_workers)
        .energy_model(power_model(live_workers))
        .governor(SignificanceLadderGovernor::new(dvfs_ladder()))
        .fault_plan(FaultPlan::new(config.seed).panics(PANIC_PER_MILLE))
        .build();
    let mut server = Server::new(
        &rt,
        classes(true, base_work.as_nanos() as u64),
        ServerConfig {
            base_work,
            seed: config.seed,
            ..Default::default()
        },
    );
    let count = (config.requests / 20).clamp(200, 2_000);
    let schedule = build_schedule(capacity_rps * 1.5, count, config.seed ^ 0x11fe);
    let stats = server.run(&schedule).clone();
    let wall = rt.energy_report();
    let lost = stats.offered as i64 - (stats.completed + stats.violations() + stats.shed) as i64;
    eprintln!(
        "  live 1.5x ({} workers, {} req): completed {} | shed {} | violations {} | \
         downgraded {} | p99 {:.3} ms | lost {}",
        live_workers,
        stats.offered,
        stats.completed,
        stats.shed,
        stats.violations(),
        stats.downgraded,
        stats.latency.quantile(0.99) as f64 / 1e6,
        lost,
    );
    assert_eq!(lost, 0, "live serving lost requests");
    format!(
        "  \"live\": {{\n    \"workers\": {},\n    \"base_work_nanos\": {},\n    \
         \"load_multiplier\": 1.5,\n    \"offered\": {},\n    \"completed\": {},\n    \
         \"shed\": {},\n    \"violations\": {},\n    \"retries\": {},\n    \
         \"downgraded\": {},\n    \"lost\": {},\n    \"p50_nanos\": {},\n    \
         \"p99_nanos\": {},\n    \"runtime_joules\": {:.4}\n  }}",
        live_workers,
        base_work.as_nanos(),
        stats.offered,
        stats.completed,
        stats.shed,
        stats.violations(),
        stats.retries,
        stats.downgraded,
        lost,
        stats.latency.quantile(0.5),
        stats.latency.quantile(0.99),
        wall.reading().joules,
    )
}

fn main() {
    let config = parse_args();

    if let Some(committed) = config.check.clone() {
        run_check(&config, &committed);
    }

    let capacity_rps = config.workers as f64 * 1e9 / config.service_nanos as f64;
    eprintln!(
        "serving-bench: {} requests per load point, {} sim workers, {} ns tier-0 service \
         (capacity {:.0} rps), faults {}‰, seed {:#x}",
        config.requests,
        config.workers,
        config.service_nanos,
        capacity_rps,
        PANIC_PER_MILLE,
        config.seed,
    );

    let mut variant_jsons = Vec::new();
    let mut gate_p99 = Vec::new();
    let mut gate_jpc = Vec::new();
    for variant in &VARIANTS {
        let results = run_variant(&config, variant);
        let errors = sweep_invariant_errors(variant.name, &results, variant.ladder);
        assert!(errors.is_empty(), "sweep invariants violated: {errors:?}");
        let gate = &results[GATE_POINT];
        eprintln!(
            "  {:>10} @1.5x: goodput {:.3} | p99 {:.3} ms | shed {} | downgraded {} | \
             {:.6} J/completed",
            variant.name,
            gate.report.stats.goodput(),
            gate.report.stats.latency.quantile(0.99) as f64 / 1e6,
            gate.report.stats.shed,
            gate.report.stats.downgraded,
            gate.report.joules_per_completed(),
        );
        gate_p99.push(gate.report.stats.latency.quantile(0.99));
        gate_jpc.push(gate.report.joules_per_completed());
        let loads: Vec<String> = results
            .iter()
            .map(|point| load_json(point, "      "))
            .collect();
        variant_jsons.push(format!(
            "    \"{}\": {{\n      \"quality_ladder\": {},\n      \"loads\": [\n{}\n      ],\n\
             \"{}_p99_nanos_at_1_5x\": {},\n      \"{}_joules_per_completed_at_1_5x\": {:.9}\n    }}",
            variant.name,
            variant.ladder,
            loads.join(",\n"),
            variant.name,
            results[GATE_POINT].report.stats.latency.quantile(0.99),
            variant.name,
            results[GATE_POINT].report.joules_per_completed(),
        ));
    }

    assert!(
        gate_p99[2] <= gate_p99[0],
        "adaptive p99 at 1.5x ({}) must not exceed exact-only ({})",
        gate_p99[2],
        gate_p99[0]
    );
    assert!(
        gate_jpc[2] < gate_jpc[0],
        "adaptive joules/completed at 1.5x ({}) must be below exact-only ({})",
        gate_jpc[2],
        gate_jpc[0]
    );

    let live_json = if config.live {
        run_live(&config)
    } else {
        "  \"live\": null".to_string()
    };

    let json = format!(
        "{{\n  \"benchmark\": \"serving_bench\",\n  \"description\": \"open-loop serving sweep \
         (0.5x-2x capacity, faults armed): admission control with tier-downgrade-before-shed, \
         retry/timeout budgets, and SLO-vs-joules comparison of exact-only vs ladder vs adaptive \
         serving\",\n  \"workers\": {},\n  \"requests_per_load_point\": {},\n  \
         \"base_service_nanos\": {},\n  \"capacity_rps\": {:.0},\n  \"panic_per_mille\": {},\n  \
         \"seed\": {},\n  \"load_points\": [0.5, 0.75, 1.0, 1.25, 1.5, 2.0],\n  \
         \"admission\": {{\"queue_watermark\": {}, \"downgrade_start\": {}, \"shed_start\": {}, \
         \"shed_full\": {}, \"max_shed_significance\": {}}},\n  \"variants\": {{\n{}\n  }},\n\
         {},\n  \"metadata\": {{\n    \"note\": \"the variant sweep is a deterministic \
         virtual-time simulation (seeded arrivals, faults, and backoff; energy priced through \
         the runtime's ExecutionEnv) and reproduces bit-identically on any host; the live \
         section uses real workers and wall-clock time and is reported, not gated. lost = \
         offered - (completed + violations + shed) and must always be 0.\"\n  }}\n}}\n",
        config.workers,
        config.requests,
        config.service_nanos,
        capacity_rps,
        PANIC_PER_MILLE,
        config.seed,
        AdmissionConfig::default().queue_watermark,
        AdmissionConfig::default().downgrade_start,
        AdmissionConfig::default().shed_start,
        AdmissionConfig::default().shed_full,
        AdmissionConfig::default().max_shed_significance,
        variant_jsons.join(",\n"),
        live_json,
    );
    if config.write_out {
        std::fs::write(&config.out, &json).expect("failed to write results");
        eprintln!("  wrote {}", config.out);
    }
    println!("{json}");
}

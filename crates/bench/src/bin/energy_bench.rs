//! Modelled-energy benchmark: exact-only execution vs significance-aware
//! execution with DVFS, at equal task count.
//!
//! Every task computes the same fixed-work kernel; its approximate body does
//! a third of the work (the ballpark of the paper's Sobel/DCT approxfuns).
//! Two configurations run the identical task population:
//!
//! * **exact-only** — the significance-agnostic runtime, every task accurate,
//!   all dispatches at nominal frequency;
//! * **significance+DVFS** — GTB (Max-Buffer) at a configurable accurate
//!   ratio with an [`ApproxGovernor`]: approximate tasks execute under a
//!   lower modelled frequency, their runtime dilated and their dynamic energy
//!   priced through the `P ∝ f·V²` model.
//!
//! Both report the runtime's own per-worker energy accounting
//! ([`Runtime::energy_report`]) plus an output-quality figure (mean relative
//! error of the per-task results against the exact values), so the energy
//! comparison is made at a known, fixed quality level. Results are written
//! as JSON (default `BENCH_energy.json`).
//!
//! ```text
//! energy-bench [--workers N] [--tasks N] [--work N] [--ratio R] [--freq F]
//!              [--reps N] [--smoke] [--out PATH]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sig_core::{ApproxGovernor, EnergyReading, Policy, Runtime};
use sig_energy::PowerModel;

/// Deterministic fixed-work kernel: partial sum of a convergent series
/// (`Σ 1/(k² + ε_seed)` → π²/6). Evaluating a prefix of the series is a
/// genuine approximation — the dropped tail is `O(1/units)` — so the
/// approximate body is both cheaper and close in value.
fn spin_work(seed: u64, units: u64) -> f64 {
    let offset = (seed % 97) as f64 * 1e-7;
    let mut acc = 0.0;
    for k in 1..=units.max(1) {
        acc += 1.0 / ((k * k) as f64 + offset);
        std::hint::black_box(acc);
    }
    acc
}

struct Config {
    workers: usize,
    tasks: usize,
    work_units: u64,
    ratio: f64,
    freq: f64,
    reps: usize,
    out: String,
    write_out: bool,
}

fn parse_args() -> Config {
    let mut config = Config {
        workers: 4,
        tasks: 4_000,
        work_units: 2_000,
        ratio: 0.5,
        freq: 0.6,
        reps: 3,
        out: "BENCH_energy.json".to_string(),
        write_out: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--workers" => config.workers = num("--workers") as usize,
            "--tasks" => config.tasks = num("--tasks") as usize,
            "--work" => config.work_units = num("--work") as u64,
            "--ratio" => config.ratio = num("--ratio"),
            "--freq" => config.freq = num("--freq"),
            "--reps" => config.reps = num("--reps") as usize,
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--smoke" => {
                config.tasks = 400;
                config.reps = 1;
                config.write_out = false;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: energy-bench [--workers N] [--tasks N] [--work N] [--ratio R] \
                     [--freq F] [--reps N] [--smoke] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// One measured configuration: the runtime's energy reading, DVFS counters
/// and the per-task outputs for quality scoring.
struct VariantRun {
    reading: EnergyReading,
    modelled_wall_seconds: f64,
    scaled_tasks: u64,
    accurate_fraction: f64,
    outputs: Vec<f64>,
}

fn run_variant(config: &Config, significance_dvfs: bool) -> VariantRun {
    let builder = Runtime::builder()
        .workers(config.workers)
        .energy_model(PowerModel::for_host());
    let rt = if significance_dvfs {
        builder
            .policy(Policy::GtbMaxBuffer)
            .governor(ApproxGovernor::new(config.freq))
            .build()
    } else {
        builder.policy(Policy::SignificanceAgnostic).build()
    };
    let group = rt.create_group("energy-bench", config.ratio);
    let slots: Arc<Vec<AtomicU64>> = Arc::new(
        (0..config.tasks)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>(),
    );
    let work = config.work_units;
    for i in 0..config.tasks {
        let exact_slots = slots.clone();
        let approx_slots = slots.clone();
        rt.task(move || {
            let value = spin_work(i as u64, work);
            exact_slots[i].store(value.to_bits(), Ordering::Relaxed);
        })
        .approx(move || {
            // A third of the series terms — cheaper, slightly less accurate.
            let value = spin_work(i as u64, work / 3);
            approx_slots[i].store(value.to_bits(), Ordering::Relaxed);
        })
        .significance(((i % 9) + 1) as f64 / 10.0)
        .group(&group)
        .spawn();
    }
    rt.wait_group(&group);
    let report = rt.energy_report();
    let stats = rt.group_stats(&group);
    VariantRun {
        reading: report.reading(),
        modelled_wall_seconds: report.modelled_wall_seconds(),
        scaled_tasks: report.scaled_tasks(),
        accurate_fraction: stats.achieved_ratio(),
        outputs: slots
            .iter()
            .map(|slot| f64::from_bits(slot.load(Ordering::Relaxed)))
            .collect(),
    }
}

/// Mean relative error (%) of `candidate` against `reference`.
fn relative_error_percent(reference: &[f64], candidate: &[f64]) -> f64 {
    let total: f64 = reference.iter().map(|v| v.abs()).sum();
    if total == 0.0 {
        return 0.0;
    }
    let diff: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(r, c)| (r - c).abs())
        .sum();
    100.0 * diff / total
}

fn main() {
    let config = parse_args();
    eprintln!(
        "energy-bench: {} tasks x {} work units, {} workers, ratio {}, approx freq {}, \
         best of {} (host has {} cores)",
        config.tasks,
        config.work_units,
        config.workers,
        config.ratio,
        config.freq,
        config.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut exact: Option<VariantRun> = None;
    let mut dvfs: Option<VariantRun> = None;
    for _ in 0..config.reps {
        let e = run_variant(&config, false);
        if exact
            .as_ref()
            .is_none_or(|best| e.reading.joules < best.reading.joules)
        {
            exact = Some(e);
        }
        let d = run_variant(&config, true);
        if dvfs
            .as_ref()
            .is_none_or(|best| d.reading.joules < best.reading.joules)
        {
            dvfs = Some(d);
        }
    }
    let exact = exact.expect("at least one rep");
    let dvfs = dvfs.expect("at least one rep");

    let quality = relative_error_percent(&exact.outputs, &dvfs.outputs);
    let reduction = 100.0 * (1.0 - dvfs.reading.joules / exact.reading.joules);
    eprintln!(
        "  exact-only        : {:.3} J ({:.4} s wall)",
        exact.reading.joules, exact.reading.wall_seconds
    );
    eprintln!(
        "  significance+DVFS : {:.3} J ({:.4} s modelled wall, {} scaled tasks)",
        dvfs.reading.joules, dvfs.modelled_wall_seconds, dvfs.scaled_tasks
    );
    eprintln!("  energy reduction  : {reduction:.1}% at {quality:.3}% relative error");

    let variant_json = |label: &str, run: &VariantRun| -> String {
        format!(
            "  \"{label}\": {{\n    \"joules\": {:.4},\n    \"dynamic_joules\": {:.4},\n    \
             \"static_joules\": {:.4},\n    \"idle_joules\": {:.4},\n    \
             \"wall_seconds\": {:.6},\n    \"modelled_wall_seconds\": {:.6},\n    \
             \"busy_core_seconds\": {:.6},\n    \"average_watts\": {:.3},\n    \
             \"scaled_tasks\": {},\n    \"accurate_fraction\": {:.4}\n  }}",
            run.reading.joules,
            run.reading.breakdown.dynamic_joules,
            run.reading.breakdown.static_joules,
            run.reading.breakdown.idle_joules,
            run.reading.wall_seconds,
            run.modelled_wall_seconds,
            run.reading.busy_core_seconds,
            run.reading.average_watts,
            run.scaled_tasks,
            run.accurate_fraction,
        )
    };
    let json = format!(
        "{{\n  \"benchmark\": \"energy_bench\",\n  \"description\": \"modelled energy of \
         exact-only vs significance+DVFS execution at equal task count\",\n  \
         \"workers\": {},\n  \"tasks\": {},\n  \"work_units\": {},\n  \"ratio\": {},\n  \
         \"approx_frequency_ratio\": {},\n  \"reps\": {},\n  \"host_cores\": {},\n\
         {},\n{},\n  \"quality_relative_error_percent\": {:.4},\n  \
         \"energy_reduction_percent\": {:.2},\n  \"metadata\": {{\n    \"note\": \"energy is \
         modelled (affine power model + P∝f·V² DVFS scaling), not measured; produced on a \
         container whose core count is recorded in host_cores\"\n  }}\n}}\n",
        config.workers,
        config.tasks,
        config.work_units,
        config.ratio,
        config.freq,
        config.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        variant_json("exact_only", &exact),
        variant_json("significance_dvfs", &dvfs),
        quality,
        reduction,
    );
    if config.write_out {
        std::fs::write(&config.out, &json).expect("failed to write results");
        eprintln!("  wrote {}", config.out);
    }
    println!("{json}");

    assert!(
        dvfs.reading.joules < exact.reading.joules,
        "significance+DVFS must reduce modelled energy ({} J vs {} J)",
        dvfs.reading.joules,
        exact.reading.joules
    );
}

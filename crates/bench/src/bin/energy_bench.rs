//! Modelled-energy benchmark: exact-only execution vs significance-aware
//! execution with DVFS, plus an energy-**strategy** comparison series
//! (slow-and-steady vs race-to-idle vs adaptive).
//!
//! # Live section
//!
//! Every task computes the same fixed-work kernel; its approximate body does
//! a third of the work (the ballpark of the paper's Sobel/DCT approxfuns).
//! Two configurations run the identical task population:
//!
//! * **exact-only** — the significance-agnostic runtime, every task accurate,
//!   all dispatches at nominal frequency;
//! * **significance+DVFS** — GTB (Max-Buffer) at a configurable accurate
//!   ratio with an [`ApproxGovernor`]: approximate tasks execute under a
//!   lower modelled frequency, their runtime dilated and their dynamic energy
//!   priced through the `P ∝ f·V²` model.
//!
//! Both report the runtime's own per-worker energy accounting
//! ([`Runtime::energy_report`]) plus an output-quality figure (mean relative
//! error of the per-task results against the exact values), so the energy
//! comparison is made at a known, fixed quality level.
//!
//! # Strategy-comparison section
//!
//! Four governors — exact-only, [`SignificanceLadderGovernor`]
//! (slow-and-steady), [`RaceToIdleGovernor`] and [`AdaptiveGovernor`] — are
//! compared on two power models: **dynamic-heavy** (cubic-ish power
//! exponent, small static share: stretching wins) and **static-heavy**
//! (near-linear exponent, large static share, deep sleep: racing wins, with
//! the crossover mid-ladder so the adaptive governor mixes sides). The
//! series is a **deterministic replay**: one fixed workload script (task
//! significances, GTB accuracy decisions, per-task busy durations) is driven
//! through the runtime's real [`ExecutionEnv`] accounting under each
//! governor, so the numbers are reproducible on any host and the invariant
//! `adaptive ≤ min(ladder, race-to-idle)` is checkable in CI without noise
//! margins. Frequency transitions carry a [`TransitionCost`]; the ladder
//! governor thrashes (one switch per significance change) while the
//! adaptive governor's hysteresis bounds switches to `dispatches /
//! hysteresis` per worker.
//!
//! Results are written as JSON (default `BENCH_energy.json`).
//!
//! ```text
//! energy-bench [--workers N] [--tasks N] [--work N] [--ratio R] [--freq F]
//!              [--reps N] [--smoke] [--out PATH] [--check COMMITTED.json]
//! ```
//!
//! `--check` mode re-runs the deterministic strategy replay and fails
//! (non-zero exit) if the adaptive strategy's modelled energy reduction over
//! the same-run exact-only baseline drops below 0.8× the committed
//! reduction on either power model, or if `adaptive ≤ min(ladder, race)` is
//! violated — the energy counterpart of the sched-overhead regression gate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sig_core::{
    AdaptiveGovernor, ApproxGovernor, DispatchContext, EnergyReading, ExecutionEnv, ExecutionMode,
    Governor, NominalGovernor, Policy, RaceToIdleGovernor, Runtime, Significance,
    SignificanceLadderGovernor,
};
use sig_energy::{FrequencyScale, PowerModel, SleepState, TransitionCost};

/// Deterministic fixed-work kernel: partial sum of a convergent series
/// (`Σ 1/(k² + ε_seed)` → π²/6). Evaluating a prefix of the series is a
/// genuine approximation — the dropped tail is `O(1/units)` — so the
/// approximate body is both cheaper and close in value.
fn spin_work(seed: u64, units: u64) -> f64 {
    let offset = (seed % 97) as f64 * 1e-7;
    let mut acc = 0.0;
    for k in 1..=units.max(1) {
        acc += 1.0 / ((k * k) as f64 + offset);
        std::hint::black_box(acc);
    }
    acc
}

struct Config {
    workers: usize,
    tasks: usize,
    work_units: u64,
    ratio: f64,
    freq: f64,
    reps: usize,
    out: String,
    write_out: bool,
    check: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        workers: 4,
        tasks: 4_000,
        work_units: 2_000,
        ratio: 0.5,
        freq: 0.6,
        reps: 3,
        out: "BENCH_energy.json".to_string(),
        write_out: true,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--workers" => config.workers = num("--workers") as usize,
            "--tasks" => config.tasks = num("--tasks") as usize,
            "--work" => config.work_units = num("--work") as u64,
            "--ratio" => config.ratio = num("--ratio"),
            "--freq" => config.freq = num("--freq"),
            "--reps" => config.reps = num("--reps") as usize,
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--check" => {
                config.check = Some(args.next().expect("--check needs a committed JSON path"));
            }
            "--smoke" => {
                config.tasks = 400;
                config.reps = 1;
                config.write_out = false;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: energy-bench [--workers N] [--tasks N] [--work N] [--ratio R] \
                     [--freq F] [--reps N] [--smoke] [--out PATH] [--check COMMITTED.json]"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// One measured configuration: the runtime's energy reading, DVFS counters
/// and the per-task outputs for quality scoring.
struct VariantRun {
    reading: EnergyReading,
    modelled_wall_seconds: f64,
    scaled_tasks: u64,
    accurate_fraction: f64,
    outputs: Vec<f64>,
}

fn run_variant(config: &Config, significance_dvfs: bool) -> VariantRun {
    let builder = Runtime::builder()
        .workers(config.workers)
        .energy_model(PowerModel::for_host());
    let rt = if significance_dvfs {
        builder
            .policy(Policy::GtbMaxBuffer)
            .governor(ApproxGovernor::new(config.freq))
            .build()
    } else {
        builder.policy(Policy::SignificanceAgnostic).build()
    };
    let group = rt.create_group("energy-bench", config.ratio);
    let slots: Arc<Vec<AtomicU64>> = Arc::new(
        (0..config.tasks)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>(),
    );
    let work = config.work_units;
    for i in 0..config.tasks {
        let exact_slots = slots.clone();
        let approx_slots = slots.clone();
        rt.task(move || {
            let value = spin_work(i as u64, work);
            exact_slots[i].store(value.to_bits(), Ordering::Relaxed);
        })
        .approx(move || {
            // A third of the series terms — cheaper, slightly less accurate.
            let value = spin_work(i as u64, work / 3);
            approx_slots[i].store(value.to_bits(), Ordering::Relaxed);
        })
        .significance(((i % 9) + 1) as f64 / 10.0)
        .group(&group)
        .spawn();
    }
    rt.wait_group(&group);
    let report = rt.energy_report();
    let stats = rt.group_stats(&group);
    VariantRun {
        reading: report.reading(),
        modelled_wall_seconds: report.modelled_wall_seconds(),
        scaled_tasks: report.scaled_tasks(),
        accurate_fraction: stats.achieved_ratio(),
        outputs: slots
            .iter()
            .map(|slot| f64::from_bits(slot.load(Ordering::Relaxed)))
            .collect(),
    }
}

/// Mean relative error (%) of `candidate` against `reference`.
fn relative_error_percent(reference: &[f64], candidate: &[f64]) -> f64 {
    let total: f64 = reference.iter().map(|v| v.abs()).sum();
    if total == 0.0 {
        return 0.0;
    }
    let diff: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(r, c)| (r - c).abs())
        .sum();
    100.0 * diff / total
}

// ---------------------------------------------------------------------------
// Strategy-comparison replay
// ---------------------------------------------------------------------------

/// Ladder depth shared by all strategy governors.
const LADDER_STEPS: usize = 4;
/// Ladder floor shared by all strategy governors.
const LADDER_FLOOR: f64 = 0.4;
/// Adaptive-governor hysteresis (consecutive dissenting dispatches before a
/// domain re-targets).
const HYSTERESIS: u32 = 4;
/// Synthetic nominal busy time of one accurate task in the replay.
const ACCURATE_TASK_SECONDS: f64 = 40e-6;
/// Synthetic nominal busy time of one approximate task (a third of the
/// accurate work, like the live kernel).
const APPROX_TASK_SECONDS: f64 = ACCURATE_TASK_SECONDS / 3.0;
/// DVFS transition cost charged in the replay (10 µs stall, 20 µJ).
const REPLAY_TRANSITION: TransitionCost = TransitionCost {
    latency_seconds: 10e-6,
    energy_joules: 20e-6,
};

/// One energy-model scenario for the strategy comparison.
struct Scenario {
    name: &'static str,
    model: PowerModel,
    sleep: SleepState,
    /// Power exponent applied to every ladder step (`≈2.4`: dynamic power
    /// falls fast with frequency; `≈1.2`: leakage-dominated, stretching
    /// saves little).
    power_exponent: f64,
}

impl Scenario {
    /// Dynamic-heavy package: small static share, cubic-ish `P ∝ f·V²`
    /// exponent, only a shallow sleep state. Slow-and-steady wins everywhere.
    fn dynamic_heavy(workers: usize) -> Scenario {
        Scenario {
            name: "dynamic_heavy",
            model: PowerModel {
                sockets: 1,
                cores_per_socket: workers,
                static_watts_per_socket: 1.0 * workers as f64,
                active_watts_per_core: 6.6,
                idle_watts_per_core: 0.5,
            },
            sleep: SleepState::shallow(),
            power_exponent: 2.4,
        }
    }

    /// Static-heavy package: large static share, near-linear exponent
    /// (frequency scaling barely cuts power), deep power-gating sleep.
    /// Race-to-idle wins on the deep rungs; the crossover sits mid-ladder.
    fn static_heavy(workers: usize) -> Scenario {
        Scenario {
            name: "static_heavy",
            model: PowerModel {
                sockets: 1,
                cores_per_socket: workers,
                static_watts_per_socket: 4.0 * workers as f64,
                active_watts_per_core: 6.6,
                idle_watts_per_core: 2.0,
            },
            sleep: SleepState::new(0.1, 0.75, 5e-6),
            power_exponent: 1.2,
        }
    }

    fn ladder(&self) -> Vec<FrequencyScale> {
        FrequencyScale::ladder(LADDER_STEPS, LADDER_FLOOR)
            .into_iter()
            .map(|s| FrequencyScale::with_exponent(s.ratio(), self.power_exponent))
            .collect()
    }
}

/// One task of the deterministic replay script.
struct SimTask {
    significance: f64,
    accurate: bool,
}

/// The fixed workload every strategy replays: the live bench's significance
/// distribution with Max-Buffer-GTB-style accuracy decisions (the most
/// significant tasks run accurately until the requested ratio is met).
fn strategy_workload(tasks: usize, ratio: f64) -> Vec<SimTask> {
    // Significances cycle 0.1..0.9; the top `ratio` fraction (by
    // significance) is accurate — with nine equiprobable levels the
    // threshold is the (1-ratio) quantile.
    let threshold = 0.1 + (1.0 - ratio) * 0.8;
    (0..tasks)
        .map(|i| {
            let significance = ((i % 9) + 1) as f64 / 10.0;
            SimTask {
                significance,
                accurate: significance > threshold,
            }
        })
        .collect()
}

/// Result of replaying the workload under one governor.
struct StrategyRun {
    reading: EnergyReading,
    modelled_wall_seconds: f64,
    sleep_seconds: f64,
    transitions: u64,
    scaled_tasks: u64,
}

/// Replay the workload script through the runtime's real [`ExecutionEnv`]
/// accounting under `governor`: same dispatch/record path the workers take,
/// with synthetic (deterministic) busy durations. Tasks are dealt
/// round-robin across `workers` shards; each worker then drains its backlog
/// accuracy-class first (accurate, then approximate, arrival order within a
/// class) — modelling a significance-aware dispatch order, and keeping the
/// unavoidable nominal↔step domain crossings at one per class boundary
/// instead of one per accurate/approximate alternation. The wall window is
/// the perfectly balanced `total busy / workers`.
fn run_strategy(
    scenario: &Scenario,
    governor: Arc<dyn Governor>,
    workload: &[SimTask],
    workers: usize,
) -> StrategyRun {
    let env = ExecutionEnv::new(
        scenario.model,
        governor,
        Some(scenario.sleep),
        REPLAY_TRANSITION,
        workers,
    );
    let mut backlog: Vec<Vec<&SimTask>> = vec![Vec::new(); workers];
    for (i, task) in workload.iter().enumerate() {
        backlog[i % workers].push(task);
    }
    let mut total_busy = 0.0f64;
    for (worker, tasks) in backlog.iter().enumerate() {
        let ordered = tasks
            .iter()
            .filter(|t| t.accurate)
            .chain(tasks.iter().filter(|t| !t.accurate));
        for task in ordered {
            let decision = env.dispatch(
                worker,
                &DispatchContext {
                    worker,
                    significance: Significance::new(task.significance),
                    accurate: task.accurate,
                    policy: Policy::GtbMaxBuffer,
                    group_ratio: 0.5,
                    deadline_pressure: false,
                },
            );
            let (mode, busy) = if task.accurate {
                (ExecutionMode::Accurate, ACCURATE_TASK_SECONDS)
            } else {
                (ExecutionMode::Approximate, APPROX_TASK_SECONDS)
            };
            total_busy += busy;
            env.record(worker, mode, Duration::from_secs_f64(busy), decision);
        }
    }
    let report = env.report(total_busy / workers as f64, workers);
    StrategyRun {
        reading: report.reading(),
        modelled_wall_seconds: report.modelled_wall_seconds(),
        sleep_seconds: report.sleep_seconds(),
        transitions: report.frequency_transitions(),
        scaled_tasks: report.scaled_tasks(),
    }
}

/// The four strategies of one scenario, replayed over the same workload.
struct ScenarioResult {
    exact: StrategyRun,
    ladder: StrategyRun,
    race: StrategyRun,
    adaptive: StrategyRun,
}

impl ScenarioResult {
    /// Modelled energy reduction (%) of the adaptive strategy over the
    /// same-run exact-only baseline.
    fn adaptive_reduction_percent(&self) -> f64 {
        100.0 * (1.0 - self.adaptive.reading.joules / self.exact.reading.joules)
    }
}

fn run_scenario(scenario: &Scenario, tasks: usize, ratio: f64, workers: usize) -> ScenarioResult {
    let workload = strategy_workload(tasks, ratio);
    // The exact-only baseline runs the same task population with every task
    // accurate at nominal frequency (no approximation, no strategy) — the
    // significance-agnostic runtime of the live section.
    let exact_workload: Vec<SimTask> = workload
        .iter()
        .map(|t| SimTask {
            significance: t.significance,
            accurate: true,
        })
        .collect();
    let steps = scenario.ladder();
    let exact = run_strategy(
        scenario,
        Arc::new(NominalGovernor),
        &exact_workload,
        workers,
    );
    let ladder = run_strategy(
        scenario,
        Arc::new(SignificanceLadderGovernor::new(steps.clone())),
        &workload,
        workers,
    );
    let race = run_strategy(
        scenario,
        Arc::new(RaceToIdleGovernor::new(steps.clone())),
        &workload,
        workers,
    );
    let adaptive = run_strategy(
        scenario,
        Arc::new(AdaptiveGovernor::new(
            &scenario.model,
            scenario.sleep,
            steps,
            HYSTERESIS,
            APPROX_TASK_SECONDS,
        )),
        &workload,
        workers,
    );
    ScenarioResult {
        exact,
        ladder,
        race,
        adaptive,
    }
}

/// Assert the committed invariants of one scenario (deterministic replay:
/// no noise tolerance needed beyond float epsilon).
fn assert_scenario_invariants(name: &str, result: &ScenarioResult, tasks: usize, workers: usize) {
    let adaptive = result.adaptive.reading.joules;
    let floor = result.ladder.reading.joules.min(result.race.reading.joules);
    assert!(
        adaptive <= floor * (1.0 + 1e-9),
        "{name}: adaptive {adaptive} J must not exceed min(ladder, race) = {floor} J"
    );
    assert!(
        adaptive < result.exact.reading.joules,
        "{name}: adaptive must reduce energy vs exact-only"
    );
    // Hysteresis bound: each worker's domain re-targets at most once per
    // HYSTERESIS dispatches (plus one initial transition).
    let bound = (tasks as u64 / HYSTERESIS as u64) + workers as u64;
    assert!(
        result.adaptive.transitions <= bound,
        "{name}: adaptive transitions {} exceed hysteresis bound {bound}",
        result.adaptive.transitions
    );
    // Race-to-idle never changes the frequency domain at all.
    assert_eq!(
        result.race.transitions, 0,
        "{name}: race-to-idle must pay zero DVFS transitions"
    );
}

/// Minimal extractor for `"key": number` in the committed report (the
/// vendored serde shim has no deserializer).
fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The nth occurrence variant of [`extract_json_number`], scoped to the text
/// after `section` first appears.
fn extract_json_number_after(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    extract_json_number(&json[at..], key)
}

/// Regression gate for CI: replay the deterministic strategy comparison and
/// fail if the adaptive strategy's modelled energy reduction over the
/// same-run exact-only baseline falls below 0.8× the committed reduction on
/// either power model, or if `adaptive ≤ min(ladder, race)` breaks. Exits
/// non-zero on regression.
fn run_check(config: &Config, committed_path: &str) -> ! {
    let committed = std::fs::read_to_string(committed_path)
        .unwrap_or_else(|e| panic!("cannot read {committed_path}: {e}"));
    let mut failed = false;
    for scenario in [
        Scenario::dynamic_heavy(config.workers),
        Scenario::static_heavy(config.workers),
    ] {
        let result = run_scenario(&scenario, config.tasks, config.ratio, config.workers);
        assert_scenario_invariants(scenario.name, &result, config.tasks, config.workers);
        let now = result.adaptive_reduction_percent();
        let committed_reduction =
            extract_json_number_after(&committed, scenario.name, "adaptive_reduction_percent")
                .unwrap_or_else(|| {
                    panic!(
                        "committed report lacks {}.adaptive_reduction_percent",
                        scenario.name
                    )
                });
        let threshold = 0.8 * committed_reduction;
        eprintln!(
            "energy-bench check [{}]: adaptive reduction now {now:.2}% vs committed \
             {committed_reduction:.2}% (threshold {threshold:.2}%)",
            scenario.name
        );
        if now < threshold {
            eprintln!(
                "FAIL [{}]: adaptive energy reduction regressed below 0.8x the committed \
                 number",
                scenario.name
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("OK: adaptive strategy holds the committed energy-reduction floor");
    std::process::exit(0);
}

fn strategy_json(label: &str, run: &StrategyRun, indent: &str) -> String {
    format!(
        "{indent}\"{label}\": {{\n{indent}  \"joules\": {:.6},\n{indent}  \"dynamic_joules\": \
         {:.6},\n{indent}  \"static_joules\": {:.6},\n{indent}  \"idle_joules\": {:.6},\n\
         {indent}  \"transition_joules\": {:.6},\n{indent}  \"modelled_wall_seconds\": {:.6},\n\
         {indent}  \"sleep_seconds\": {:.6},\n{indent}  \"frequency_transitions\": {},\n\
         {indent}  \"scaled_tasks\": {}\n{indent}}}",
        run.reading.joules,
        run.reading.breakdown.dynamic_joules,
        run.reading.breakdown.static_joules,
        run.reading.breakdown.idle_joules,
        run.reading.breakdown.transition_joules,
        run.modelled_wall_seconds,
        run.sleep_seconds,
        run.transitions,
        run.scaled_tasks,
    )
}

fn scenario_json(scenario: &Scenario, result: &ScenarioResult) -> String {
    format!(
        "    \"{}\": {{\n      \"model\": {{\"sockets\": {}, \"cores_per_socket\": {}, \
         \"static_watts_per_socket\": {}, \"active_watts_per_core\": {}, \
         \"idle_watts_per_core\": {}}},\n      \"power_exponent\": {},\n      \
         \"sleep_state\": {{\"watts_per_core\": {}, \"static_fraction_saved\": {}, \
         \"wake_latency_seconds\": {}}},\n{},\n{},\n{},\n{},\n      \
         \"adaptive_reduction_percent\": {:.4}\n    }}",
        scenario.name,
        scenario.model.sockets,
        scenario.model.cores_per_socket,
        scenario.model.static_watts_per_socket,
        scenario.model.active_watts_per_core,
        scenario.model.idle_watts_per_core,
        scenario.power_exponent,
        scenario.sleep.watts_per_core,
        scenario.sleep.static_fraction_saved,
        scenario.sleep.wake_latency_seconds,
        strategy_json("exact_only", &result.exact, "      "),
        strategy_json("ladder", &result.ladder, "      "),
        strategy_json("race_to_idle", &result.race, "      "),
        strategy_json("adaptive", &result.adaptive, "      "),
        result.adaptive_reduction_percent(),
    )
}

fn main() {
    let config = parse_args();

    // CI regression gate: deterministic strategy replay vs committed floor.
    if let Some(committed) = config.check.clone() {
        run_check(&config, &committed);
    }

    eprintln!(
        "energy-bench: {} tasks x {} work units, {} workers, ratio {}, approx freq {}, \
         best of {} (host has {} cores)",
        config.tasks,
        config.work_units,
        config.workers,
        config.ratio,
        config.freq,
        config.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut exact: Option<VariantRun> = None;
    let mut dvfs: Option<VariantRun> = None;
    for _ in 0..config.reps {
        let e = run_variant(&config, false);
        if exact
            .as_ref()
            .is_none_or(|best| e.reading.joules < best.reading.joules)
        {
            exact = Some(e);
        }
        let d = run_variant(&config, true);
        if dvfs
            .as_ref()
            .is_none_or(|best| d.reading.joules < best.reading.joules)
        {
            dvfs = Some(d);
        }
    }
    let exact = exact.expect("at least one rep");
    let dvfs = dvfs.expect("at least one rep");

    let quality = relative_error_percent(&exact.outputs, &dvfs.outputs);
    let reduction = 100.0 * (1.0 - dvfs.reading.joules / exact.reading.joules);
    eprintln!(
        "  exact-only        : {:.3} J ({:.4} s wall)",
        exact.reading.joules, exact.reading.wall_seconds
    );
    eprintln!(
        "  significance+DVFS : {:.3} J ({:.4} s modelled wall, {} scaled tasks)",
        dvfs.reading.joules, dvfs.modelled_wall_seconds, dvfs.scaled_tasks
    );
    eprintln!("  energy reduction  : {reduction:.1}% at {quality:.3}% relative error");

    // Strategy comparison: deterministic replay over both power models.
    let dynamic_heavy = Scenario::dynamic_heavy(config.workers);
    let static_heavy = Scenario::static_heavy(config.workers);
    let dynamic_result = run_scenario(&dynamic_heavy, config.tasks, config.ratio, config.workers);
    let static_result = run_scenario(&static_heavy, config.tasks, config.ratio, config.workers);
    for (scenario, result) in [
        (&dynamic_heavy, &dynamic_result),
        (&static_heavy, &static_result),
    ] {
        eprintln!(
            "  strategy [{:>13}]: exact {:.4} J | ladder {:.4} J ({} trans) | race {:.4} J \
             ({:.4} s sleep) | adaptive {:.4} J ({} trans) => {:.1}% reduction",
            scenario.name,
            result.exact.reading.joules,
            result.ladder.reading.joules,
            result.ladder.transitions,
            result.race.reading.joules,
            result.race.sleep_seconds,
            result.adaptive.reading.joules,
            result.adaptive.transitions,
            result.adaptive_reduction_percent(),
        );
        assert_scenario_invariants(scenario.name, result, config.tasks, config.workers);
    }

    let variant_json = |label: &str, run: &VariantRun| -> String {
        format!(
            "  \"{label}\": {{\n    \"joules\": {:.4},\n    \"dynamic_joules\": {:.4},\n    \
             \"static_joules\": {:.4},\n    \"idle_joules\": {:.4},\n    \
             \"transition_joules\": {:.6},\n    \
             \"wall_seconds\": {:.6},\n    \"modelled_wall_seconds\": {:.6},\n    \
             \"busy_core_seconds\": {:.6},\n    \"average_watts\": {:.3},\n    \
             \"scaled_tasks\": {},\n    \"accurate_fraction\": {:.4}\n  }}",
            run.reading.joules,
            run.reading.breakdown.dynamic_joules,
            run.reading.breakdown.static_joules,
            run.reading.breakdown.idle_joules,
            run.reading.breakdown.transition_joules,
            run.reading.wall_seconds,
            run.modelled_wall_seconds,
            run.reading.busy_core_seconds,
            run.reading.average_watts,
            run.scaled_tasks,
            run.accurate_fraction,
        )
    };
    let json = format!(
        "{{\n  \"benchmark\": \"energy_bench\",\n  \"description\": \"modelled energy of \
         exact-only vs significance+DVFS execution at equal task count, plus an \
         energy-strategy comparison (slow-and-steady vs race-to-idle vs adaptive)\",\n  \
         \"workers\": {},\n  \"tasks\": {},\n  \"work_units\": {},\n  \"ratio\": {},\n  \
         \"approx_frequency_ratio\": {},\n  \"reps\": {},\n  \"host_cores\": {},\n\
         {},\n{},\n  \"quality_relative_error_percent\": {:.4},\n  \
         \"energy_reduction_percent\": {:.2},\n  \"strategy_comparison\": {{\n    \
         \"description\": \"deterministic replay of one workload script (GTB Max-Buffer \
         accuracy decisions, fixed per-task busy times) through the runtime's ExecutionEnv \
         under four governors\",\n    \"ladder\": {{\"steps\": {}, \"floor\": {}}},\n    \
         \"hysteresis\": {},\n    \"accurate_task_seconds\": {},\n    \
         \"approx_task_seconds\": {:.9},\n    \"transition_cost\": {{\"latency_seconds\": \
         {}, \"energy_joules\": {}}},\n{},\n{}\n  }},\n  \"metadata\": {{\n    \"note\": \
         \"energy is modelled (affine power model + P∝f·V² DVFS scaling + sleep-state \
         residency + transition costs), not measured; the live section depends on host \
         timing, the strategy_comparison section is a deterministic replay and is \
         reproducible bit-for-bit on any host at fixed task count\"\n  }}\n}}\n",
        config.workers,
        config.tasks,
        config.work_units,
        config.ratio,
        config.freq,
        config.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        variant_json("exact_only", &exact),
        variant_json("significance_dvfs", &dvfs),
        quality,
        reduction,
        LADDER_STEPS,
        LADDER_FLOOR,
        HYSTERESIS,
        ACCURATE_TASK_SECONDS,
        APPROX_TASK_SECONDS,
        REPLAY_TRANSITION.latency_seconds,
        REPLAY_TRANSITION.energy_joules,
        scenario_json(&dynamic_heavy, &dynamic_result),
        scenario_json(&static_heavy, &static_result),
    );
    if config.write_out {
        std::fs::write(&config.out, &json).expect("failed to write results");
        eprintln!("  wrote {}", config.out);
    }
    println!("{json}");

    assert!(
        dvfs.reading.joules < exact.reading.joules,
        "significance+DVFS must reduce modelled energy ({} J vs {} J)",
        dvfs.reading.joules,
        exact.reading.joules
    );
}

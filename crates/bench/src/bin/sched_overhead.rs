//! Scheduler hot-path overhead benchmark.
//!
//! Measures spawn + execute + taskwait throughput for empty-body tasks —
//! pure scheduler overhead, the quantity the paper's Figure 4 compares
//! against OpenMP — for two scheduler designs:
//!
//! * **mutex baseline**: a faithful, self-contained re-implementation of the
//!   seed scheduler's hot path — `Mutex<VecDeque>` per-worker queues, a
//!   condvar broadcast to *all* workers on every enqueue, a second condvar
//!   broadcast on every completion, a 1 ms idle polling loop, and a
//!   mutex-guarded per-task statistics log;
//! * **lock-free runtime**: the actual `sig-core` runtime (Chase–Lev-style
//!   stealable deques + MPMC inboxes, targeted park/unpark wakeups,
//!   event-count barriers, sharded statistics).
//!
//! Results are written as JSON (default `BENCH_sched.json`) so the speedup
//! is committed alongside the code that produced it.
//!
//! ```text
//! sched-overhead [--workers N] [--tasks N] [--reps N] [--smoke] [--out PATH]
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sig_core::{Policy, Runtime};

/// Faithful reduction of the seed scheduler's hot path (see module docs).
///
/// Every per-task cost of the seed design is reproduced, operation for
/// operation: the two mutex-guarded body slots (both locked again at cleanup),
/// the unconditional dependence-tracker lock at spawn, the registry RwLock
/// lookup per execution, the mutex-guarded successor list, the per-execution
/// statistics-log mutex, the enqueue broadcast, the completion broadcast, and
/// the 1 ms / 5 ms polling waits.
mod baseline {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicU8;
    use std::sync::RwLock;

    type Body = Box<dyn FnOnce() + Send + 'static>;

    /// Mirrors the seed's `Task`: mutex body slots + atomic flags.
    struct Job {
        accurate: Mutex<Option<Body>>,
        approximate: Mutex<Option<Body>>,
        mode: AtomicU8,
        pending_deps: AtomicUsize,
        released: AtomicBool,
        enqueued: AtomicBool,
        completed: AtomicBool,
        successors: Mutex<Vec<Arc<Job>>>,
    }

    /// Mirrors the seed's per-group state the execute path touched.
    struct Group {
        outstanding: AtomicUsize,
        log: Mutex<Vec<(u8, u8)>>,
    }

    struct Inner {
        queues: Vec<Mutex<VecDeque<Arc<Job>>>>,
        groups: RwLock<Vec<Arc<Group>>>,
        tracker: Mutex<HashMap<u64, u64>>,
        next: AtomicUsize,
        outstanding: AtomicUsize,
        completed: AtomicUsize,
        accurate: AtomicUsize,
        busy_nanos: AtomicUsize,
        shutdown: AtomicBool,
        work_mutex: Mutex<()>,
        work_available: Condvar,
        completion_mutex: Mutex<()>,
        completion: Condvar,
    }

    pub struct MutexScheduler {
        inner: Arc<Inner>,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl MutexScheduler {
        pub fn new(workers: usize) -> Self {
            let group = Arc::new(Group {
                outstanding: AtomicUsize::new(0),
                log: Mutex::new(Vec::new()),
            });
            let inner = Arc::new(Inner {
                queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                groups: RwLock::new(vec![group]),
                tracker: Mutex::new(HashMap::new()),
                next: AtomicUsize::new(0),
                outstanding: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                accurate: AtomicUsize::new(0),
                busy_nanos: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                work_mutex: Mutex::new(()),
                work_available: Condvar::new(),
                completion_mutex: Mutex::new(()),
                completion: Condvar::new(),
            });
            let handles = (0..workers)
                .map(|index| {
                    let inner = inner.clone();
                    std::thread::spawn(move || worker_loop(&inner, index))
                })
                .collect();
            MutexScheduler {
                inner,
                workers: handles,
            }
        }

        pub fn spawn(&self, body: Body) {
            let inner = &self.inner;
            let job = Arc::new(Job {
                accurate: Mutex::new(Some(body)),
                approximate: Mutex::new(None),
                mode: AtomicU8::new(0),
                pending_deps: AtomicUsize::new(0),
                released: AtomicBool::new(false),
                enqueued: AtomicBool::new(false),
                completed: AtomicBool::new(false),
                successors: Mutex::new(Vec::new()),
            });
            inner.outstanding.fetch_add(1, Ordering::AcqRel);
            inner.groups.read().unwrap()[0]
                .outstanding
                .fetch_add(1, Ordering::AcqRel);
            // Seed behaviour: the dependence tracker is locked on every
            // spawn, footprint or not.
            job.pending_deps.store(1, Ordering::Release);
            drop(inner.tracker.lock().unwrap());
            // Agnostic policy: decide accurate, release, enqueue.
            let _ = job
                .mode
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
            job.released.swap(true, Ordering::AcqRel);
            job.pending_deps.fetch_sub(1, Ordering::AcqRel);
            if !job.enqueued.swap(true, Ordering::AcqRel) {
                let slot = inner.next.fetch_add(1, Ordering::Relaxed) % inner.queues.len();
                inner.queues[slot].lock().unwrap().push_back(job);
                // Seed behaviour: broadcast to every sleeper on every enqueue.
                let _guard = inner.work_mutex.lock().unwrap();
                inner.work_available.notify_all();
            }
        }

        pub fn wait_all(&self) {
            // Seed behaviour: 5 ms polling re-check on the completion condvar.
            let inner = &self.inner;
            let mut guard = inner.completion_mutex.lock().unwrap();
            while inner.outstanding.load(Ordering::Acquire) != 0 {
                let (g, _) = inner
                    .completion
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap();
                guard = g;
            }
        }
    }

    impl Drop for MutexScheduler {
        fn drop(&mut self) {
            self.wait_all();
            self.inner.shutdown.store(true, Ordering::Release);
            {
                let _guard = self.inner.work_mutex.lock().unwrap();
                self.inner.work_available.notify_all();
            }
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }

    fn pop_any(inner: &Inner, index: usize) -> Option<Arc<Job>> {
        let n = inner.queues.len();
        if let Some(job) = inner.queues[index].lock().unwrap().pop_front() {
            return Some(job);
        }
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) = inner.queues[victim].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn execute(inner: &Inner, job: Arc<Job>) {
        // Seed behaviour: group state is fetched from the registry (RwLock)
        // for every executed task.
        let group = inner.groups.read().unwrap()[0].clone();
        let accurate = job.mode.load(Ordering::Acquire) == 1;
        let start = Instant::now();
        if accurate {
            if let Some(body) = job.accurate.lock().unwrap().take() {
                body();
            }
        }
        let busy = start.elapsed();
        // Seed behaviour: both body slots locked again to drop the loser.
        drop(job.accurate.lock().unwrap().take());
        drop(job.approximate.lock().unwrap().take());
        inner.completed.fetch_add(1, Ordering::Relaxed);
        inner.accurate.fetch_add(1, Ordering::Relaxed);
        inner
            .busy_nanos
            .fetch_add(busy.as_nanos() as usize, Ordering::Relaxed);
        // Seed behaviour: one (level, mode) entry per task into the
        // mutex-guarded group log.
        group.log.lock().unwrap().push((100, 0));
        // Completion: successor list is mutex-guarded.
        let successors = {
            let mut successors = job.successors.lock().unwrap();
            job.completed.store(true, Ordering::Release);
            std::mem::take(&mut *successors)
        };
        drop(successors);
        group.outstanding.fetch_sub(1, Ordering::AcqRel);
        inner.outstanding.fetch_sub(1, Ordering::AcqRel);
        // Seed behaviour: broadcast on every completion.
        let _guard = inner.completion_mutex.lock().unwrap();
        inner.completion.notify_all();
    }

    fn worker_loop(inner: &Arc<Inner>, index: usize) {
        loop {
            if let Some(job) = pop_any(inner, index) {
                execute(inner, job);
                continue;
            }
            if inner.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Seed behaviour: 1 ms idle polling loop, preceded by an
            // O(workers) queue-length scan under the queue locks.
            let total: usize = inner.queues.iter().map(|q| q.lock().unwrap().len()).sum();
            let guard = inner.work_mutex.lock().unwrap();
            if total == 0 && !inner.shutdown.load(Ordering::Acquire) {
                let _ = inner
                    .work_available
                    .wait_timeout(guard, Duration::from_millis(1));
            }
        }
    }
}

struct Config {
    workers: usize,
    tasks: usize,
    reps: usize,
    out: String,
    write_out: bool,
    only: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        workers: 8,
        tasks: 100_000,
        reps: 3,
        out: "BENCH_sched.json".to_string(),
        write_out: true,
        only: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number")
            }
            "--tasks" => {
                config.tasks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tasks needs a number")
            }
            "--reps" => {
                config.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number")
            }
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--only" => {
                config.only = Some(args.next().expect("--only needs baseline|lockfree"));
                config.write_out = false;
            }
            "--smoke" => {
                config.tasks = 5_000;
                config.reps = 1;
                config.write_out = false;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: sched-overhead [--workers N] [--tasks N] [--reps N] [--smoke] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// Best (highest) throughput over `reps` runs of `run`, in tasks/second.
fn best_throughput(tasks: usize, reps: usize, mut run: impl FnMut() -> Duration) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..reps {
        let elapsed = run().as_secs_f64().max(1e-9);
        best = best.max(tasks as f64 / elapsed);
    }
    best
}

fn bench_baseline(workers: usize, tasks: usize) -> Duration {
    let scheduler = baseline::MutexScheduler::new(workers);
    let start = Instant::now();
    for _ in 0..tasks {
        scheduler.spawn(Box::new(|| {}));
    }
    scheduler.wait_all();
    start.elapsed()
}

fn bench_runtime(workers: usize, tasks: usize, policy: Policy) -> Duration {
    let rt = Runtime::builder().workers(workers).policy(policy).build();
    let group = rt.create_group("bench", 0.5);
    let start = Instant::now();
    match policy {
        Policy::SignificanceAgnostic => {
            for _ in 0..tasks {
                rt.task(|| {}).spawn();
            }
            rt.wait_all();
        }
        _ => {
            for i in 0..tasks {
                rt.task(|| {})
                    .approx(|| {})
                    .significance(((i % 9) + 1) as f64 / 10.0)
                    .group(&group)
                    .spawn();
            }
            rt.wait_group(&group);
        }
    }
    start.elapsed()
}

fn main() {
    let config = parse_args();
    let Config {
        workers,
        tasks,
        reps,
        ..
    } = config;
    eprintln!(
        "sched-overhead: {tasks} empty tasks, {workers} workers, best of {reps} \
         (host has {} cores)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Isolation mode for profiling one scheduler at a time.
    if let Some(only) = &config.only {
        let throughput = match only.as_str() {
            "baseline" => best_throughput(tasks, reps, || bench_baseline(workers, tasks)),
            "lockfree" => best_throughput(tasks, reps, || {
                bench_runtime(workers, tasks, Policy::SignificanceAgnostic)
            }),
            other => {
                eprintln!("--only expects baseline|lockfree, got {other}");
                std::process::exit(2);
            }
        };
        println!("{only}: {throughput:.0} tasks/s");
        return;
    }

    let baseline = best_throughput(tasks, reps, || bench_baseline(workers, tasks));
    eprintln!("  mutex baseline      : {baseline:>12.0} tasks/s");
    let agnostic = best_throughput(tasks, reps, || {
        bench_runtime(workers, tasks, Policy::SignificanceAgnostic)
    });
    eprintln!("  lock-free agnostic  : {agnostic:>12.0} tasks/s");
    let gtb = best_throughput(tasks, reps, || {
        bench_runtime(workers, tasks, Policy::Gtb { buffer_size: 32 })
    });
    eprintln!("  lock-free GTB(32)   : {gtb:>12.0} tasks/s");
    let lqh = best_throughput(tasks, reps, || bench_runtime(workers, tasks, Policy::Lqh));
    eprintln!("  lock-free LQH       : {lqh:>12.0} tasks/s");

    let speedup = agnostic / baseline;
    eprintln!("  speedup (agnostic vs mutex baseline): {speedup:.2}x");

    // Worker-count scaling curve for the lock-free agnostic configuration.
    let scaling: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| {
            let throughput = best_throughput(tasks, reps, || {
                bench_runtime(w, tasks, Policy::SignificanceAgnostic)
            });
            eprintln!("  lock-free @ {w} workers: {throughput:>12.0} tasks/s");
            (w, throughput)
        })
        .collect();
    let scaling_json = scaling
        .iter()
        .map(|(w, t)| {
            format!("    {{ \"workers\": {w}, \"lockfree_agnostic_tasks_per_sec\": {t:.0} }}")
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"benchmark\": \"sched_overhead\",\n  \"description\": \"spawn+execute+taskwait \
         throughput for empty-body tasks (pure scheduler overhead)\",\n  \"workers\": {workers},\n  \
         \"tasks\": {tasks},\n  \"reps\": {reps},\n  \"host_cores\": {cores},\n  \
         \"baseline_mutex_tasks_per_sec\": {baseline:.0},\n  \
         \"lockfree_agnostic_tasks_per_sec\": {agnostic:.0},\n  \
         \"lockfree_gtb32_tasks_per_sec\": {gtb:.0},\n  \
         \"lockfree_lqh_tasks_per_sec\": {lqh:.0},\n  \
         \"speedup_agnostic_vs_baseline\": {speedup:.2},\n  \
         \"scaling\": [\n{scaling_json}\n  ],\n  \
         \"metadata\": {{\n    \"note\": \"produced inside a {cores}-core container: worker \
         counts beyond the physical core count measure scheduler overhead under \
         oversubscription, not parallel speedup; regenerate on a many-core host for a true \
         scaling curve\"\n  }}\n}}\n",
        cores = std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    if config.write_out {
        std::fs::write(&config.out, &json).expect("failed to write results");
        eprintln!("  wrote {}", config.out);
    }
    println!("{json}");
}

//! Scheduler hot-path overhead benchmark.
//!
//! Measures spawn + execute + taskwait throughput for empty-body tasks —
//! pure scheduler overhead, the quantity the paper's Figure 4 compares
//! against OpenMP — for two scheduler designs:
//!
//! * **mutex baseline**: a faithful, self-contained re-implementation of the
//!   seed scheduler's hot path — `Mutex<VecDeque>` per-worker queues, a
//!   condvar broadcast to *all* workers on every enqueue, a second condvar
//!   broadcast on every completion, a 1 ms idle polling loop, and a
//!   mutex-guarded per-task statistics log;
//! * **lock-free runtime**: the actual `sig-core` runtime (Chase–Lev-style
//!   stealable deques + MPMC inboxes, targeted park/unpark wakeups,
//!   event-count barriers, sharded statistics).
//!
//! Results are written as JSON (default `BENCH_sched.json`) so the speedup
//! is committed alongside the code that produced it.
//!
//! ```text
//! sched-overhead [--workers N] [--tasks N] [--reps N] [--smoke] [--out PATH]
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sig_core::{BatchTask, Policy, Runtime};

/// Faithful reduction of the seed scheduler's hot path (see module docs).
///
/// Every per-task cost of the seed design is reproduced, operation for
/// operation: the two mutex-guarded body slots (both locked again at cleanup),
/// the unconditional dependence-tracker lock at spawn, the registry RwLock
/// lookup per execution, the mutex-guarded successor list, the per-execution
/// statistics-log mutex, the enqueue broadcast, the completion broadcast, and
/// the 1 ms / 5 ms polling waits.
mod baseline {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicU8;
    use std::sync::RwLock;

    type Body = Box<dyn FnOnce() + Send + 'static>;

    /// Mirrors the seed's `Task`: mutex body slots + atomic flags.
    struct Job {
        accurate: Mutex<Option<Body>>,
        approximate: Mutex<Option<Body>>,
        mode: AtomicU8,
        pending_deps: AtomicUsize,
        released: AtomicBool,
        enqueued: AtomicBool,
        completed: AtomicBool,
        successors: Mutex<Vec<Arc<Job>>>,
    }

    /// Mirrors the seed's per-group state the execute path touched.
    struct Group {
        outstanding: AtomicUsize,
        log: Mutex<Vec<(u8, u8)>>,
    }

    struct Inner {
        queues: Vec<Mutex<VecDeque<Arc<Job>>>>,
        groups: RwLock<Vec<Arc<Group>>>,
        tracker: Mutex<HashMap<u64, u64>>,
        next: AtomicUsize,
        outstanding: AtomicUsize,
        completed: AtomicUsize,
        accurate: AtomicUsize,
        busy_nanos: AtomicUsize,
        shutdown: AtomicBool,
        work_mutex: Mutex<()>,
        work_available: Condvar,
        completion_mutex: Mutex<()>,
        completion: Condvar,
    }

    pub struct MutexScheduler {
        inner: Arc<Inner>,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl MutexScheduler {
        pub fn new(workers: usize) -> Self {
            let group = Arc::new(Group {
                outstanding: AtomicUsize::new(0),
                log: Mutex::new(Vec::new()),
            });
            let inner = Arc::new(Inner {
                queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                groups: RwLock::new(vec![group]),
                tracker: Mutex::new(HashMap::new()),
                next: AtomicUsize::new(0),
                outstanding: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                accurate: AtomicUsize::new(0),
                busy_nanos: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                work_mutex: Mutex::new(()),
                work_available: Condvar::new(),
                completion_mutex: Mutex::new(()),
                completion: Condvar::new(),
            });
            let handles = (0..workers)
                .map(|index| {
                    let inner = inner.clone();
                    std::thread::spawn(move || worker_loop(&inner, index))
                })
                .collect();
            MutexScheduler {
                inner,
                workers: handles,
            }
        }

        pub fn spawn(&self, body: Body) {
            let inner = &self.inner;
            let job = Arc::new(Job {
                accurate: Mutex::new(Some(body)),
                approximate: Mutex::new(None),
                mode: AtomicU8::new(0),
                pending_deps: AtomicUsize::new(0),
                released: AtomicBool::new(false),
                enqueued: AtomicBool::new(false),
                completed: AtomicBool::new(false),
                successors: Mutex::new(Vec::new()),
            });
            inner.outstanding.fetch_add(1, Ordering::AcqRel);
            inner.groups.read().unwrap()[0]
                .outstanding
                .fetch_add(1, Ordering::AcqRel);
            // Seed behaviour: the dependence tracker is locked on every
            // spawn, footprint or not.
            job.pending_deps.store(1, Ordering::Release);
            drop(inner.tracker.lock().unwrap());
            // Agnostic policy: decide accurate, release, enqueue.
            let _ = job
                .mode
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
            job.released.swap(true, Ordering::AcqRel);
            job.pending_deps.fetch_sub(1, Ordering::AcqRel);
            if !job.enqueued.swap(true, Ordering::AcqRel) {
                let slot = inner.next.fetch_add(1, Ordering::Relaxed) % inner.queues.len();
                inner.queues[slot].lock().unwrap().push_back(job);
                // Seed behaviour: broadcast to every sleeper on every enqueue.
                let _guard = inner.work_mutex.lock().unwrap();
                inner.work_available.notify_all();
            }
        }

        pub fn wait_all(&self) {
            // Seed behaviour: 5 ms polling re-check on the completion condvar.
            let inner = &self.inner;
            let mut guard = inner.completion_mutex.lock().unwrap();
            while inner.outstanding.load(Ordering::Acquire) != 0 {
                let (g, _) = inner
                    .completion
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap();
                guard = g;
            }
        }
    }

    impl Drop for MutexScheduler {
        fn drop(&mut self) {
            self.wait_all();
            self.inner.shutdown.store(true, Ordering::Release);
            {
                let _guard = self.inner.work_mutex.lock().unwrap();
                self.inner.work_available.notify_all();
            }
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }

    fn pop_any(inner: &Inner, index: usize) -> Option<Arc<Job>> {
        let n = inner.queues.len();
        if let Some(job) = inner.queues[index].lock().unwrap().pop_front() {
            return Some(job);
        }
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) = inner.queues[victim].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn execute(inner: &Inner, job: Arc<Job>) {
        // Seed behaviour: group state is fetched from the registry (RwLock)
        // for every executed task.
        let group = inner.groups.read().unwrap()[0].clone();
        let accurate = job.mode.load(Ordering::Acquire) == 1;
        let start = Instant::now();
        if accurate {
            if let Some(body) = job.accurate.lock().unwrap().take() {
                body();
            }
        }
        let busy = start.elapsed();
        // Seed behaviour: both body slots locked again to drop the loser.
        drop(job.accurate.lock().unwrap().take());
        drop(job.approximate.lock().unwrap().take());
        inner.completed.fetch_add(1, Ordering::Relaxed);
        inner.accurate.fetch_add(1, Ordering::Relaxed);
        inner
            .busy_nanos
            .fetch_add(busy.as_nanos() as usize, Ordering::Relaxed);
        // Seed behaviour: one (level, mode) entry per task into the
        // mutex-guarded group log.
        group.log.lock().unwrap().push((100, 0));
        // Completion: successor list is mutex-guarded.
        let successors = {
            let mut successors = job.successors.lock().unwrap();
            job.completed.store(true, Ordering::Release);
            std::mem::take(&mut *successors)
        };
        drop(successors);
        group.outstanding.fetch_sub(1, Ordering::AcqRel);
        inner.outstanding.fetch_sub(1, Ordering::AcqRel);
        // Seed behaviour: broadcast on every completion.
        let _guard = inner.completion_mutex.lock().unwrap();
        inner.completion.notify_all();
    }

    fn worker_loop(inner: &Arc<Inner>, index: usize) {
        loop {
            if let Some(job) = pop_any(inner, index) {
                execute(inner, job);
                continue;
            }
            if inner.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Seed behaviour: 1 ms idle polling loop, preceded by an
            // O(workers) queue-length scan under the queue locks.
            let total: usize = inner.queues.iter().map(|q| q.lock().unwrap().len()).sum();
            let guard = inner.work_mutex.lock().unwrap();
            if total == 0 && !inner.shutdown.load(Ordering::Acquire) {
                let _ = inner
                    .work_available
                    .wait_timeout(guard, Duration::from_millis(1));
            }
        }
    }
}

struct Config {
    workers: usize,
    tasks: usize,
    reps: usize,
    out: String,
    write_out: bool,
    only: Option<String>,
    /// Regression-gate mode: path of a committed BENCH_sched.json whose
    /// `per_task_spawn_tasks_per_sec` the current batched throughput must
    /// not regress below (loose 0.8× threshold for container noise).
    check: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        workers: 8,
        tasks: 100_000,
        reps: 3,
        out: "BENCH_sched.json".to_string(),
        write_out: true,
        only: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number")
            }
            "--tasks" => {
                config.tasks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tasks needs a number")
            }
            "--reps" => {
                config.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number")
            }
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--only" => {
                config.only = Some(args.next().expect("--only needs baseline|lockfree"));
                config.write_out = false;
            }
            "--check" => {
                config.check = Some(args.next().expect("--check needs a committed JSON path"));
                config.write_out = false;
            }
            "--smoke" => {
                config.tasks = 5_000;
                config.reps = 1;
                config.write_out = false;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: sched-overhead [--workers N] [--tasks N] [--reps N] [--smoke] \
                     [--out PATH] [--check COMMITTED.json]"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// Best (highest) throughput over `reps` runs of `run`, in tasks/second.
fn best_throughput(tasks: usize, reps: usize, mut run: impl FnMut() -> Duration) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..reps {
        let elapsed = run().as_secs_f64().max(1e-9);
        best = best.max(tasks as f64 / elapsed);
    }
    best
}

fn bench_baseline(workers: usize, tasks: usize) -> Duration {
    let scheduler = baseline::MutexScheduler::new(workers);
    let start = Instant::now();
    for _ in 0..tasks {
        scheduler.spawn(Box::new(|| {}));
    }
    scheduler.wait_all();
    start.elapsed()
}

/// Master-side **injection** time for per-task spawns: how long the spawn
/// loop itself takes while the workers drain concurrently. This is the
/// quantity the batched pipeline attacks — per-task wake checks, counter
/// bumps and statistics records — so the per-task and batched series are
/// both measured this way (the post-loop barrier is excluded).
fn bench_injection_per_task(workers: usize, tasks: usize) -> Duration {
    let rt = Runtime::builder()
        .workers(workers)
        .policy(Policy::SignificanceAgnostic)
        .build();
    let start = Instant::now();
    for _ in 0..tasks {
        rt.task(|| {}).spawn();
    }
    let injected = start.elapsed();
    rt.wait_all();
    injected
}

/// Master-side injection time for `spawn_batch` at the given batch size.
/// The batched enqueue path is lock-free end to end: bounded MPMC inboxes
/// with an unbounded lock-free MPSC spill behind them — zero mutex
/// acquisitions even when the flood outruns the workers.
fn bench_injection_batched(workers: usize, tasks: usize, batch: usize) -> Duration {
    let rt = Runtime::builder()
        .workers(workers)
        .policy(Policy::SignificanceAgnostic)
        .build();
    let start = Instant::now();
    let mut remaining = tasks;
    while remaining > 0 {
        let n = remaining.min(batch);
        rt.spawn_batch((0..n).map(|_| BatchTask::new(|| {})));
        remaining -= n;
    }
    let injected = start.elapsed();
    rt.wait_all();
    injected
}

/// Extract a `"field": 12345` number from a committed JSON report (the
/// vendored serde shim has no deserialiser; the reports are flat enough for
/// a string scan).
fn extract_json_number(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Regression gate for CI: the batched pipeline must not fall below the
/// *per-task* spawn throughput (loose 0.8× threshold). The floor is the
/// **minimum** of the committed per-task number and a per-task measurement
/// taken in the same process: on a host slower than the one that produced
/// the committed file the same-run number keeps the gate honest (absolute
/// cross-host comparisons are noise — see the report's `noise_note`), while
/// on a faster host the committed number remains an absolute floor a real
/// regression cannot hide behind. Exits non-zero on regression.
fn run_check(config: &Config, committed_path: &str) -> ! {
    let committed = std::fs::read_to_string(committed_path)
        .unwrap_or_else(|e| panic!("cannot read {committed_path}: {e}"));
    let per_task_committed = extract_json_number(&committed, "per_task_spawn_tasks_per_sec")
        .expect("committed report lacks per_task_spawn_tasks_per_sec");
    // The committed report must carry the core count it was produced on: a
    // many-core regeneration must not silently compare against 1-core
    // baselines (or vice versa). On a mismatch the committed absolute floor
    // is meaningless, so the gate falls back to the same-run floor alone.
    let committed_cores = extract_json_number(&committed, "cores")
        .expect("committed report lacks the cores field -- regenerate BENCH_sched.json")
        as usize;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Best-of-3 floor even under `--smoke` (reps = 1): a single measurement
    // is one preemption spike away from a false FAIL on a shared runner.
    let check_reps = config.reps.max(3);
    let per_task_now = best_throughput(config.tasks, check_reps, || {
        bench_injection_per_task(config.workers, config.tasks)
    });
    let batched_now = best_throughput(config.tasks, check_reps, || {
        bench_injection_batched(config.workers, config.tasks, 256)
    });
    let floor = if committed_cores == host_cores {
        per_task_committed.min(per_task_now)
    } else {
        eprintln!(
            "sched-overhead check: committed report is from a {committed_cores}-core host, \
             this is a {host_cores}-core host -- absolute committed numbers are not \
             comparable, gating on the same-run per-task floor only"
        );
        per_task_now
    };
    let threshold = 0.8 * floor;
    eprintln!(
        "sched-overhead check: batched(256) now {batched_now:.0} tasks/s vs per-task \
         {per_task_now:.0} now / {per_task_committed:.0} committed (threshold {threshold:.0})"
    );
    let mut failed = false;
    if batched_now < threshold {
        eprintln!("FAIL: batched spawn regressed below 0.8x the per-task spawn throughput");
        failed = true;
    } else {
        eprintln!("OK: batched spawn holds the per-task floor");
    }

    // Robustness-inert guard: a runtime with the overload controller armed
    // (watermarks out of reach) must stay within 5% of the plain runtime's
    // throughput — the always-on bookkeeping (overload ticks, cancellation
    // checks, outcome accounting) is near-free when no robustness feature
    // fires. Per-task clauses are priced separately by design: `deadline(..)`
    // costs one clock read and `cancel_token(..)` one refcount at spawn,
    // paid only by tasks that opt in. The two sides are measured in strict
    // alternation (plain, robust, plain, robust, ...) and each keeps its
    // best rep, so slow drift of the host (frequency, co-tenants) hits both
    // sides equally instead of landing in the ratio. The gate statistic is
    // the *median of per-pair ratios*: the two runs of a pair share the
    // same load window, so their ratio is far tighter than any comparison
    // across the whole session, and the median discards pairs a preemption
    // spike landed in. A ~5% gate also needs loops long enough that
    // scheduler jitter stays sub-percent, regardless of any `--smoke`
    // shrink, so the gate sets its own floor on both knobs.
    let gate_tasks = config.tasks.max(20_000);
    let mut plain_best = 0.0f64;
    let mut robust_best = 0.0f64;
    let mut ratios = Vec::new();
    for pair in 0..config.reps.max(10) {
        // Alternate who goes first so any systematic first/second-slot bias
        // (allocator warmth, branch predictors, teardown echo) cancels.
        let (p, r) = if pair.is_multiple_of(2) {
            let p = bench_runtime(config.workers, gate_tasks, Policy::SignificanceAgnostic);
            let r = bench_runtime_robust_inert(config.workers, gate_tasks);
            (p, r)
        } else {
            let r = bench_runtime_robust_inert(config.workers, gate_tasks);
            let p = bench_runtime(config.workers, gate_tasks, Policy::SignificanceAgnostic);
            (p, r)
        };
        let p = gate_tasks as f64 / p.as_secs_f64();
        let r = gate_tasks as f64 / r.as_secs_f64();
        plain_best = plain_best.max(p);
        robust_best = robust_best.max(r);
        ratios.push(r / p);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[ratios.len() / 2];
    let (plain, robust) = (plain_best, robust_best);
    eprintln!(
        "sched-overhead check: robust-inert best {robust:.0} tasks/s vs plain best {plain:.0} \
         tasks/s (median pairwise {ratio:.3}x, threshold 0.95x)"
    );
    if ratio < 0.95 {
        eprintln!("FAIL: inert robustness bookkeeping costs more than 5%");
        failed = true;
    } else {
        eprintln!("OK: inert robustness bookkeeping within 5%");
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Full spawn+execute+taskwait throughput with the robustness layer armed
/// but inert: queue and deadline-miss watermarks configured far out of
/// reach, so every task pays the always-on bookkeeping (amortised overload
/// ticks on spawn and execute, the cancellation and shed checks, the
/// deadline branch, outcome accounting) without any feature firing.
/// Compared against the plain agnostic runtime from the same run, this
/// bounds the cost of that bookkeeping for tasks that use no robustness
/// clause.
fn bench_runtime_robust_inert(workers: usize, tasks: usize) -> Duration {
    let rt = Runtime::builder()
        .workers(workers)
        .policy(Policy::SignificanceAgnostic)
        .queue_watermark(1 << 40)
        .deadline_miss_watermark(1.0)
        .build();
    let start = Instant::now();
    for _ in 0..tasks {
        rt.task(|| {}).spawn();
    }
    rt.wait_all();
    start.elapsed()
}

fn bench_runtime(workers: usize, tasks: usize, policy: Policy) -> Duration {
    let rt = Runtime::builder().workers(workers).policy(policy).build();
    let group = rt.create_group("bench", 0.5);
    let start = Instant::now();
    match policy {
        Policy::SignificanceAgnostic => {
            for _ in 0..tasks {
                rt.task(|| {}).spawn();
            }
            rt.wait_all();
        }
        _ => {
            for i in 0..tasks {
                rt.task(|| {})
                    .approx(|| {})
                    .significance(((i % 9) + 1) as f64 / 10.0)
                    .group(&group)
                    .spawn();
            }
            rt.wait_group(&group);
        }
    }
    start.elapsed()
}

fn main() {
    let config = parse_args();
    let Config {
        workers,
        tasks,
        reps,
        ..
    } = config;
    eprintln!(
        "sched-overhead: {tasks} empty tasks, {workers} workers, best of {reps} \
         (host has {} cores)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // CI regression gate: batched spawn vs the committed per-task number.
    if let Some(committed) = config.check.clone() {
        run_check(&config, &committed);
    }

    // Isolation mode for profiling one scheduler at a time.
    if let Some(only) = &config.only {
        let throughput = match only.as_str() {
            "baseline" => best_throughput(tasks, reps, || bench_baseline(workers, tasks)),
            "lockfree" => best_throughput(tasks, reps, || {
                bench_runtime(workers, tasks, Policy::SignificanceAgnostic)
            }),
            "per-task" => best_throughput(tasks, reps, || bench_injection_per_task(workers, tasks)),
            batched if batched.starts_with("batched") => {
                let batch: usize = batched["batched".len()..]
                    .parse()
                    .expect("--only batchedN needs a numeric batch size");
                best_throughput(tasks, reps, || {
                    bench_injection_batched(workers, tasks, batch)
                })
            }
            other => {
                eprintln!("--only expects baseline|lockfree|per-task|batchedN, got {other}");
                std::process::exit(2);
            }
        };
        println!("{only}: {throughput:.0} tasks/s");
        return;
    }

    let baseline = best_throughput(tasks, reps, || bench_baseline(workers, tasks));
    eprintln!("  mutex baseline      : {baseline:>12.0} tasks/s");
    let agnostic = best_throughput(tasks, reps, || {
        bench_runtime(workers, tasks, Policy::SignificanceAgnostic)
    });
    eprintln!("  lock-free agnostic  : {agnostic:>12.0} tasks/s");
    let gtb = best_throughput(tasks, reps, || {
        bench_runtime(workers, tasks, Policy::Gtb { buffer_size: 32 })
    });
    eprintln!("  lock-free GTB(32)   : {gtb:>12.0} tasks/s");
    let lqh = best_throughput(tasks, reps, || bench_runtime(workers, tasks, Policy::Lqh));
    eprintln!("  lock-free LQH       : {lqh:>12.0} tasks/s");

    let speedup = agnostic / baseline;
    eprintln!("  speedup (agnostic vs mutex baseline): {speedup:.2}x");

    // Injection (master-side spawn loop) throughput: per-task vs batched.
    // Short loops, more reps: a multi-tens-of-ms loop on the 1-core
    // container gets preempted by the concurrently draining workers and
    // measures scheduling luck instead of master-side cost; ~20k-task loops
    // mostly fit a scheduler quantum and best-of picks clean windows.
    let inject_tasks = tasks.min(20_000);
    let inject_reps = (reps * 2).max(4);
    let per_task_spawn = best_throughput(inject_tasks, inject_reps, || {
        bench_injection_per_task(workers, inject_tasks)
    });
    eprintln!("  per-task spawn      : {per_task_spawn:>12.0} tasks/s (injection only)");
    let batched_spawn: Vec<(usize, f64)> = [16usize, 64, 256]
        .iter()
        .map(|&batch| {
            let throughput = best_throughput(inject_tasks, inject_reps, || {
                bench_injection_batched(workers, inject_tasks, batch)
            });
            eprintln!("  batched spawn @ {batch:>3} : {throughput:>12.0} tasks/s (injection only)");
            (batch, throughput)
        })
        .collect();
    let batched_256 = batched_spawn
        .iter()
        .find(|(batch, _)| *batch == 256)
        .map(|(_, t)| *t)
        .unwrap_or(0.0);
    let batched_speedup = batched_256 / per_task_spawn;
    eprintln!("  batched(256) vs per-task spawn: {batched_speedup:.2}x");
    let batched_json = batched_spawn
        .iter()
        .map(|(batch, t)| format!("    {{ \"batch\": {batch}, \"tasks_per_sec\": {t:.0} }}"))
        .collect::<Vec<_>>()
        .join(",\n");

    // Worker-count scaling curve for the lock-free agnostic configuration.
    let scaling: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| {
            let throughput = best_throughput(tasks, reps, || {
                bench_runtime(w, tasks, Policy::SignificanceAgnostic)
            });
            eprintln!("  lock-free @ {w} workers: {throughput:>12.0} tasks/s");
            (w, throughput)
        })
        .collect();
    let scaling_json = scaling
        .iter()
        .map(|(w, t)| {
            format!("    {{ \"workers\": {w}, \"lockfree_agnostic_tasks_per_sec\": {t:.0} }}")
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"benchmark\": \"sched_overhead\",\n  \"description\": \"spawn+execute+taskwait \
         throughput for empty-body tasks (pure scheduler overhead)\",\n  \"workers\": {workers},\n  \
         \"tasks\": {tasks},\n  \"reps\": {reps},\n  \"cores\": {cores},\n  \
         \"baseline_mutex_tasks_per_sec\": {baseline:.0},\n  \
         \"lockfree_agnostic_tasks_per_sec\": {agnostic:.0},\n  \
         \"lockfree_gtb32_tasks_per_sec\": {gtb:.0},\n  \
         \"lockfree_lqh_tasks_per_sec\": {lqh:.0},\n  \
         \"speedup_agnostic_vs_baseline\": {speedup:.2},\n  \
         \"per_task_spawn_tasks_per_sec\": {per_task_spawn:.0},\n  \
         \"batched_spawn\": [\n{batched_json}\n  ],\n  \
         \"batched_256_speedup_vs_per_task_spawn\": {batched_speedup:.2},\n  \
         \"scaling\": [\n{scaling_json}\n  ],\n  \
         \"metadata\": {{\n    \"note\": \"produced inside a {cores}-core container: worker \
         counts beyond the physical core count measure scheduler overhead under \
         oversubscription, not parallel speedup; regenerate on a many-core host for a true \
         scaling curve\",\n    \"injection_note\": \"per_task_spawn and batched_spawn measure \
         the master-side spawn loop only (workers drain concurrently), over \
         {inject_tasks}-task loops best-of-{inject_reps} — short enough that the 1-core \
         scheduler rarely preempts the master mid-loop; the batched enqueue path is \
         lock-free end to end (bounded MPMC inbox + unbounded MPSC spill with one-XCHG \
         chain splicing), zero mutex acquisitions\",\n    \"noise_note\": \"absolute \
         numbers move with container load between runs; compare against \
         baseline_mutex_tasks_per_sec (unchanged seed-design code) from the same run, not \
         across committed revisions\"\n  }}\n}}\n",
        cores = std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    if config.write_out {
        std::fs::write(&config.out, &json).expect("failed to write results");
        eprintln!("  wrote {}", config.out);
    }
    println!("{json}");
}

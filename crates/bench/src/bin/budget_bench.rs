//! Closed-loop energy-budget benchmark: does the online [`BudgetController`]
//! actually land on its target, and at what quality?
//!
//! # What runs
//!
//! A deterministic **virtual-time replay** (no wall clock, no threads — the
//! numbers reproduce bit-for-bit on any host): a fixed arrival schedule of
//! tasks with low-discrepancy significances is dealt round-robin across
//! simulated workers and driven through the runtime's real [`ExecutionEnv`]
//! dispatch/record/report accounting under a [`SignificanceLadderGovernor`].
//! Virtual time advances on a fixed control-interval grid; every interval the
//! replay decides each task's accuracy GTB-style (the most significant tasks
//! run accurately until the effective ratio is met), executes the interval's
//! tasks, and — in the budgeted configuration — feeds the cumulative
//! [`EnergyReading`] to a [`BudgetController`] whose setpoint re-targets the
//! next interval: `ratio_scale` scales the accuracy threshold,
//! `frequency_cap` clamps approximate dispatches via the env's re-targetable
//! dispatch cap.
//!
//! Two power models, mirroring the strategy series in `energy-bench`. The
//! budgeted configuration pairs the controller with the right execution
//! strategy per package (see [`Scenario`]):
//!
//! * **dynamic-heavy** — cubic-ish `P ∝ f·V²` exponent, small static share.
//!   Stretching pays, so the budget loop keeps the ladder and engages *both*
//!   knobs, shaped (`min_ratio_scale`) to exhaust the quality-free frequency
//!   cap before cutting deep into the accurate ratio.
//! * **static-heavy** — near-linear exponent, leakage-dominated. Stretching
//!   approximate work trades cheap sleep for expensive dilated busy time, so
//!   the budgeted run **races to idle** with ratio-only actuation
//!   (`cap_floor = 1.0`) — the closed-loop counterpart of the paper's
//!   race-to-idle insight.
//!
//! # The comparison
//!
//! For each model the **open-loop ladder** baseline runs the same schedule at
//! a fixed accurate ratio (no controller) and yields `J_open` joules at
//! quality `Q_open`. The **budgeted** run starts from ratio 1.0 (maximum
//! quality) with a `TotalJoules` budget of `budget_fraction × J_open` over
//! the same horizon (the fraction is 1.0 on dynamic-heavy; 0.95 on
//! static-heavy, where the full open-loop budget would buy all-accurate
//! racing outright and never bind), and must *converge*: cumulative spend
//! within the tolerance band of the budget, at quality no worse than the
//! open-loop ladder bought with at least as many joules. Quality is the
//! significance-weighted delivered quality (accurate task = 1.0, approximate
//! = `APPROX_QUALITY`).
//!
//! Results are written as JSON (default `BENCH_budget.json`), including a
//! spend-trajectory trace at quarter points so convergence is visible in the
//! committed artifact.
//!
//! ```text
//! budget-bench [--workers N] [--intervals N] [--smoke] [--out PATH]
//!              [--check COMMITTED.json]
//! ```
//!
//! `--check` mode re-runs the replay and fails (non-zero exit) if the
//! budgeted spend leaves the convergence band on either model, or if the
//! budgeted quality drops more than 20% below the committed quality — the
//! budget counterpart of the other benches' regression gates.

use std::sync::Arc;

use sig_core::{
    BudgetConfig, BudgetController, BudgetTarget, DispatchContext, EnergyReading, ExecutionEnv,
    ExecutionMode, Governor, Policy, RaceToIdleGovernor, Significance, SignificanceLadderGovernor,
};
use sig_energy::{FrequencyScale, PowerModel, SleepState, TransitionCost};
use std::time::Duration;

/// Ladder depth shared with the energy-bench strategy series.
const LADDER_STEPS: usize = 4;
/// Ladder floor shared with the energy-bench strategy series.
const LADDER_FLOOR: f64 = 0.4;
/// Nominal busy time of one accurate task.
const ACCURATE_TASK_SECONDS: f64 = 40e-6;
/// Nominal busy time of one approximate task (a third of the work).
const APPROX_TASK_SECONDS: f64 = ACCURATE_TASK_SECONDS / 3.0;
/// Delivered quality of an approximate result, relative to accurate.
const APPROX_QUALITY: f64 = 0.5;
/// Tasks arriving per control interval.
const INTERVAL_TASKS: usize = 200;
/// Virtual length of one control interval. Sized so even a fully-dilated
/// all-accurate interval fits inside `workers × interval` capacity.
const INTERVAL_SECONDS: f64 = 6e-3;
// The open-loop baseline accurate ratio is per scenario (`Scenario::
// open_ratio`): it must price a budget the closed loop actually has to work
// against. On static-heavy, racing to idle is so much cheaper than the
// ladder that a ratio-0.5 ladder budget would not even bind.
/// Fractional convergence band asserted on the budgeted spend.
const CONVERGENCE_BAND: f64 = 0.10;
/// Proportional gain handed to the budget loop (the library default). The
/// replay's plant responds within one control interval, so the gain trades
/// ramp length against limit-cycling around the equilibrium ratio — both
/// slower and hotter settings lose quality (the long transient is repaid at
/// a bad exchange rate; oscillation pays a Jensen penalty on the concave
/// quality curve).
const BUDGET_GAIN: f64 = 0.25;
/// DVFS transition cost charged in the replay (10 µs stall, 20 µJ).
const REPLAY_TRANSITION: TransitionCost = TransitionCost {
    latency_seconds: 10e-6,
    energy_joules: 20e-6,
};

struct Config {
    workers: usize,
    intervals: usize,
    out: String,
    write_out: bool,
    check: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        workers: 4,
        intervals: 200,
        out: "BENCH_budget.json".to_string(),
        write_out: true,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--workers" => config.workers = num("--workers") as usize,
            "--intervals" => config.intervals = num("--intervals") as usize,
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--check" => {
                config.check = Some(args.next().expect("--check needs a committed JSON path"));
            }
            "--smoke" => {
                config.intervals = 50;
                config.write_out = false;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: budget-bench [--workers N] [--intervals N] [--smoke] [--out PATH] \
                     [--check COMMITTED.json]"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// One power-model scenario (mirrors the energy-bench strategy series).
///
/// The budgeted configuration composes the controller with the *right*
/// execution strategy for the package — the closed-loop counterpart of the
/// adaptive-governor insight:
///
/// * dynamic-heavy: keep the ladder, engage the frequency cap, and shape the
///   knobs (`min_ratio_scale`) so austerity exhausts the quality-free
///   frequency knob before it cuts deep into the accurate ratio;
/// * static-heavy: race to idle (approximate work at nominal, slack slept at
///   the deep state) with ratio-only actuation (`cap_floor = 1.0`) — on a
///   leakage-dominated package stretching trades cheap sleep for expensive
///   dilated busy time, so the open-loop ladder's stretching is exactly the
///   waste the closed loop harvests back as quality.
struct Scenario {
    name: &'static str,
    model: PowerModel,
    sleep: SleepState,
    power_exponent: f64,
    /// Frequency-cap floor handed to the budget loop.
    budget_cap_floor: f64,
    /// Ratio-scale floor handed to the budget loop (knob shaping).
    budget_min_ratio_scale: f64,
    /// Whether the budgeted run races to idle instead of riding the ladder.
    budget_races: bool,
    /// Accurate ratio of the open-loop ladder baseline that prices the
    /// budget.
    open_ratio: f64,
    /// Budget as a fraction of the open-loop spend. `1.0` demands the exact
    /// open-loop joules; below `1.0` the closed loop must deliver no-worse
    /// quality with *fewer* joules. static-heavy needs `< 1.0` to bind at
    /// all: the race strategy is so much cheaper than the ladder there that
    /// the full open-loop budget buys all-accurate execution outright.
    budget_fraction: f64,
}

impl Scenario {
    fn dynamic_heavy(workers: usize) -> Scenario {
        Scenario {
            name: "dynamic_heavy",
            model: PowerModel {
                sockets: 1,
                cores_per_socket: workers,
                static_watts_per_socket: 1.0 * workers as f64,
                active_watts_per_core: 6.6,
                idle_watts_per_core: 0.5,
            },
            sleep: SleepState::shallow(),
            power_exponent: 2.4,
            budget_cap_floor: LADDER_FLOOR,
            budget_min_ratio_scale: 0.5,
            budget_races: false,
            open_ratio: 0.5,
            budget_fraction: 1.0,
        }
    }

    fn static_heavy(workers: usize) -> Scenario {
        Scenario {
            name: "static_heavy",
            model: PowerModel {
                sockets: 1,
                cores_per_socket: workers,
                static_watts_per_socket: 4.0 * workers as f64,
                active_watts_per_core: 6.6,
                idle_watts_per_core: 2.0,
            },
            sleep: SleepState::new(0.1, 0.75, 5e-6),
            power_exponent: 1.2,
            budget_cap_floor: 1.0,
            budget_min_ratio_scale: 0.0,
            budget_races: true,
            open_ratio: 0.35,
            budget_fraction: 0.95,
        }
    }

    fn ladder(&self) -> Vec<FrequencyScale> {
        FrequencyScale::ladder(LADDER_STEPS, LADDER_FLOOR)
            .into_iter()
            .map(|s| FrequencyScale::with_exponent(s.ratio(), self.power_exponent))
            .collect()
    }

    /// The governor the budgeted run executes under.
    fn budgeted_governor(&self) -> Arc<dyn Governor> {
        if self.budget_races {
            Arc::new(RaceToIdleGovernor::new(self.ladder()))
        } else {
            Arc::new(SignificanceLadderGovernor::new(self.ladder()))
        }
    }
}

/// Low-discrepancy significance of task `i`: the golden-ratio sequence fills
/// `(0, 1)` uniformly without the quantisation steps of a small level set, so
/// the controller's continuous ratio knob maps to a smooth quality curve.
fn significance_of(i: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    (((i + 1) as f64 * INV_PHI).fract()).clamp(0.02, 0.98)
}

/// Result of one full replay (open-loop or budgeted).
struct ReplayRun {
    reading: EnergyReading,
    quality: f64,
    accurate_tasks: usize,
    total_tasks: usize,
    /// Cumulative joules at each quarter of the horizon (spend trajectory).
    spend_trace: Vec<f64>,
    /// Final austerity (0.0 for the open-loop run).
    final_austerity: f64,
}

/// Drive the fixed arrival schedule through a real `ExecutionEnv` on the
/// virtual interval grid. `budget == None` replays the open-loop ladder at
/// `base_ratio`; with a budget the controller re-targets ratio and dispatch
/// cap every interval from the cumulative reading.
fn run_replay(
    scenario: &Scenario,
    config: &Config,
    governor: Arc<dyn Governor>,
    base_ratio: f64,
    budget: Option<BudgetConfig>,
) -> ReplayRun {
    let env = ExecutionEnv::new(
        scenario.model,
        governor,
        Some(scenario.sleep),
        REPLAY_TRANSITION,
        config.workers,
    );
    let mut controller = budget.map(BudgetController::new);
    let mut ratio_scale = 1.0f64;
    let mut quality_num = 0.0f64;
    let mut quality_den = 0.0f64;
    let mut accurate_tasks = 0usize;
    let mut task_index = 0usize;
    let mut spend_trace = Vec::with_capacity(4);
    let quarter = (config.intervals / 4).max(1);
    for interval in 0..config.intervals {
        let ratio = (base_ratio * ratio_scale).clamp(0.0, 1.0);
        // Uniform significances: the top `ratio` fraction runs accurately.
        let threshold = 1.0 - ratio;
        for slot in 0..INTERVAL_TASKS {
            let significance = significance_of(task_index);
            let accurate = significance >= threshold;
            let worker = slot % config.workers;
            let decision = env.dispatch(
                worker,
                &DispatchContext {
                    worker,
                    significance: Significance::new(significance),
                    accurate,
                    policy: Policy::GtbMaxBuffer,
                    group_ratio: ratio,
                    deadline_pressure: false,
                },
            );
            let (mode, busy, delivered) = if accurate {
                (ExecutionMode::Accurate, ACCURATE_TASK_SECONDS, 1.0)
            } else {
                (
                    ExecutionMode::Approximate,
                    APPROX_TASK_SECONDS,
                    APPROX_QUALITY,
                )
            };
            env.record(worker, mode, Duration::from_secs_f64(busy), decision);
            quality_num += significance * delivered;
            quality_den += significance;
            accurate_tasks += usize::from(accurate);
            task_index += 1;
        }
        let wall = (interval + 1) as f64 * INTERVAL_SECONDS;
        let reading = env.report(wall, config.workers).reading();
        if let Some(controller) = controller.as_mut() {
            let setpoint = controller.observe(wall, &reading);
            ratio_scale = setpoint.ratio_scale;
            env.set_dispatch_cap(setpoint.frequency_cap.clamp(0.05, 1.0));
        }
        if (interval + 1) % quarter == 0 && spend_trace.len() < 4 {
            spend_trace.push(reading.joules);
        }
    }
    let wall = config.intervals as f64 * INTERVAL_SECONDS;
    let reading = env.report(wall, config.workers).reading();
    ReplayRun {
        reading,
        quality: quality_num / quality_den.max(1e-12),
        accurate_tasks,
        total_tasks: task_index,
        spend_trace,
        final_austerity: controller.map_or(0.0, |c| c.setpoint().austerity),
    }
}

/// Open-loop baseline + budgeted closed loop on one scenario.
struct ScenarioResult {
    open: ReplayRun,
    budgeted: ReplayRun,
    budget_joules: f64,
}

impl ScenarioResult {
    /// Signed fractional error of the budgeted spend against the budget.
    fn spend_error(&self) -> f64 {
        (self.budgeted.reading.joules - self.budget_joules) / self.budget_joules
    }
}

fn run_scenario(scenario: &Scenario, config: &Config) -> ScenarioResult {
    let open = run_replay(
        scenario,
        config,
        Arc::new(SignificanceLadderGovernor::new(scenario.ladder())),
        scenario.open_ratio,
        None,
    );
    let budget_joules = scenario.budget_fraction * open.reading.joules;
    let horizon = config.intervals as f64 * INTERVAL_SECONDS;
    let budget = BudgetConfig::new(BudgetTarget::TotalJoules {
        joules: budget_joules,
        horizon_seconds: horizon,
    })
    .tolerance(CONVERGENCE_BAND)
    .gain(BUDGET_GAIN)
    .min_ratio_scale(scenario.budget_min_ratio_scale)
    .cap_floor(scenario.budget_cap_floor);
    let budgeted = run_replay(
        scenario,
        config,
        scenario.budgeted_governor(),
        1.0,
        Some(budget),
    );
    ScenarioResult {
        open,
        budgeted,
        budget_joules,
    }
}

/// The committed invariants of one scenario (deterministic replay: exact).
fn assert_scenario_invariants(name: &str, result: &ScenarioResult) {
    let error = result.spend_error();
    assert!(
        error.abs() <= CONVERGENCE_BAND,
        "{name}: budgeted spend {:.4} J missed the budget {:.4} J by {:.1}% \
         (band ±{:.0}%)",
        result.budgeted.reading.joules,
        result.budget_joules,
        100.0 * error,
        100.0 * CONVERGENCE_BAND,
    );
    assert!(
        result.budgeted.quality >= result.open.quality - 1e-9,
        "{name}: budgeted quality {:.4} fell below the open-loop ladder's {:.4} at equal joules",
        result.budgeted.quality,
        result.open.quality,
    );
}

/// Bit-for-bit determinism: replaying the budgeted configuration twice must
/// reproduce identical joules, quality and austerity.
fn assert_replay_deterministic(scenario: &Scenario, config: &Config) {
    let a = run_scenario(scenario, config);
    let b = run_scenario(scenario, config);
    assert!(
        a.budgeted.reading.joules.to_bits() == b.budgeted.reading.joules.to_bits()
            && a.budgeted.quality.to_bits() == b.budgeted.quality.to_bits()
            && a.budgeted.final_austerity.to_bits() == b.budgeted.final_austerity.to_bits(),
        "{}: budgeted replay is not bit-deterministic",
        scenario.name
    );
}

/// Minimal extractor for `"key": number` in the committed report (the
/// vendored serde shim has no deserializer).
fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The nth occurrence variant of [`extract_json_number`], scoped to the text
/// after `section` first appears.
fn extract_json_number_after(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    extract_json_number(&json[at..], key)
}

/// CI regression gate: re-run the deterministic replay and fail if the
/// budgeted spend leaves the convergence band on either model, or the
/// budgeted quality regresses more than 20% below the committed number.
fn run_check(config: &Config, committed_path: &str) -> ! {
    let committed = std::fs::read_to_string(committed_path)
        .unwrap_or_else(|e| panic!("cannot read {committed_path}: {e}"));
    let mut failed = false;
    for scenario in [
        Scenario::dynamic_heavy(config.workers),
        Scenario::static_heavy(config.workers),
    ] {
        let result = run_scenario(&scenario, config);
        assert_scenario_invariants(scenario.name, &result);
        let committed_quality =
            extract_json_number_after(&committed, scenario.name, "budgeted_quality")
                .unwrap_or_else(|| {
                    panic!("committed report lacks {}.budgeted_quality", scenario.name)
                });
        let threshold = 0.8 * committed_quality;
        eprintln!(
            "budget-bench check [{}]: spend error {:+.2}% (band ±{:.0}%), quality now \
             {:.4} vs committed {:.4} (threshold {:.4})",
            scenario.name,
            100.0 * result.spend_error(),
            100.0 * CONVERGENCE_BAND,
            result.budgeted.quality,
            committed_quality,
            threshold,
        );
        if result.budgeted.quality < threshold {
            eprintln!(
                "FAIL [{}]: budgeted quality regressed more than 20% below the committed \
                 number",
                scenario.name
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("OK: budget controller holds the convergence band and the committed quality floor");
    std::process::exit(0);
}

fn replay_json(label: &str, run: &ReplayRun, indent: &str) -> String {
    let trace = run
        .spend_trace
        .iter()
        .map(|j| format!("{j:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{indent}\"{label}\": {{\n{indent}  \"joules\": {:.6},\n{indent}  \"dynamic_joules\": \
         {:.6},\n{indent}  \"static_joules\": {:.6},\n{indent}  \"idle_joules\": {:.6},\n\
         {indent}  \"quality\": {:.6},\n{indent}  \"accurate_tasks\": {},\n{indent}  \
         \"total_tasks\": {},\n{indent}  \"final_austerity\": {:.6},\n{indent}  \
         \"spend_trace_joules\": [{trace}]\n{indent}}}",
        run.reading.joules,
        run.reading.breakdown.dynamic_joules,
        run.reading.breakdown.static_joules,
        run.reading.breakdown.idle_joules,
        run.quality,
        run.accurate_tasks,
        run.total_tasks,
        run.final_austerity,
    )
}

fn scenario_json(scenario: &Scenario, result: &ScenarioResult) -> String {
    format!(
        "  \"{}\": {{\n    \"power_exponent\": {},\n    \"open_ratio\": {},\n    \
         \"budget_fraction\": {},\n    \
         \"budget_races\": {},\n    \"budget_min_ratio_scale\": {},\n    \
         \"budget_cap_floor\": {},\n    \
         \"budget_joules\": {:.6},\n    \"spend_error_fraction\": {:.6},\n    \
         \"open_loop_quality\": {:.6},\n    \"budgeted_quality\": {:.6},\n{},\n{}\n  }}",
        scenario.name,
        scenario.power_exponent,
        scenario.open_ratio,
        scenario.budget_fraction,
        scenario.budget_races,
        scenario.budget_min_ratio_scale,
        scenario.budget_cap_floor,
        result.budget_joules,
        result.spend_error(),
        result.open.quality,
        result.budgeted.quality,
        replay_json("open_loop", &result.open, "    "),
        replay_json("budgeted", &result.budgeted, "    "),
    )
}

fn main() {
    let config = parse_args();

    if let Some(committed) = config.check.clone() {
        run_check(&config, &committed);
    }

    eprintln!(
        "budget-bench: {} intervals x {} tasks, {} workers, band ±{:.0}%",
        config.intervals,
        INTERVAL_TASKS,
        config.workers,
        100.0 * CONVERGENCE_BAND,
    );

    let scenarios = [
        Scenario::dynamic_heavy(config.workers),
        Scenario::static_heavy(config.workers),
    ];
    let mut sections = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let result = run_scenario(scenario, &config);
        eprintln!(
            "  [{:>13}] open-loop {:.3} J @ quality {:.4} | budgeted {:.3} J \
             ({:+.2}% of budget) @ quality {:.4}, austerity {:.3}",
            scenario.name,
            result.open.reading.joules,
            result.open.quality,
            result.budgeted.reading.joules,
            100.0 * result.spend_error(),
            result.budgeted.quality,
            result.budgeted.final_austerity,
        );
        eprintln!(
            "                  spend trace {:?} vs budget {:.3}",
            result
                .budgeted
                .spend_trace
                .iter()
                .map(|j| (j * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>(),
            result.budget_joules,
        );
        assert_scenario_invariants(scenario.name, &result);
        assert_replay_deterministic(scenario, &config);
        sections.push(scenario_json(scenario, &result));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"budget_bench\",\n  \"description\": \"closed-loop \
         energy-budget controller vs the open-loop ladder at equal joules: a deterministic \
         virtual-time replay through the runtime's ExecutionEnv on two power models\",\n  \
         \"workers\": {},\n  \"intervals\": {},\n  \"interval_tasks\": {},\n  \
         \"interval_seconds\": {},\n  \"convergence_band\": \
         {},\n  \"approx_quality\": {},\n{},\n{},\n  \"metadata\": {{\n    \"note\": \
         \"energy is modelled, not measured; the replay is deterministic and reproduces \
         bit-for-bit on any host at fixed interval count. The budgeted run starts at ratio \
         1.0 and must land within the convergence band of the open-loop ladder's joules at \
         no worse quality. The budgeted configuration pairs the controller with the right \
         strategy per package: ladder + frequency cap on dynamic_heavy, race-to-idle with \
         ratio-only actuation (cap_floor 1.0) on static_heavy, where stretching \
         approximate work is counterproductive\"\n  \
         }}\n}}\n",
        config.workers,
        config.intervals,
        INTERVAL_TASKS,
        INTERVAL_SECONDS,
        CONVERGENCE_BAND,
        APPROX_QUALITY,
        sections[0],
        sections[1],
    );
    if config.write_out {
        std::fs::write(&config.out, &json).expect("failed to write results");
        eprintln!("  wrote {}", config.out);
    }
    println!("{json}");
}

//! # sig-bench — Criterion benchmark support
//!
//! Shared helpers for the Criterion benches that regenerate the paper's
//! figures. Bench-sized problem instances are smaller than the harness
//! defaults so a full `cargo bench --workspace` completes in minutes; the
//! relative ordering between policies and degrees (what the figures show) is
//! preserved.

#![warn(missing_docs)]

use sig_kernels::dct::Dct;
use sig_kernels::fluidanimate::Fluidanimate;
use sig_kernels::jacobi::Jacobi;
use sig_kernels::kmeans::KMeans;
use sig_kernels::mc::MonteCarlo;
use sig_kernels::sobel::Sobel;
use sig_kernels::Benchmark;

/// Number of worker threads used by all benches (bounded so results stay
/// comparable across hosts).
pub fn bench_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Sobel instance sized for benching.
pub fn sobel() -> Sobel {
    Sobel {
        width: 256,
        height: 256,
    }
}

/// DCT instance sized for benching.
pub fn dct() -> Dct {
    Dct {
        width: 128,
        height: 128,
    }
}

/// Monte-Carlo instance sized for benching.
pub fn mc() -> MonteCarlo {
    MonteCarlo {
        points: 96,
        walks_per_point: 48,
        seed: 0x5eed_0001,
    }
}

/// K-means instance sized for benching.
pub fn kmeans() -> KMeans {
    KMeans {
        points: 2048,
        dims: 16,
        clusters: 8,
        chunks: 32,
        max_iterations: 10,
        seed: 0x5eed_0002,
    }
}

/// Jacobi instance sized for benching.
pub fn jacobi() -> Jacobi {
    Jacobi {
        n: 256,
        blocks: 16,
        band: 24,
        approx_sweeps: 5,
        max_sweeps: 80,
        native_tolerance: 1e-5,
        seed: 0x5eed_0003,
    }
}

/// Fluidanimate instance sized for benching.
pub fn fluidanimate() -> Fluidanimate {
    Fluidanimate {
        particles: 512,
        steps: 12,
        chunks: 8,
        dt: 0.002,
        radius: 0.06,
        seed: 0x5eed_0004,
    }
}

/// All bench-sized benchmark instances, in the paper's order.
pub fn bench_suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(sobel()),
        Box::new(dct()),
        Box::new(mc()),
        Box::new(kmeans()),
        Box::new(jacobi()),
        Box::new(fluidanimate()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_all_six() {
        assert_eq!(bench_suite().len(), 6);
        assert!(bench_workers() >= 1);
    }
}

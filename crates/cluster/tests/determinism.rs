//! Determinism replay battery: a cluster run is a pure function of
//! `(config, classes, schedule, faults, seed)`.
//!
//! Every assertion here compares [`ClusterPhaseReport::fingerprint`]s —
//! one-line summaries that render each float as its exact IEEE-754 bit
//! pattern, so two runs agree **iff** they are bit-identical: same event
//! order, same retry jitter, same power integrals, same quantiles.

mod common;

use sig_cluster::{crash_storm, ClusterConfig, ClusterPhaseReport, ClusterSim, DispatchPolicy};

/// One full three-phase run (warm, storm with crashes + panics under a tight
/// cap, recovery), fingerprinted phase-by-phase.
fn full_run(seed: u64, nodes: usize, policy: DispatchPolicy) -> String {
    let mut config = ClusterConfig {
        nodes,
        seed,
        policy,
        panic_per_mille: 30,
        ..ClusterConfig::default()
    };
    // Idle floor is 3 W per node; leave room for roughly half the fleet's
    // busy slots so the cap controller actually bites.
    config.cap.cap_watts = nodes as f64 * 3.0 + (nodes as f64) * 6.1;
    let mut sim = ClusterSim::new(config, common::classes());
    let storm = crash_storm(seed, nodes, 0.3, 2_000_000, 20_000_000);
    let phases: Vec<ClusterPhaseReport> = vec![
        sim.run(&common::uniform_schedule(300, 100_000), &[]),
        sim.run(&common::uniform_schedule(600, 50_000), &storm),
        sim.run(&common::uniform_schedule(300, 100_000), &[]),
    ];
    for (i, phase) in phases.iter().enumerate() {
        assert!(phase.balanced(), "phase {i} books must balance");
    }
    phases
        .iter()
        .map(ClusterPhaseReport::fingerprint)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn same_seed_is_byte_identical_small_fleet() {
    let a = full_run(11, 6, DispatchPolicy::SignificanceAware);
    let b = full_run(11, 6, DispatchPolicy::SignificanceAware);
    assert_eq!(a, b, "two runs of the same seed must be byte-identical");
}

#[test]
fn same_seed_is_byte_identical_large_fleet() {
    let a = full_run(23, 24, DispatchPolicy::SignificanceAware);
    let b = full_run(23, 24, DispatchPolicy::SignificanceAware);
    assert_eq!(a, b, "determinism must not degrade with fleet size");
}

#[test]
fn same_seed_is_byte_identical_round_robin() {
    let a = full_run(7, 8, DispatchPolicy::RoundRobin);
    let b = full_run(7, 8, DispatchPolicy::RoundRobin);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    // Panics and storm membership are seeded; two seeds must not collide on
    // a fingerprint that includes exact joule bit patterns.
    let a = full_run(1, 6, DispatchPolicy::SignificanceAware);
    let b = full_run(2, 6, DispatchPolicy::SignificanceAware);
    assert_ne!(a, b, "distinct seeds should produce distinct histories");
}

#[test]
fn smoke_scale_replays_identically() {
    // The CI smoke configuration: tiny fleets, short schedules — the gate
    // that runs on every push must itself be replay-stable.
    for nodes in [4, 12] {
        let a = full_run(42, nodes, DispatchPolicy::SignificanceAware);
        let b = full_run(42, nodes, DispatchPolicy::SignificanceAware);
        assert_eq!(a, b, "smoke fleet of {nodes} nodes must replay");
    }
}

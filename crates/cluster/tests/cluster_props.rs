//! Property tests on the cluster's three load-bearing invariants:
//!
//! 1. the dispatcher never routes to a crashed node, under either policy,
//!    for arbitrary fleet snapshots;
//! 2. a feasible global watt cap is never violated — the modelled power
//!    integral stays within `cap × span × (1 + ε)` under arbitrary bursts,
//!    with the instantaneous violation integral at (floating-point) zero;
//! 3. the fleet shed set is a significance-axis prefix: sheds concentrate
//!    on the least significant classes and never touch significance 1.0.

// The vendored proptest shim expands token-by-token; several property
// blocks with doc comments exceed the default recursion limit.
#![recursion_limit = "1024"]

mod common;

use proptest::prelude::*;

use sig_cluster::{ClusterConfig, ClusterDispatcher, ClusterSim, DispatchPolicy, RouteCandidate};

/// Decode one arbitrary `u64` into a route candidate: the low bit is
/// up/down, the rest spread over depth, budget, smoothed load, and
/// frequency cap.
fn decode_candidate(index: usize, raw: u64) -> RouteCandidate {
    RouteCandidate {
        index,
        up: raw & 1 == 1,
        depth: ((raw >> 1) % 40) as usize,
        load_ewma: ((raw >> 16) % 1_000) as f64 / 25.0,
        allowed: ((raw >> 8) % 4) as usize,
        freq_cap: 0.25 + ((raw >> 24) % 76) as f64 / 100.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Neither policy ever returns a down node, and `None` only when the
    /// whole fleet is down — for arbitrary fleets, loads, power states,
    /// and significances, across repeated routes (the round-robin cursor
    /// walks).
    #[test]
    fn dispatcher_never_routes_to_a_crashed_node(
        raws in proptest::collection::vec(0u64..u64::MAX, 1..12),
        significance in 0.0f64..=1.0,
        policy_bit in 0u64..2,
    ) {
        let policy = if policy_bit == 0 {
            DispatchPolicy::SignificanceAware
        } else {
            DispatchPolicy::RoundRobin
        };
        let fleet: Vec<RouteCandidate> = raws
            .iter()
            .enumerate()
            .map(|(index, &raw)| decode_candidate(index, raw))
            .collect();
        let any_up = fleet.iter().any(|c| c.up);
        let mut dispatcher = ClusterDispatcher::new(policy);
        for _ in 0..fleet.len() + 2 {
            match dispatcher.route(&fleet, significance) {
                Some(index) => {
                    prop_assert!(index < fleet.len());
                    prop_assert!(
                        fleet[index].up,
                        "{policy:?} routed to down node {index}"
                    );
                }
                None => prop_assert!(!any_up, "{policy:?} refused an up fleet"),
            }
        }
    }

    /// A feasible cap (at or above the fleet idle floor) holds under
    /// arbitrary bursts: the instantaneous violation integral stays at
    /// floating-point zero and the power integral within `cap × span`.
    #[test]
    fn feasible_cap_bounds_the_power_integral(
        nodes in 1usize..5,
        headroom in 0.0f64..26.0,
        count in 50usize..250,
        spacing in 5_000u64..150_000,
        panic_per_mille_raw in 0u64..100,
        seed in 0u64..1_000,
    ) {
        let mut config = ClusterConfig {
            nodes,
            seed,
            panic_per_mille: panic_per_mille_raw as u16,
            ..ClusterConfig::default()
        };
        // Default node: idle floor 3 W, marginal slot 6.1 W. `headroom`
        // sweeps from "liveness only" to "whole fleet busy".
        let floor = nodes as f64 * 3.0;
        config.cap.cap_watts = floor + headroom;
        let mut sim = ClusterSim::new(config, common::classes());
        let report = sim.run(&common::uniform_schedule(count, spacing), &[]);
        prop_assert!(report.balanced());
        let span_seconds = report.wall_nanos as f64 * 1e-9;
        let budget = (floor + headroom) * span_seconds;
        prop_assert!(
            report.violation_joules <= budget * 1e-9,
            "violation integral {} J above zero (cap {} W)",
            report.violation_joules,
            floor + headroom
        );
        prop_assert!(
            report.power_integral_joules <= budget * (1.0 + 1e-9),
            "power integral {} J exceeds cap budget {} J",
            report.power_integral_joules,
            budget
        );
    }

    /// Under arbitrary overload the fleet shed set stays a prefix of the
    /// significance axis: significance 1.0 is never shed, the recorded shed
    /// cutoff stays below 1.0, and shed fractions are monotone down the
    /// class ladder.
    #[test]
    fn fleet_shed_set_is_a_significance_prefix(
        seed in 0u64..1_000,
        spacing in 20_000u64..80_000,
        headroom in 6.0f64..30.0,
    ) {
        let mut config = ClusterConfig {
            seed,
            ..ClusterConfig::default()
        };
        // 4-node fleet, capped well below full draw, offered 2–8× the
        // granted capacity: something must shed.
        config.cap.cap_watts = 12.0 + headroom;
        let mut sim = ClusterSim::new(config, common::classes());
        let report = sim.run(&common::uniform_schedule(900, spacing), &[]);
        prop_assert!(report.balanced());
        prop_assert!(
            report.max_shed_significance < 1.0,
            "shed cutoff reached significance 1.0"
        );
        let critical_shed = report
            .stats
            .shed_by_class
            .get(common::CRITICAL)
            .copied()
            .unwrap_or(0);
        prop_assert_eq!(critical_shed, 0, "a critical request was shed");
        let shed = |class: usize| report.stats.shed_fraction(class);
        // Prefix property, cumulative over the run: lower significance
        // always sheds at least as hard (tiny tolerance for classes whose
        // arrivals straddle a cutoff transition).
        prop_assert!(
            shed(common::BACKGROUND) + 0.02 >= shed(common::STANDARD),
            "background shed {} below standard shed {}",
            shed(common::BACKGROUND),
            shed(common::STANDARD)
        );
        prop_assert!(
            shed(common::STANDARD) + 0.02 >= shed(common::CRITICAL),
            "standard shed {} below critical shed {}",
            shed(common::STANDARD),
            shed(common::CRITICAL)
        );
    }
}

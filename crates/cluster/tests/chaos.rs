//! Chaos battery: kill and restart 30% of the fleet mid-storm, at 2×
//! capacity, with 15% transient panics — and prove nothing is lost
//! silently.
//!
//! Three phases on **one** simulator (state carries over, like a real
//! fleet):
//!
//! * **pre** — comfortable load, near-everything completes, baseline p99;
//! * **storm** — 2× offered load, 30% of nodes crash and later restart.
//!   The books must still balance with the crash losses in their own
//!   ledger (`offered == completed + violations + shed + lost_to_crash`),
//!   and significance-1.0 work must never be shed;
//! * **post** — load returns to comfortable; tail latency must recover.
//!
//! The 15% panic rate applies to every phase, so the pre and post baselines
//! include the same retry tail and the p99 comparison is apples-to-apples.

mod common;

use sig_cluster::{crash_storm, ClusterConfig, ClusterSim, NodeFaultKind};
use sig_serving::ServingStats;

const NODES: usize = 10;

fn chaos_sim() -> ClusterSim {
    let config = ClusterConfig {
        nodes: NODES,
        seed: 1337,
        panic_per_mille: 150,
        ..ClusterConfig::default()
    };
    ClusterSim::new(config, common::classes())
}

fn shed_of(stats: &ServingStats, class: usize) -> u64 {
    stats.shed_by_class.get(class).copied().unwrap_or(0)
}

#[test]
fn storm_books_balance_and_tail_recovers() {
    let mut sim = chaos_sim();

    // Pre: 10 nodes × 2 workers at 1 ms ⇒ 20 req/ms capacity; offer 4/ms.
    // With 15% transient panics and 2 retries, ~0.3% of requests exhaust
    // their retries — calm, but not perfect.
    let pre = sim.run(&common::uniform_schedule(2_000, 250_000), &[]);
    assert!(pre.balanced());
    assert!(pre.goodput() > 0.98, "pre-storm goodput {}", pre.goodput());
    assert_eq!(pre.lost_to_crash, 0);
    assert_eq!(pre.stats.shed, 0, "calm load sheds nothing");
    let pre_p99 = pre.stats.latency.quantile(0.99);

    // Storm: 2× capacity (one arrival each 25 µs); 30% of the fleet down at
    // 5 ms, back at 40 ms.
    let faults = crash_storm(99, NODES, 0.3, 5_000_000, 40_000_000);
    assert_eq!(
        faults
            .iter()
            .filter(|f| f.kind == NodeFaultKind::Down)
            .count(),
        3,
        "30% of a 10-node fleet is 3 victims"
    );
    let storm = sim.run(&common::uniform_schedule(4_000, 25_000), &faults);

    assert!(
        storm.balanced(),
        "storm books must balance: offered {} vs completed {} + violations {} + shed {} + lost {}",
        storm.stats.offered,
        storm.stats.completed,
        storm.stats.violations(),
        storm.stats.shed,
        storm.lost_to_crash
    );
    assert!(storm.lost_to_crash > 0, "crashes at 2× load lose work");
    assert_eq!(
        storm.lost_by_class.iter().sum::<u64>(),
        storm.lost_to_crash,
        "per-class loss ledger sums to the total"
    );
    assert_eq!(
        shed_of(&storm.stats, common::CRITICAL),
        0,
        "significance 1.0 is never shed, even mid-storm"
    );
    assert!(storm.max_shed_significance < 1.0);
    assert!(
        storm.stats.retries > 0,
        "15% panics must drive visible retries"
    );
    assert!(
        storm.stats.completed > storm.stats.offered / 4,
        "the fleet keeps serving through the storm"
    );

    // Post: calm load on the storm-scarred simulator; the tail recovers.
    let post = sim.run(&common::uniform_schedule(2_000, 250_000), &[]);
    assert!(post.balanced());
    assert_eq!(post.lost_to_crash, 0, "no crashes after the storm");
    let post_p99 = post.stats.latency.quantile(0.99);
    let storm_p99 = storm.stats.latency.quantile(0.99);
    assert!(
        post_p99 <= storm_p99,
        "post-storm p99 {post_p99} should not exceed storm p99 {storm_p99}"
    );
    assert!(
        post_p99 <= pre_p99.saturating_mul(2),
        "post-storm p99 {post_p99} must recover to within 2× of pre-storm {pre_p99}"
    );
    assert!(
        post.goodput() > 0.98,
        "calm load after the storm completes (goodput {})",
        post.goodput()
    );
}

#[test]
fn fleet_survives_total_blackout_of_one_wave() {
    // Harsher variant: the wave goes down *before* the load arrives and the
    // fleet must reroute around it; when it returns, capacity recovers.
    let mut sim = chaos_sim();
    let faults = crash_storm(5, NODES, 0.3, 0, 10_000_000);
    let report = sim.run(&common::uniform_schedule(1_500, 50_000), &faults);
    assert!(report.balanced());
    // Down-at-zero nodes hold nothing yet: the dispatcher routes around
    // them, so nothing is lost to the crash itself.
    assert_eq!(
        report.lost_to_crash, 0,
        "crashing an idle node loses nothing"
    );
    assert_eq!(shed_of(&report.stats, common::CRITICAL), 0);
    assert!(report.goodput() > 0.5);
}

//! Cross-tier accounting under an energy budget, through a crash storm.
//!
//! Two tiers, one identity discipline:
//!
//! * **cluster** — a budgeted fleet takes a 2× overload storm with 30% of
//!   its nodes crashing and restarting mid-phase. Every phase's request
//!   books must balance (`offered == completed + violations + shed +
//!   lost_to_crash`), and the budget controller's accounted spend must equal
//!   the summed per-node energy ledgers re-read at its last observation
//!   instant **bit for bit** — crashes included, because each node's ledger
//!   survives restarts;
//! * **serving** — a budgeted single-node simulator under the same style of
//!   overload with transient panics: books balance every phase, and the
//!   controller's spend never exceeds the environment's cumulative bill
//!   (its observations lag the bill by at most one sampling interval, never
//!   lead it).

mod common;

use sig_cluster::{crash_storm, ClusterConfig, ClusterSim};
use sig_core::{ExecutionEnv, NominalGovernor, PowerModel, TransitionCost};
use sig_energy::{BudgetConfig, BudgetTarget};
use sig_serving::{SimConfig, Simulator};
use std::sync::Arc;

const NODES: usize = 10;

/// A 30 W fleet envelope: above the 10-node idle floor (30 × 1 W static +
/// idle), comfortably below the fleet's ~120 W all-out draw, so the budget
/// genuinely actuates the watt cap without starving liveness.
fn budgeted_sim() -> ClusterSim {
    let config = ClusterConfig {
        nodes: NODES,
        seed: 1337,
        panic_per_mille: 100,
        budget: Some(BudgetConfig::new(BudgetTarget::WattEnvelope {
            watts: 30.0,
        })),
        ..ClusterConfig::default()
    };
    ClusterSim::new(config, common::classes())
}

/// The cluster-side identity, asserted bit-for-bit: the controller's spend
/// is exactly the summed per-node reading at its last observation.
fn assert_ledger_identity(sim: &ClusterSim) {
    let (elapsed, observed_busy, spent) = sim
        .budget_observation()
        .expect("the budget loop has observed by now");
    // Observation times are virtual-tick instants: recover the integer
    // nanosecond the controller sampled at (exact for any sim shorter than
    // 2^53 ns) and re-read the ledgers there.
    let at = (elapsed * 1e9).round() as u64;
    let reread = sim.fleet_reading(at);
    assert_eq!(
        spent.to_bits(),
        reread.joules.to_bits(),
        "budget spend {spent} J diverges from the summed per-node ledgers \
         {} J re-read at its observation instant",
        reread.joules
    );
    assert_eq!(
        observed_busy.to_bits(),
        reread.busy_core_seconds.to_bits(),
        "observed busy-core-seconds diverge from the summed ledgers"
    );
    assert_eq!(
        sim.budget_spent_joules()
            .expect("budget configured")
            .to_bits(),
        spent.to_bits()
    );
}

#[test]
fn cluster_budget_books_balance_through_a_crash_storm() {
    let mut sim = budgeted_sim();

    // Pre: comfortable load. Books balance, the loop is live, identity holds.
    let pre = sim.run(&common::uniform_schedule(2_000, 250_000), &[]);
    assert!(pre.balanced(), "pre-storm books must balance");
    assert_eq!(pre.lost_to_crash, 0);
    assert_ledger_identity(&sim);
    let spent_pre = sim.budget_spent_joules().unwrap();
    assert!(spent_pre > 0.0, "the budget loop observed no energy");

    // Storm: 2× capacity while 30% of the fleet crashes at 5 ms and
    // restarts at 40 ms. Crash losses get their own ledger line; the energy
    // ledgers (and so the budget's accounting) survive the restarts.
    let faults = crash_storm(99, NODES, 0.3, 5_000_000, 40_000_000);
    let storm = sim.run(&common::uniform_schedule(4_000, 25_000), &faults);
    assert!(
        storm.balanced(),
        "storm books must balance: offered {} vs completed {} + violations {} + shed {} + lost {}",
        storm.stats.offered,
        storm.stats.completed,
        storm.stats.violations(),
        storm.stats.shed,
        storm.lost_to_crash
    );
    assert!(
        storm.lost_to_crash > 0,
        "a 2× storm with crashes loses work"
    );
    assert_ledger_identity(&sim);
    let spent_storm = sim.budget_spent_joules().unwrap();
    assert!(
        spent_storm > spent_pre,
        "cumulative spend must grow through the storm"
    );

    // The budget only ever tightens the configured cap, and with a finite
    // envelope the actuated cap must be at (or below) the planned rate.
    let setpoint = sim.budget_setpoint().expect("budget configured");
    let cap_now = sim.cap_controller().config().cap_watts;
    assert!(
        cap_now <= setpoint.watt_cap + 1e-9,
        "actuated cap {cap_now} W above the planned rate {} W",
        setpoint.watt_cap
    );
    assert!((0.0..=1.0).contains(&setpoint.austerity));

    // Post: calm load; the books and the identity still hold on the
    // storm-scarred fleet.
    let post = sim.run(&common::uniform_schedule(2_000, 250_000), &[]);
    assert!(post.balanced());
    assert_eq!(post.lost_to_crash, 0);
    assert_ledger_identity(&sim);
    assert!(sim.budget_spent_joules().unwrap() > spent_storm);
}

#[test]
fn serving_budget_books_balance_and_spend_never_leads_the_bill() {
    let config = SimConfig {
        panic_per_mille: 150,
        seed: 0xacc7,
        budget: Some(BudgetConfig::new(BudgetTarget::TotalJoules {
            joules: 40.0,
            horizon_seconds: 4.0,
        })),
        ..SimConfig::default()
    };
    let workers = config.workers;
    let env = ExecutionEnv::new(
        PowerModel::for_host(),
        Arc::new(NominalGovernor),
        None,
        TransitionCost::free(),
        workers,
    );
    let mut sim = Simulator::new(config, common::classes(), env);

    // Pre / storm / post on one simulator: 4 workers × 1 ms ⇒ 4000 rps
    // capacity; the storm offers 2×.
    let mut billed = 0.0f64;
    for (name, count, spacing) in [
        ("pre", 2_000usize, 400_000u64),
        ("storm", 6_000, 125_000),
        ("post", 2_000, 400_000),
    ] {
        let report = sim.run(&common::uniform_schedule(count, spacing));
        assert!(
            report.stats.balanced(),
            "{name}: offered {} != completed {} + violations {} + shed {}",
            report.stats.offered,
            report.stats.completed,
            report.stats.violations(),
            report.stats.shed
        );
        billed += report.joules;
        let spent = sim.budget_spent_joules().expect("budget configured");
        assert!(spent > 0.0, "{name}: the budget loop observed no energy");
        assert!(
            spent <= billed + 1e-9,
            "{name}: budget accounted {spent} J, environment billed only {billed} J \
             -- the controller's view must lag the bill, never lead it"
        );
    }
    let setpoint = sim.budget_setpoint().expect("budget configured");
    assert!((0.0..=1.0).contains(&setpoint.austerity));
}

//! Shared fixtures for the cluster test battery.

// Each test binary compiles this module independently and uses a different
// subset of it.
#![allow(dead_code)]

use std::time::Duration;

use sig_serving::{QualityTier, RequestClass, RetryPolicy};

/// The standard three-class serving mix: critical (significance 1.0,
/// single-tier), standard (0.7, 3-rung ladder), background (0.3, 3-rung
/// ladder) — the same shape the serving bench exercises.
pub fn classes() -> Vec<RequestClass> {
    vec![
        RequestClass::exact("critical", 1.0, Duration::from_millis(20), retry()),
        ladder_class("standard", 0.7),
        ladder_class("background", 0.3),
    ]
}

/// Index of the critical class in [`classes`].
pub const CRITICAL: usize = 0;
/// Index of the standard class in [`classes`].
pub const STANDARD: usize = 1;
/// Index of the background class in [`classes`].
pub const BACKGROUND: usize = 2;

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_micros(100),
        jitter: 0.5,
    }
}

fn ladder_class(name: &str, significance: f64) -> RequestClass {
    RequestClass {
        name: name.into(),
        tiers: vec![
            QualityTier {
                significance,
                work_factor: 1.0,
            },
            QualityTier {
                significance: significance * 0.6,
                work_factor: 0.5,
            },
            QualityTier {
                significance: significance * 0.3,
                work_factor: 0.25,
            },
        ],
        deadline: Duration::from_millis(20),
        retry: retry(),
    }
}

/// `count` arrivals spaced `spacing` nanoseconds apart, round-robined over
/// the class mix (3 classes).
pub fn uniform_schedule(count: usize, spacing: u64) -> Vec<(u64, usize)> {
    (0..count).map(|i| (i as u64 * spacing, i % 3)).collect()
}

//! Cluster extension of the governor conformance kit: every shipped
//! governor runs **inside a node** — wrapped by the power-cap controller's
//! re-targetable frequency cap, under fleet overload and a tight global
//! watt budget — and must preserve its per-node invariants:
//!
//! * critical (accurate) work is never scaled below nominal, cap or no cap;
//! * dynamic energy never exceeds the nominal baseline at fixed work
//!   (downscaling can only save);
//! * the node environment's busy ledger equals exactly what the kernel
//!   recorded (no time lost in the seqlock shards);
//! * the global cap holds and the phase books balance.
//!
//! Add new governors to `all_governors` in `tests/governor_conformance.rs`
//! at the workspace root AND here: a governor that passes the single-node
//! kit but misbehaves under a live frequency-cap re-target shows up here.

mod common;

use std::sync::Arc;

use sig_cluster::{default_node_model, ClusterConfig, ClusterSim};
use sig_core::{
    AdaptiveGovernor, ApproxGovernor, FrequencyScale, Governor, NominalGovernor,
    RaceToIdleGovernor, SignificanceLadderGovernor,
};
use sig_energy::SleepState;

type GovernorCase = (&'static str, fn() -> Arc<dyn Governor>);

/// The five shipped governors (the cluster node wraps each in its own
/// `FrequencyCapGovernor`, so the wrapper itself is exercised for free).
fn all_governors() -> Vec<GovernorCase> {
    vec![
        ("nominal", || Arc::new(NominalGovernor)),
        ("approx-step", || Arc::new(ApproxGovernor::new(0.6))),
        ("significance-ladder", || {
            Arc::new(SignificanceLadderGovernor::with_ladder(4, 0.4))
        }),
        ("race-to-idle", || {
            Arc::new(RaceToIdleGovernor::with_ladder(4, 0.4))
        }),
        ("adaptive", || {
            Arc::new(AdaptiveGovernor::new(
                &default_node_model(2),
                SleepState::deep(),
                FrequencyScale::ladder(4, 0.4),
                4,
                1e-3,
            ))
        }),
    ]
}

#[test]
fn every_governor_preserves_node_invariants_under_cap_pressure() {
    for (name, make) in all_governors() {
        let mut config = ClusterConfig {
            seed: 7,
            panic_per_mille: 30,
            ..ClusterConfig::default()
        };
        // 4-node fleet: idle floor 12 W; 25 W affords two busy slots — the
        // fleet is power-starved while ~3× overloaded.
        config.cap.cap_watts = 25.0;
        let mut sim = ClusterSim::with_governors(config, common::classes(), |_| make());
        let report = sim.run(&common::uniform_schedule(1_500, 150_000), &[]);

        assert!(report.balanced(), "{name}: phase books must balance");
        assert_eq!(
            report.accurate_scaled, 0,
            "{name}: cap pressure scaled a critical (accurate) dispatch"
        );
        assert!(
            report.violation_joules <= 1e-9,
            "{name}: feasible cap violated by {} J",
            report.violation_joules
        );
        assert!(report.max_shed_significance < 1.0, "{name}: shed critical");

        for node in sim.nodes() {
            let totals = node.env_totals();
            assert_eq!(
                totals.busy_nanos,
                node.recorded_busy_nanos(),
                "{name}: node {} environment lost busy time",
                node.index()
            );
            // Dynamic energy bound: every executed step has
            // dynamic_energy_factor ≤ 1, so modelled dynamic energy never
            // exceeds busy time priced at nominal active watts (small slack
            // for per-task nanojoule rounding).
            let nominal_bound =
                totals.busy_nanos as f64 * node.nominal_active_watts() * (1.0 + 1e-9) + 10_000.0;
            assert!(
                (totals.dynamic_nanojoules as f64) <= nominal_bound,
                "{name}: node {} dynamic energy {} nJ above nominal bound {} nJ",
                node.index(),
                totals.dynamic_nanojoules,
                nominal_bound
            );
            // Dilation only ever extends modelled time.
            assert!(
                totals.modelled_busy_nanos >= totals.busy_nanos,
                "{name}: node {} modelled busy below measured",
                node.index()
            );
        }
    }
}

#[test]
fn capped_nodes_spend_less_dynamic_energy_than_uncapped() {
    // The point of the frequency cap as an energy optimisation: the same
    // ladder governor, the same offered load, with and without a tight cap
    // — capped nodes must not spend *more* dynamic energy per busy
    // nanosecond.
    let run = |cap_watts: f64| {
        let mut config = ClusterConfig {
            seed: 13,
            ..ClusterConfig::default()
        };
        config.cap.cap_watts = cap_watts;
        let mut sim = ClusterSim::with_governors(config, common::classes(), |_| {
            Arc::new(SignificanceLadderGovernor::with_ladder(4, 0.4))
        });
        sim.run(&common::uniform_schedule(1_200, 200_000), &[]);
        let (mut dynamic, mut busy) = (0u64, 0u64);
        for node in sim.nodes() {
            let totals = node.env_totals();
            dynamic += totals.dynamic_nanojoules;
            busy += totals.busy_nanos;
        }
        dynamic as f64 / busy.max(1) as f64
    };
    let capped = run(25.0);
    let uncapped = run(f64::INFINITY);
    assert!(
        capped <= uncapped * (1.0 + 1e-9),
        "capped fleet spends {capped} W dynamic vs uncapped {uncapped} W"
    );
}

//! # sig-cluster
//!
//! Cluster-scale simulation for the significance-aware runtime: many
//! runtimes, one energy budget.
//!
//! The single-node serving layer already answers "what gives under
//! overload?" — degrade first, shed lowest-significance first, never lose
//! silently. This crate asks the fleet-scale question: when N nodes share
//! **one watt budget**, who slows down, who degrades, and who sheds? The
//! answer keeps the same significance contract, now enforced by three
//! cooperating pieces inside a bit-deterministic discrete-event kernel:
//!
//! 1. **[`Node`]** — each simulated node owns a *real* `ExecutionEnv`,
//!    governor (wrapped in a re-targetable
//!    [`FrequencyCapGovernor`](sig_core::FrequencyCapGovernor)), and
//!    admission controller, plus a utilization→watts curve pricing its
//!    modelled draw. Crashes bump an epoch, stop the power meter, and ledger
//!    in-flight work as lost — never silently.
//! 2. **[`ClusterDispatcher`]** — routes each request by significance, per-
//!    node load, and power state: critical work steers away from frequency-
//!    capped nodes, degraded work toward them ([`DispatchPolicy`]).
//! 3. **[`PowerCapController`]** — waterfills per-node busy-slot budgets so
//!    the fleet's worst-case modelled draw never exceeds the global cap,
//!    layers frequency caps on the power-restricted nodes, and responds to
//!    backlog with fleet-monotone degradation and a shed cutoff strictly
//!    below significance 1.0.
//!
//! [`ClusterSim::run`] drives one phase and returns a
//! [`ClusterPhaseReport`] whose books obey the fleet identity
//! `offered == completed + violations + shed + lost_to_crash` and whose
//! [`fingerprint`](ClusterPhaseReport::fingerprint) is byte-identical across
//! replays of the same seed.

#![warn(missing_docs)]

pub mod cap;
pub mod dispatch;
pub mod faults;
pub mod node;
pub mod report;
pub mod sim;

pub use cap::{CapConfig, ClusterAdmission, PowerCapController};
pub use dispatch::{ClusterDispatcher, DispatchPolicy, RouteCandidate};
pub use faults::{crash_storm, NodeFault, NodeFaultKind};
pub use node::Node;
pub use report::ClusterPhaseReport;
pub use sim::{default_node_model, ClusterConfig, ClusterSim};

//! One simulated node: a real `ExecutionEnv` + governor + admission
//! controller plus the discrete-event bookkeeping the cluster kernel drives.
//!
//! Nothing here is a mock. The node's governor makes real
//! [`DispatchDecision`](sig_core::DispatchDecision)s through a
//! [`FrequencyCapGovernor`] the cluster's power-cap controller re-targets,
//! its [`AdmissionController`] degrades-then-sheds with the same hysteresis
//! as the single-node serving layer, and its [`ExecutionEnv`] prices energy
//! with the same seqlock shards the live runtime uses — just fed synthetic
//! virtual-time durations (the governor-conformance-kit trick, fleet-wide).
//!
//! Crash semantics: a crash bumps the node's **epoch** (stale `Finish`
//! events are ignored), loses everything queued or running on the node to
//! the cluster's `lost_to_crash` ledger, and stops the up-time clock — the
//! energy report prices static/idle power only over up-time, so a dead node
//! draws nothing. A restart resets queue, workers, and admission state but
//! keeps the environment: its energy ledger is cumulative over the node's
//! lifetime, like a machine whose meter survives reboots.

use std::collections::VecDeque;
use std::sync::Arc;

use sig_core::{EnergyReport, EnvTotals, ExecutionEnv, FrequencyCapGovernor, Governor};
use sig_energy::{PowerModel, SleepState, TransitionCost, UtilizationPowerCurve};
use sig_serving::{AdmissionConfig, AdmissionController, ServingStats};

/// One attempt currently executing on a node worker.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunningAttempt {
    /// Index of the request (phase-local) the attempt serves.
    pub request: usize,
    /// DVFS power factor of the attempt's dispatch decision — its weight in
    /// the node's effective busy-core count.
    pub power_factor: f64,
}

/// A simulated node (see module docs). Fields the event kernel mutates are
/// crate-private; tests and benches observe through the accessors.
pub struct Node {
    index: usize,
    workers: usize,
    env: ExecutionEnv,
    governor: Arc<FrequencyCapGovernor>,
    admission_config: AdmissionConfig,
    pub(crate) admission: AdmissionController,
    /// Node-local outcome book for the current phase. Outcomes are recorded
    /// on the node where the request *terminates*; `offered` is counted once
    /// at cluster ingress, so the fleet identity holds on the merged book.
    pub(crate) book: ServingStats,
    curve: UtilizationPowerCurve,
    pub(crate) up: bool,
    pub(crate) epoch: u64,
    pub(crate) ready: VecDeque<usize>,
    running: Vec<Option<RunningAttempt>>,
    pub(crate) free_workers: Vec<usize>,
    busy: usize,
    busy_effective: f64,
    allowed: usize,
    freq_cap: f64,
    pub(crate) load_ewma: f64,
    up_nanos: u64,
    last_up_at: u64,
    /// Modelled watts at the last busy-set change (cached so the kernel can
    /// maintain the fleet total incrementally).
    pub(crate) cached_watts: f64,
    /// Cumulative busy nanoseconds handed to `env.record` — cross-checked
    /// against the environment's own ledger by the conformance harness.
    pub(crate) recorded_busy_nanos: u64,
}

impl Node {
    /// Build a node whose `inner` governor is wrapped in a re-targetable
    /// [`FrequencyCapGovernor`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: usize,
        workers: usize,
        admission: AdmissionConfig,
        curve: UtilizationPowerCurve,
        model: PowerModel,
        inner: Arc<dyn Governor>,
        sleep: Option<SleepState>,
        transition_cost: TransitionCost,
    ) -> Self {
        assert!(workers > 0, "a node needs at least one worker");
        let governor = Arc::new(FrequencyCapGovernor::new(inner));
        let env = ExecutionEnv::new(model, governor.clone(), sleep, transition_cost, workers);
        let idle_watts = curve.idle_floor(workers);
        Node {
            index,
            workers,
            env,
            governor,
            admission_config: admission,
            admission: AdmissionController::new(admission),
            book: ServingStats::default(),
            curve,
            up: true,
            epoch: 0,
            ready: VecDeque::new(),
            running: vec![None; workers],
            free_workers: (0..workers).rev().collect(),
            busy: 0,
            busy_effective: 0.0,
            allowed: workers,
            freq_cap: 1.0,
            load_ewma: 0.0,
            up_nanos: 0,
            last_up_at: 0,
            cached_watts: idle_watts,
            recorded_busy_nanos: 0,
        }
    }

    /// The node's index in the fleet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Worker (core) count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the node is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Queued plus running requests — the load signal routing and admission
    /// key on.
    pub fn depth(&self) -> usize {
        self.ready.len() + self.busy
    }

    /// Workers currently executing an attempt.
    pub fn busy_count(&self) -> usize {
        self.busy
    }

    /// Busy-worker budget granted by the power-cap controller.
    pub fn allowed(&self) -> usize {
        self.allowed
    }

    /// Frequency-cap ratio the controller currently imposes (1.0 = none).
    pub fn freq_cap(&self) -> f64 {
        self.freq_cap
    }

    /// The node's utilization→power curve.
    pub fn curve(&self) -> &UtilizationPowerCurve {
        &self.curve
    }

    /// The node's admission controller (live state).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The node's outcome book for the current phase.
    pub fn book(&self) -> &ServingStats {
        &self.book
    }

    /// Consistent fold of the node environment's cumulative counters.
    pub fn env_totals(&self) -> EnvTotals {
        self.env.totals()
    }

    /// Nominal active watts per core of the node's pricing model.
    pub fn nominal_active_watts(&self) -> f64 {
        self.env.model().active_watts_per_core
    }

    /// Cumulative busy nanoseconds the kernel recorded into the environment.
    pub fn recorded_busy_nanos(&self) -> u64 {
        self.recorded_busy_nanos
    }

    /// Seconds the node has been up, as of virtual time `now`.
    pub fn up_seconds(&self, now: u64) -> f64 {
        let nanos = self.up_nanos
            + if self.up {
                now.saturating_sub(self.last_up_at)
            } else {
                0
            };
        nanos as f64 * 1e-9
    }

    /// The node's cumulative energy report as of virtual time `now`: the
    /// real environment accounting integrated over the node's **up-time**
    /// (a crashed node burns nothing while down).
    pub fn energy_report(&self, now: u64) -> EnergyReport {
        self.env.report(self.up_seconds(now), self.workers)
    }

    /// Re-target the controller's verdict for this node: how many workers
    /// may be busy, and the frequency cap for non-critical dispatches.
    pub(crate) fn set_targets(&mut self, allowed: usize, freq_cap: f64) {
        self.allowed = allowed.min(self.workers);
        self.freq_cap = freq_cap;
        self.governor.set_cap(freq_cap);
    }

    /// Modelled node draw right now: zero while down, the power curve at the
    /// current (DVFS-weighted) busy set while up.
    pub(crate) fn watts(&self) -> f64 {
        if !self.up {
            return 0.0;
        }
        self.curve
            .watts(self.busy_effective.max(0.0), self.busy, self.workers)
    }

    /// The environment, for dispatch/record calls from the kernel.
    pub(crate) fn env(&self) -> &ExecutionEnv {
        &self.env
    }

    /// Mark `worker` busy with `attempt`.
    pub(crate) fn start_worker(&mut self, worker: usize, attempt: RunningAttempt) {
        debug_assert!(self.running[worker].is_none());
        self.busy += 1;
        self.busy_effective += attempt.power_factor;
        self.running[worker] = Some(attempt);
    }

    /// Mark `worker` free again, returning the attempt it ran.
    pub(crate) fn finish_worker(&mut self, worker: usize) -> RunningAttempt {
        let attempt = self.running[worker].take().expect("worker was not busy");
        self.busy -= 1;
        self.busy_effective -= attempt.power_factor;
        self.free_workers.push(worker);
        attempt
    }

    /// Crash the node at `now`: bump the epoch (in-flight `Finish` events
    /// become stale), stop the up-time clock, and return every request that
    /// was queued or running here — the caller ledgers them as
    /// lost-to-crash.
    pub(crate) fn crash(&mut self, now: u64) -> Vec<usize> {
        debug_assert!(self.up);
        self.up = false;
        self.epoch += 1;
        self.up_nanos += now.saturating_sub(self.last_up_at);
        let mut lost: Vec<usize> = self.ready.drain(..).collect();
        for slot in self.running.iter_mut() {
            if let Some(attempt) = slot.take() {
                lost.push(attempt.request);
            }
        }
        self.busy = 0;
        self.busy_effective = 0.0;
        self.free_workers = (0..self.workers).rev().collect();
        self.load_ewma = 0.0;
        lost
    }

    /// Restart the node at `now`: fresh queue, workers, and admission state;
    /// the environment (cumulative energy ledger) and epoch survive.
    pub(crate) fn restart(&mut self, now: u64) {
        debug_assert!(!self.up);
        self.up = true;
        self.last_up_at = now;
        self.admission = AdmissionController::new(self.admission_config);
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("index", &self.index)
            .field("up", &self.up)
            .field("depth", &self.depth())
            .field("allowed", &self.allowed)
            .field("freq_cap", &self.freq_cap)
            .finish()
    }
}

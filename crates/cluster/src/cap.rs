//! The global power-cap controller: one watt budget, many nodes.
//!
//! Frequency caps alone cannot guarantee a watt cap — critical work always
//! runs at nominal frequency, and enough concurrent critical work can out-
//! draw any ladder. The controller therefore budgets **concurrency**: it
//! waterfills per-node *busy-worker slots* so that the fleet's worst-case
//! modelled draw (every granted slot busy at nominal power, by the monotone
//! [`UtilizationPowerCurve::max_watts`] bound) stays at or below the cap at
//! every instant. Frequency caps then ride on top as a pure energy
//! optimisation: a node granted fewer slots than workers also gets its
//! non-critical dispatches clamped to `capped_freq`, making it the fleet's
//! designated cheap-but-slow tier.
//!
//! Slot filling is deliberately **asymmetric** when `focus` is set (the
//! default): after every up node gets one affordable slot (liveness), the
//! remaining budget concentrates on the lowest-indexed nodes. That carves
//! the fleet into full-power and power-restricted halves — exactly the
//! diversity the significance-aware dispatcher exploits (critical work to
//! the fast half, degraded work to the cheap half). `focus = false`
//! round-robins the slots instead, for a homogeneous fleet.
//!
//! Load response is fleet-monotone in significance, mirroring the per-node
//! admission guarantee at cluster scope: one smoothed backlog pressure maps
//! to (a) a forced minimum ladder depth that grows as significance falls —
//! significance 1.0 is never force-degraded — and (b) a single rising shed
//! cutoff bounded strictly below 1.0, so the fleet shed set is always a
//! prefix of the significance axis and critical classes are never shed.

use sig_energy::UtilizationPowerCurve;

use crate::node::Node;

/// Tuning for [`PowerCapController`].
#[derive(Debug, Clone, Copy)]
pub struct CapConfig {
    /// Fleet-wide modelled watt budget ([`f64::INFINITY`] = uncapped).
    pub cap_watts: f64,
    /// Control period of the kernel's re-targeting tick, nanoseconds.
    pub tick_nanos: u64,
    /// EWMA smoothing factor for the backlog pressure, in `(0, 1]`.
    pub alpha: f64,
    /// Backlogged requests per granted busy slot at which pressure reads
    /// 1.0.
    pub slot_watermark: f64,
    /// Pressure at which fleet-forced degradation begins.
    pub degrade_knee: f64,
    /// Pressure at which fleet-level shedding begins (degradation is fully
    /// engaged by then).
    pub shed_knee: f64,
    /// Pressure at which the shed cutoff reaches `max_shed_significance`.
    pub shed_full: f64,
    /// Upper bound on the shed significance cutoff, strictly below 1.0:
    /// critical classes are never shed, no matter the pressure.
    pub max_shed_significance: f64,
    /// Frequency-cap ratio imposed on power-restricted nodes' non-critical
    /// work.
    pub capped_freq: f64,
    /// Concentrate surplus slots on low-indexed nodes (see module docs).
    pub focus: bool,
}

impl Default for CapConfig {
    fn default() -> Self {
        CapConfig {
            cap_watts: f64::INFINITY,
            tick_nanos: 1_000_000, // 1 ms
            alpha: 0.2,
            slot_watermark: 8.0,
            degrade_knee: 0.5,
            shed_knee: 1.5,
            shed_full: 4.0,
            max_shed_significance: 0.95,
            capped_freq: 0.5,
            focus: true,
        }
    }
}

impl CapConfig {
    fn validate(&self) {
        assert!(self.cap_watts > 0.0, "the watt cap must be positive");
        assert!(self.tick_nanos > 0);
        assert!(self.alpha > 0.0 && self.alpha <= 1.0);
        assert!(self.slot_watermark > 0.0);
        assert!(self.degrade_knee < self.shed_knee);
        assert!(self.shed_knee < self.shed_full);
        assert!((0.0..1.0).contains(&self.max_shed_significance));
        assert!(self.capped_freq > 0.0 && self.capped_freq <= 1.0);
    }
}

/// The controller's verdict for one arriving (or retrying) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAdmission {
    /// Admit, forcing the request at least `min_tier` rungs down its own
    /// ladder (0 = no fleet-forced degradation).
    Admit {
        /// Minimum ladder index the request may run at.
        min_tier: usize,
    },
    /// Shed fleet-wide: the request's significance is below the rising
    /// cutoff.
    Shed,
}

/// Enforces one global watt budget over a fleet of [`Node`]s (see module
/// docs).
#[derive(Debug)]
pub struct PowerCapController {
    config: CapConfig,
    pressure: f64,
}

impl PowerCapController {
    /// A controller with the given tuning.
    pub fn new(config: CapConfig) -> Self {
        config.validate();
        PowerCapController {
            config,
            pressure: 0.0,
        }
    }

    /// The configured tuning.
    pub fn config(&self) -> &CapConfig {
        &self.config
    }

    /// Re-target the fleet-wide watt cap. This is the actuator an online
    /// energy-budget controller drives: instead of a fixed build-time cap,
    /// the budget loop feeds its planned sustainable rate here each control
    /// tick and the next [`PowerCapController::retarget`] waterfills under
    /// the new value. The cap must be positive ([`f64::INFINITY`] uncaps).
    pub fn set_cap_watts(&mut self, cap_watts: f64) {
        assert!(cap_watts > 0.0, "the watt cap must be positive");
        self.config.cap_watts = cap_watts;
    }

    /// Smoothed fleet backlog pressure (1.0 = `slot_watermark` backlogged
    /// requests per granted slot).
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    /// The current fleet shed cutoff over significance (0.0 = shed
    /// nothing). Always strictly below 1.0.
    pub fn shed_cutoff(&self) -> f64 {
        let config = &self.config;
        let span = config.shed_full - config.shed_knee;
        let depth = ((self.pressure - config.shed_knee) / span).clamp(0.0, 1.0);
        config.max_shed_significance * depth
    }

    /// Fleet-forced degradation depth in `[0, 1]` (1 = force every ladder
    /// to its deepest rung, scaled by `1 − significance`).
    pub fn degrade_depth(&self) -> f64 {
        let config = &self.config;
        let span = config.shed_knee - config.degrade_knee;
        ((self.pressure - config.degrade_knee) / span).clamp(0.0, 1.0)
    }

    /// Update the smoothed pressure from the fleet's backlog (called once
    /// per control tick).
    pub fn observe(&mut self, nodes: &[Node]) {
        let mut backlog = 0usize;
        let mut slots = 0usize;
        for node in nodes.iter().filter(|n| n.is_up()) {
            backlog += node.depth();
            slots += node.allowed();
        }
        let raw = backlog as f64 / (slots.max(1) as f64 * self.config.slot_watermark);
        self.pressure += self.config.alpha * (raw - self.pressure);
    }

    /// Admission verdict for a request whose class has the given best-tier
    /// `significance` and `ladder` rungs.
    ///
    /// Monotone in significance by construction: the shed test is a single
    /// rising cutoff (`< cutoff ⇒ shed`, cutoff `< 1.0`), and the forced
    /// tier `⌈depth · (1 − s) · (ladder − 1)⌉` never increases with `s` —
    /// significance 1.0 is neither shed nor force-degraded.
    pub fn admit(&self, significance: f64, ladder: usize) -> ClusterAdmission {
        if significance < self.shed_cutoff() {
            return ClusterAdmission::Shed;
        }
        let rungs = ladder.saturating_sub(1) as f64;
        let min_tier = (self.degrade_depth() * (1.0 - significance) * rungs).ceil() as usize;
        ClusterAdmission::Admit { min_tier }
    }

    /// Waterfill per-node busy-slot budgets under the cap and re-target
    /// every node (slots + frequency cap). Called on every control tick and
    /// on node up/down transitions.
    ///
    /// Guarantee: when the cap covers the fleet's idle floor, the sum of
    /// per-node worst-case draws `max_watts(allowed)` never exceeds the cap
    /// — and since each curve is monotone in its busy count and every busy
    /// core draws at most nominal power, the fleet's modelled instantaneous
    /// draw never exceeds the cap either. A cap below the idle floor is
    /// infeasible: slots go to zero and the violation integral reports the
    /// (unavoidable) floor overshoot.
    pub fn retarget(&mut self, nodes: &mut [Node]) {
        let cap = self.config.cap_watts;
        let up: Vec<usize> = (0..nodes.len()).filter(|&i| nodes[i].is_up()).collect();
        let mut allowed: Vec<usize> = vec![0; nodes.len()];
        // The idle floors of up nodes are spent regardless of slots.
        let mut budget = cap;
        for &i in &up {
            budget -= nodes[i].curve().idle_floor(nodes[i].workers());
        }
        let marginal = |node: &Node, slots: usize| {
            let curve: &UtilizationPowerCurve = node.curve();
            curve.max_watts(slots + 1, node.workers()) - curve.max_watts(slots, node.workers())
        };
        // Liveness pass: one slot per up node, while affordable.
        for &i in &up {
            let cost = marginal(&nodes[i], 0);
            if cost <= budget {
                allowed[i] = 1;
                budget -= cost;
            }
        }
        // Surplus: focus fills node-by-node (power-state diversity);
        // otherwise round-robin one slot per pass (homogeneous fleet).
        if self.config.focus {
            for &i in &up {
                while allowed[i] < nodes[i].workers() {
                    let cost = marginal(&nodes[i], allowed[i]);
                    if cost > budget {
                        break;
                    }
                    allowed[i] += 1;
                    budget -= cost;
                }
            }
        } else {
            let mut granted = true;
            while granted {
                granted = false;
                for &i in &up {
                    if allowed[i] >= nodes[i].workers() {
                        continue;
                    }
                    let cost = marginal(&nodes[i], allowed[i]);
                    if cost <= budget {
                        allowed[i] += 1;
                        budget -= cost;
                        granted = true;
                    }
                }
            }
        }
        for &i in &up {
            let full = allowed[i] >= nodes[i].workers();
            let freq_cap = if full { 1.0 } else { self.config.capped_freq };
            nodes[i].set_targets(allowed[i], freq_cap);
        }
    }
}

//! Node-level fault schedules: join, leave, crash, restart.
//!
//! Same contract as the runtime's task-level
//! [`FaultPlan`](sig_core::FaultPlan): faults are **seeded and declared up
//! front**, so every chaos run replays bit-identically. A fault is an event
//! in the cluster kernel's heap like any other — `Down` crashes a node
//! (losing its queued and in-flight work to the `lost_to_crash` ledger),
//! `Up` restarts it (or joins a node that started down).

use sig_serving::SplitMix64;

/// What happens to the node at the fault's virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// Crash/leave: queued and running requests are lost (ledgered), the
    /// node stops drawing power, stale finishes are ignored.
    Down,
    /// Restart/join: fresh queue, workers, and admission state.
    Up,
}

/// One scheduled node fault, at a phase-relative offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// Offset from the start of the phase, virtual nanoseconds.
    pub at_offset: u64,
    /// Index of the affected node.
    pub node: usize,
    /// Down or up.
    pub kind: NodeFaultKind,
}

/// A seeded kill-and-restart storm: `fraction` of `nodes` (at least one,
/// chosen by seeded shuffle) go down at `down_offset` and come back at
/// `up_offset`. The selection is a pure function of the seed — the chaos
/// battery replays it bit-identically.
pub fn crash_storm(
    seed: u64,
    nodes: usize,
    fraction: f64,
    down_offset: u64,
    up_offset: u64,
) -> Vec<NodeFault> {
    assert!(nodes > 0);
    assert!((0.0..=1.0).contains(&fraction));
    assert!(down_offset < up_offset);
    let kill = ((nodes as f64 * fraction).round() as usize).clamp(1, nodes);
    // Seeded Fisher–Yates over the node indices; the prefix is the kill set.
    let mut order: Vec<usize> = (0..nodes).collect();
    let mut rng = SplitMix64::new(seed ^ 0xc1a5_4e57_0f00_d5e1);
    for i in (1..nodes).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut faults = Vec::with_capacity(kill * 2);
    for &node in order.iter().take(kill) {
        faults.push(NodeFault {
            at_offset: down_offset,
            node,
            kind: NodeFaultKind::Down,
        });
        faults.push(NodeFault {
            at_offset: up_offset,
            node,
            kind: NodeFaultKind::Up,
        });
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_storm_is_seeded_and_sized() {
        let a = crash_storm(7, 10, 0.3, 1_000, 5_000);
        let b = crash_storm(7, 10, 0.3, 1_000, 5_000);
        assert_eq!(a, b, "same seed, same storm");
        assert_ne!(a, crash_storm(8, 10, 0.3, 1_000, 5_000));
        // 30% of 10 nodes: 3 distinct victims, one Down + one Up each.
        let downs: Vec<usize> = a
            .iter()
            .filter(|f| f.kind == NodeFaultKind::Down)
            .map(|f| f.node)
            .collect();
        assert_eq!(downs.len(), 3);
        let mut unique = downs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "victims are distinct");
        assert!(a
            .iter()
            .filter(|f| f.kind == NodeFaultKind::Up)
            .all(|f| downs.contains(&f.node) && f.at_offset == 5_000));
    }

    #[test]
    fn at_least_one_victim() {
        let storm = crash_storm(1, 3, 0.01, 10, 20);
        assert_eq!(
            storm
                .iter()
                .filter(|f| f.kind == NodeFaultKind::Down)
                .count(),
            1
        );
    }
}

//! The bit-deterministic multi-node discrete-event kernel.
//!
//! Same architecture as `sig_serving::sim` — a seeded virtual clock, a
//! `BinaryHeap` of events ordered `(time, push-order)` — scaled out to a
//! fleet: every [`Node`] owns a real `ExecutionEnv` + governor + admission
//! controller, a [`ClusterDispatcher`] routes each arrival, and a
//! [`PowerCapController`] re-targets per-node busy-slot budgets and
//! frequency caps on a control tick so the fleet's modelled draw never
//! exceeds the global cap.
//!
//! Everything is a pure function of `(config, classes, schedule, faults,
//! seed)`: no wall clock, no hash-map iteration, one `SplitMix64` for every
//! draw. Two runs with the same inputs produce byte-identical
//! [`ClusterPhaseReport::fingerprint`]s — at 4 nodes or 400.
//!
//! Power is integrated **exactly**: the fleet's modelled draw is piecewise
//! constant between events, so the kernel advances
//! `∫P dt` and `∫max(0, P − cap) dt` at every event boundary and refreshes
//! the cached per-node watts whenever a busy set changes. The cap guarantee
//! is therefore checked against the same ledger the controller budgets.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use sig_core::{DispatchContext, ExecutionMode, Governor, NominalGovernor, Policy};
use sig_energy::{
    BudgetConfig, BudgetController, BudgetSetpoint, EnergyReading, PowerModel, SleepState,
    TransitionCost, UtilizationPowerCurve,
};
use sig_serving::{
    AdmissionConfig, AdmissionDecision, RequestClass, RequestOutcome, ServingStats, SplitMix64,
    ViolationKind,
};

use crate::cap::{CapConfig, ClusterAdmission, PowerCapController};
use crate::dispatch::{ClusterDispatcher, DispatchPolicy, RouteCandidate};
use crate::faults::{NodeFault, NodeFaultKind};
use crate::node::{Node, RunningAttempt};
use crate::report::ClusterPhaseReport;

/// Smoothing factor for each node's routed-load EWMA (updated per control
/// tick).
const LOAD_EWMA_ALPHA: f64 = 0.3;

/// Tuning for a [`ClusterSim`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Fleet size.
    pub nodes: usize,
    /// Simulated workers (cores) per node.
    pub workers_per_node: usize,
    /// Tier-0 service time of an attempt, virtual nanoseconds.
    pub base_service_nanos: u64,
    /// Per-attempt transient-fault probability, per mille (a faulted
    /// attempt burns half its service time, then panics).
    pub panic_per_mille: u16,
    /// Seed for fault and backoff draws.
    pub seed: u64,
    /// Per-node admission tuning. The default raises the node-local shed
    /// knees well above the cluster controller's, so fleet-level shedding —
    /// monotone by construction — owns the shed decision and nodes mostly
    /// degrade.
    pub admission: AdmissionConfig,
    /// Global power-cap controller tuning.
    pub cap: CapConfig,
    /// Routing policy.
    pub policy: DispatchPolicy,
    /// Per-node power model (prices each node's `ExecutionEnv`).
    pub node_model: PowerModel,
    /// Per-node utilization→watts curve (prices the cap ledger).
    pub curve: UtilizationPowerCurve,
    /// Sleep state race-to-idle residency is priced at.
    pub sleep: Option<SleepState>,
    /// Cost per frequency-domain switch.
    pub transition_cost: TransitionCost,
    /// Optional fleet-wide energy budget. When set, a [`BudgetController`]
    /// samples the summed per-node energy ledgers at every control tick and
    /// drives [`PowerCapController::set_cap_watts`] with its planned
    /// sustainable rate — the global watt cap becomes the budget loop's
    /// actuator instead of a fixed input. The configured `cap.cap_watts`
    /// stays in force as a ceiling the budget can only tighten.
    pub budget: Option<BudgetConfig>,
}

/// The default per-node power model: a small 2-core node.
pub fn default_node_model(workers: usize) -> PowerModel {
    PowerModel {
        sockets: 1,
        cores_per_socket: workers,
        static_watts_per_socket: 2.0,
        active_watts_per_core: 6.6,
        idle_watts_per_core: 0.5,
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let workers = 2;
        let node_model = default_node_model(workers);
        ClusterConfig {
            nodes: 4,
            workers_per_node: workers,
            base_service_nanos: 1_000_000, // 1 ms
            panic_per_mille: 0,
            seed: 42,
            admission: AdmissionConfig {
                queue_watermark: 8 * workers,
                shed_start: 3.0,
                shed_full: 6.0,
                ..AdmissionConfig::default()
            },
            cap: CapConfig::default(),
            policy: DispatchPolicy::SignificanceAware,
            node_model,
            curve: UtilizationPowerCurve::linear(node_model),
            sleep: None,
            transition_cost: TransitionCost::free(),
            budget: None,
        }
    }
}

enum EventKind {
    Arrival {
        class: usize,
    },
    Finish {
        node: usize,
        worker: usize,
        epoch: u64,
        request: usize,
        busy_nanos: u64,
        panicked: bool,
    },
    Retry {
        request: usize,
    },
    Tick,
    Fault {
        node: usize,
        kind: NodeFaultKind,
    },
}

struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: earliest event first, ties by push order — deterministic.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct ClusterRequest {
    class: usize,
    arrival: u64,
    deadline: u64,
    tier: usize,
    /// Fleet-forced ladder floor; retries never rise above it.
    min_tier: usize,
    downgraded: bool,
    attempts: u32,
    terminal: bool,
}

/// Per-phase mutable state, kept off `ClusterSim` so the borrow checker
/// lets event handlers touch nodes and phase books independently.
struct Phase {
    requests: Vec<ClusterRequest>,
    heap: BinaryHeap<Event>,
    seq: u64,
    /// The cluster's own book: all `offered`, plus ingress sheds.
    cluster_book: ServingStats,
    lost_to_crash: u64,
    lost_by_class: Vec<u64>,
    outstanding: usize,
    arrivals_remaining: usize,
    max_shed_significance: f64,
    accurate_scaled: u64,
}

impl Phase {
    fn push(&mut self, at: u64, kind: EventKind) {
        self.heap.push(Event {
            at,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }
}

/// The multi-node discrete-event simulator (see module docs). Successive
/// [`ClusterSim::run`] calls share node, controller, and energy state: a
/// pre-storm / storm / post-storm sequence is three calls on one simulator.
pub struct ClusterSim {
    config: ClusterConfig,
    classes: Vec<RequestClass>,
    nodes: Vec<Node>,
    dispatcher: ClusterDispatcher,
    cap: PowerCapController,
    rng: SplitMix64,
    now: u64,
    route_buf: Vec<RouteCandidate>,
    // Exact piecewise-constant power integration (cumulative).
    fleet_watts: f64,
    last_power_at: u64,
    power_integral_joules: f64,
    violation_joules: f64,
    // Phase watermarks for the cumulative ledgers.
    consumed_env_joules: f64,
    consumed_power_integral: f64,
    consumed_violation: f64,
    // Fleet-wide energy-budget loop (see `ClusterConfig::budget`).
    budget: Option<BudgetController>,
    /// The build-time watt cap: a ceiling the budget loop never exceeds.
    configured_cap_watts: f64,
}

impl ClusterSim {
    /// A simulator whose nodes all run a [`NominalGovernor`] inside their
    /// frequency-cap wrapper (all energy differentiation comes from routing
    /// and the cap controller).
    pub fn new(config: ClusterConfig, classes: Vec<RequestClass>) -> Self {
        Self::with_governors(config, classes, |_| Arc::new(NominalGovernor))
    }

    /// A simulator with a per-node inner governor chosen by `factory`
    /// (called with each node index) — how the cluster conformance harness
    /// puts every existing governor inside a node.
    pub fn with_governors(
        config: ClusterConfig,
        classes: Vec<RequestClass>,
        factory: impl Fn(usize) -> Arc<dyn Governor>,
    ) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        assert!(config.workers_per_node > 0);
        assert!(config.base_service_nanos > 0);
        for class in &classes {
            class.validate();
        }
        let nodes: Vec<Node> = (0..config.nodes)
            .map(|index| {
                Node::new(
                    index,
                    config.workers_per_node,
                    config.admission,
                    config.curve,
                    config.node_model,
                    factory(index),
                    config.sleep,
                    config.transition_cost,
                )
            })
            .collect();
        let fleet_watts = nodes.iter().map(|n| n.watts()).sum();
        let budget = config.budget.map(BudgetController::new);
        let configured_cap_watts = config.cap.cap_watts;
        let mut sim = ClusterSim {
            dispatcher: ClusterDispatcher::new(config.policy),
            cap: PowerCapController::new(config.cap),
            rng: SplitMix64::new(config.seed ^ 0xc105_7e2d_15b4_7c11),
            classes,
            nodes,
            config,
            now: 0,
            route_buf: Vec::new(),
            fleet_watts,
            last_power_at: 0,
            power_integral_joules: 0.0,
            violation_joules: 0.0,
            consumed_env_joules: 0.0,
            consumed_power_integral: 0.0,
            consumed_violation: 0.0,
            budget,
            configured_cap_watts,
        };
        sim.cap.retarget(&mut sim.nodes);
        sim
    }

    /// The fleet (read-only; for tests and benches).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The power-cap controller's live state.
    pub fn cap_controller(&self) -> &PowerCapController {
        &self.cap
    }

    /// Virtual now, nanoseconds since simulator construction.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The summed per-node cumulative energy reading at virtual time `at`.
    /// This is the exact ledger the budget loop observes — crash/restart
    /// safe, because each node's `ExecutionEnv` ledger survives restarts.
    pub fn fleet_reading(&self, at: u64) -> EnergyReading {
        let wall = at as f64 * 1e-9;
        let mut joules = 0.0;
        let mut busy = 0.0;
        for node in &self.nodes {
            let reading = node.energy_report(at).reading();
            joules += reading.joules;
            busy += reading.busy_core_seconds;
        }
        EnergyReading {
            wall_seconds: wall,
            busy_core_seconds: busy,
            joules,
            average_watts: if wall > 0.0 { joules / wall } else { 0.0 },
            breakdown: Default::default(),
        }
    }

    /// The budget loop's latest setpoint, if a budget is configured.
    pub fn budget_setpoint(&self) -> Option<BudgetSetpoint> {
        self.budget.as_ref().map(|controller| controller.setpoint())
    }

    /// Cumulative joules the budget controller has accounted, if a budget
    /// is configured. Always equals the summed per-node reading at the
    /// controller's last observation — the cross-tier accounting identity.
    pub fn budget_spent_joules(&self) -> Option<f64> {
        self.budget.as_ref().map(BudgetController::spent_joules)
    }

    /// The budget controller's last observation `(elapsed_seconds,
    /// busy_core_seconds, joules)` — the anchor for the cross-tier
    /// accounting identity: re-reading [`ClusterSim::fleet_reading`] at that
    /// instant must reproduce `joules` bit for bit, crashes included.
    pub fn budget_observation(&self) -> Option<(f64, f64, f64)> {
        self.budget
            .as_ref()
            .and_then(BudgetController::last_observation)
    }

    /// Feed the budget loop one observation at virtual time `at` and drive
    /// the watt-cap actuator. No-op without a configured budget.
    fn budget_tick(&mut self, at: u64) {
        if self.budget.is_none() {
            return;
        }
        let reading = self.fleet_reading(at);
        let controller = self.budget.as_mut().expect("checked above");
        let setpoint = controller.observe(at as f64 * 1e-9, &reading);
        // The budget only ever tightens the configured cap; a generous
        // plan never uncaps a fleet built with a hard watt limit.
        let cap = setpoint.watt_cap.min(self.configured_cap_watts);
        if cap.is_finite() || self.configured_cap_watts.is_finite() {
            self.cap.set_cap_watts(cap.max(1e-9));
        }
    }

    /// Service time of one attempt of `class` at `tier`, before frequency
    /// dilation.
    fn service_nanos(&self, class: usize, tier: usize) -> u64 {
        let spec = &self.classes[class];
        let quality = spec.tiers[spec.clamp_tier(tier)];
        ((self.config.base_service_nanos as f64 * quality.work_factor) as u64).max(1)
    }

    /// Advance the exact power integrals to virtual time `at`.
    fn advance_power(&mut self, at: u64) {
        let now = self.now.max(at);
        if now > self.last_power_at {
            let dt = (now - self.last_power_at) as f64 * 1e-9;
            self.power_integral_joules += self.fleet_watts * dt;
            let over = self.fleet_watts - self.cap.config().cap_watts;
            if over > 0.0 {
                self.violation_joules += over * dt;
            }
            self.last_power_at = now;
        }
        self.now = now;
    }

    /// Refresh node `n`'s cached watts and the fleet total after its busy
    /// set (or up state) changed. Call **after** `advance_power`.
    fn refresh_watts(&mut self, n: usize) {
        let watts = self.nodes[n].watts();
        self.fleet_watts += watts - self.nodes[n].cached_watts;
        self.nodes[n].cached_watts = watts;
    }

    /// Run one phase: `schedule` pairs `(arrival offset from phase start,
    /// class index)` ascending, `faults` node up/down events at phase
    /// offsets. Returns when every offered request of the phase is terminal.
    /// Node, controller, and energy state carry over to the next phase.
    pub fn run(&mut self, schedule: &[(u64, usize)], faults: &[NodeFault]) -> ClusterPhaseReport {
        let phase_start = self.now;
        for node in &mut self.nodes {
            node.book = ServingStats::default();
        }
        let mut phase = Phase {
            requests: Vec::with_capacity(schedule.len()),
            heap: BinaryHeap::with_capacity(schedule.len() * 2 + faults.len() + 16),
            seq: 0,
            cluster_book: ServingStats::default(),
            lost_to_crash: 0,
            lost_by_class: vec![0; self.classes.len()],
            outstanding: 0,
            arrivals_remaining: schedule.len(),
            max_shed_significance: -1.0,
            accurate_scaled: 0,
        };
        for &(offset, class) in schedule {
            phase.push(
                phase_start.saturating_add(offset),
                EventKind::Arrival { class },
            );
        }
        for fault in faults {
            phase.push(
                phase_start.saturating_add(fault.at_offset),
                EventKind::Fault {
                    node: fault.node,
                    kind: fault.kind,
                },
            );
        }
        let tick = self.cap.config().tick_nanos;
        phase.push(phase_start.saturating_add(tick), EventKind::Tick);
        self.cap.retarget(&mut self.nodes);

        while let Some(event) = phase.heap.pop() {
            self.advance_power(event.at);
            let at = self.now;
            match event.kind {
                EventKind::Arrival { class } => {
                    phase.arrivals_remaining -= 1;
                    phase.cluster_book.offered += 1;
                    phase.cluster_book.note_offered_class(class);
                    self.admit_and_route(&mut phase, None, class, at);
                }
                EventKind::Finish {
                    node,
                    worker,
                    epoch,
                    request,
                    busy_nanos,
                    panicked,
                } => {
                    if self.nodes[node].epoch != epoch || phase.requests[request].terminal {
                        // Stale: the node crashed under this attempt and the
                        // crash handler already ledgered the request and
                        // reset the workers.
                        continue;
                    }
                    self.nodes[node].finish_worker(worker);
                    self.refresh_watts(node);
                    if panicked {
                        self.resolve_transient(&mut phase, node, request, at);
                    } else {
                        let req = &phase.requests[request];
                        let latency = at.saturating_sub(req.arrival);
                        let missed = at > req.deadline;
                        let (tier, retries) = (req.tier, req.attempts.saturating_sub(1));
                        self.nodes[node].admission.observe(busy_nanos, missed);
                        let outcome = if missed {
                            RequestOutcome::Violated(ViolationKind::Late)
                        } else {
                            RequestOutcome::Completed {
                                tier,
                                latency_nanos: latency,
                                retries,
                            }
                        };
                        Self::finalize_on_node(&mut self.nodes[node], &mut phase, request, outcome);
                    }
                    self.start_attempts(&mut phase, node);
                }
                EventKind::Retry { request } => {
                    if phase.requests[request].terminal {
                        continue;
                    }
                    let class = phase.requests[request].class;
                    self.admit_and_route(&mut phase, Some(request), class, at);
                }
                EventKind::Tick => {
                    self.budget_tick(at);
                    self.cap.observe(&self.nodes);
                    self.cap.retarget(&mut self.nodes);
                    self.expire_queued(&mut phase, at);
                    for n in 0..self.nodes.len() {
                        let depth = self.nodes[n].depth() as f64;
                        let node = &mut self.nodes[n];
                        node.load_ewma += LOAD_EWMA_ALPHA * (depth - node.load_ewma);
                        if node.is_up() {
                            self.start_attempts(&mut phase, n);
                        }
                    }
                    if phase.outstanding > 0 || phase.arrivals_remaining > 0 {
                        phase.push(at.saturating_add(tick), EventKind::Tick);
                    }
                }
                EventKind::Fault { node, kind } => match kind {
                    NodeFaultKind::Down => {
                        if self.nodes[node].is_up() {
                            let lost = self.nodes[node].crash(at);
                            self.refresh_watts(node);
                            for request in lost {
                                let req = &mut phase.requests[request];
                                debug_assert!(!req.terminal);
                                req.terminal = true;
                                phase.lost_to_crash += 1;
                                phase.lost_by_class[req.class] += 1;
                                phase.outstanding -= 1;
                            }
                            self.cap.retarget(&mut self.nodes);
                        }
                    }
                    NodeFaultKind::Up => {
                        if !self.nodes[node].is_up() {
                            self.nodes[node].restart(at);
                            self.refresh_watts(node);
                            self.cap.retarget(&mut self.nodes);
                        }
                    }
                },
            }
        }

        let wall_nanos = self.now - phase_start;
        let total_env_joules: f64 = self
            .nodes
            .iter()
            .map(|node| node.energy_report(self.now).reading().joules)
            .sum();
        let joules = total_env_joules - self.consumed_env_joules;
        self.consumed_env_joules = total_env_joules;
        let power_integral_joules = self.power_integral_joules - self.consumed_power_integral;
        self.consumed_power_integral = self.power_integral_joules;
        let violation_joules = self.violation_joules - self.consumed_violation;
        self.consumed_violation = self.violation_joules;

        let mut stats = phase.cluster_book;
        for node in &self.nodes {
            stats.merge(&node.book);
        }
        ClusterPhaseReport {
            stats,
            lost_to_crash: phase.lost_to_crash,
            lost_by_class: phase.lost_by_class,
            joules,
            power_integral_joules,
            violation_joules,
            wall_nanos,
            max_shed_significance: phase.max_shed_significance,
            accurate_scaled: phase.accurate_scaled,
        }
    }

    /// Cluster-admit and route one request — a fresh arrival
    /// (`existing == None`) or a retrying one.
    fn admit_and_route(
        &mut self,
        phase: &mut Phase,
        existing: Option<usize>,
        class: usize,
        at: u64,
    ) {
        let significance = self.classes[class].significance();
        let ladder = self.classes[class].tiers.len();
        let min_tier = match self.cap.admit(significance, ladder) {
            ClusterAdmission::Shed => {
                phase.cluster_book.record(&RequestOutcome::Shed);
                phase.cluster_book.note_shed_class(class);
                phase.max_shed_significance = phase.max_shed_significance.max(significance);
                if let Some(request) = existing {
                    let req = &mut phase.requests[request];
                    if req.downgraded {
                        phase.cluster_book.downgraded += 1;
                    }
                    req.terminal = true;
                    phase.outstanding -= 1;
                }
                return;
            }
            ClusterAdmission::Admit { min_tier } => min_tier,
        };
        self.route_buf.clear();
        for node in &self.nodes {
            self.route_buf.push(RouteCandidate {
                index: node.index(),
                up: node.is_up(),
                depth: node.depth(),
                load_ewma: node.load_ewma,
                allowed: node.allowed(),
                freq_cap: node.freq_cap(),
            });
        }
        let Some(n) = self.dispatcher.route(&self.route_buf, significance) else {
            // No node is up: the request is lost to the outage, not shed —
            // shedding is a *decision*, this is an accounted loss.
            if let Some(request) = existing {
                let req = &mut phase.requests[request];
                req.terminal = true;
                phase.outstanding -= 1;
            }
            phase.lost_to_crash += 1;
            phase.lost_by_class[class] += 1;
            return;
        };
        debug_assert!(self.nodes[n].is_up(), "routed to a down node");
        let spec = &self.classes[class];
        let depth = self.nodes[n].depth();
        match self.nodes[n].admission.decide(spec, depth) {
            AdmissionDecision::Shed => {
                self.nodes[n].book.record(&RequestOutcome::Shed);
                self.nodes[n].book.note_shed_class(class);
                phase.max_shed_significance = phase.max_shed_significance.max(significance);
                if let Some(request) = existing {
                    let req = &mut phase.requests[request];
                    if req.downgraded {
                        self.nodes[n].book.downgraded += 1;
                    }
                    req.terminal = true;
                    phase.outstanding -= 1;
                }
            }
            AdmissionDecision::Admit { tier } => {
                let request = match existing {
                    Some(request) => {
                        let floor = phase.requests[request].tier.max(min_tier);
                        let req = &mut phase.requests[request];
                        req.min_tier = req.min_tier.max(min_tier);
                        req.tier = spec.clamp_tier(tier.max(floor));
                        req.downgraded |= req.tier > 0;
                        request
                    }
                    None => {
                        let tier = spec.clamp_tier(tier.max(min_tier));
                        phase.requests.push(ClusterRequest {
                            class,
                            arrival: at,
                            deadline: at.saturating_add(spec.deadline.as_nanos() as u64),
                            tier,
                            min_tier,
                            downgraded: tier > 0,
                            attempts: 0,
                            terminal: false,
                        });
                        phase.outstanding += 1;
                        phase.requests.len() - 1
                    }
                };
                self.nodes[n].ready.push_back(request);
                self.start_attempts(phase, n);
            }
        }
    }

    /// Start attempts on node `n` while it has ready work, free workers,
    /// and busy-slot budget.
    fn start_attempts(&mut self, phase: &mut Phase, n: usize) {
        let at = self.now;
        let mut busy_set_changed = false;
        while self.nodes[n].is_up()
            && self.nodes[n].busy_count() < self.nodes[n].allowed()
            && !self.nodes[n].ready.is_empty()
        {
            let request = self.nodes[n].ready.pop_front().unwrap();
            let worker = self.nodes[n].free_workers.pop().unwrap();
            let req = &mut phase.requests[request];
            req.attempts += 1;
            let spec = &self.classes[req.class];
            let tier = spec.clamp_tier(req.tier);
            let quality = spec.tiers[tier];
            let service =
                ((self.config.base_service_nanos as f64 * quality.work_factor) as u64).max(1);
            let accurate = tier == 0;
            let ctx = DispatchContext {
                worker,
                significance: quality.significance.into(),
                accurate,
                policy: Policy::SignificanceAgnostic,
                group_ratio: 1.0,
                deadline_pressure: at.saturating_add(service) > req.deadline,
            };
            let decision = self.nodes[n].env().dispatch(worker, &ctx);
            if accurate && !decision.scale().is_nominal() {
                phase.accurate_scaled += 1;
            }
            let panicked = self.config.panic_per_mille > 0
                && self.rng.next_u64() % 1000 < u64::from(self.config.panic_per_mille);
            // A faulted attempt burns half its service time before dying.
            let busy = if panicked {
                (service / 2).max(1)
            } else {
                service
            };
            let wall = (busy as f64 * decision.scale().time_dilation()) as u64;
            let mode = if accurate {
                ExecutionMode::Accurate
            } else {
                ExecutionMode::Approximate
            };
            self.nodes[n]
                .env()
                .record(worker, mode, Duration::from_nanos(busy), decision);
            self.nodes[n].recorded_busy_nanos += busy;
            self.nodes[n].start_worker(
                worker,
                RunningAttempt {
                    request,
                    power_factor: decision.scale().power_factor(),
                },
            );
            busy_set_changed = true;
            phase.push(
                at.saturating_add(wall.max(1)),
                EventKind::Finish {
                    node: n,
                    worker,
                    epoch: self.nodes[n].epoch,
                    request,
                    busy_nanos: busy,
                    panicked,
                },
            );
        }
        if busy_set_changed {
            self.refresh_watts(n);
        }
    }

    /// Expire queued requests whose deadline has already passed (finalised
    /// as `Late` on the holding node's book). Runs on every control tick:
    /// this is the liveness backstop that keeps a phase terminating even
    /// when an infeasible cap pins a node's busy-slot budget at zero — the
    /// queue drains through the deadline sweep instead of never.
    fn expire_queued(&mut self, phase: &mut Phase, at: u64) {
        for n in 0..self.nodes.len() {
            if self.nodes[n].ready.is_empty() {
                continue;
            }
            let expired: Vec<usize> = self.nodes[n]
                .ready
                .iter()
                .copied()
                .filter(|&request| phase.requests[request].deadline <= at)
                .collect();
            if expired.is_empty() {
                continue;
            }
            let requests = &phase.requests;
            self.nodes[n]
                .ready
                .retain(|&request| requests[request].deadline > at);
            for request in expired {
                Self::finalize_on_node(
                    &mut self.nodes[n],
                    phase,
                    request,
                    RequestOutcome::Violated(ViolationKind::Late),
                );
            }
        }
    }

    /// A transient (panicked) attempt on node `n`: back off and retry
    /// within the deadline budget — possibly on another node — or finalise
    /// as an accounted violation.
    fn resolve_transient(&mut self, phase: &mut Phase, n: usize, request: usize, at: u64) {
        let (class, tier, attempts) = {
            let req = &phase.requests[request];
            (req.class, req.tier, req.attempts)
        };
        let spec = &self.classes[class];
        if attempts > spec.retry.max_retries {
            let service = self.service_nanos(class, tier);
            self.nodes[n].admission.observe(service, true);
            Self::finalize_on_node(
                &mut self.nodes[n],
                phase,
                request,
                RequestOutcome::Violated(ViolationKind::RetriesExhausted),
            );
            return;
        }
        let backoff = spec.retry.backoff_nanos(attempts, &mut self.rng);
        let expected = self.nodes[n]
            .admission
            .expected_service_nanos()
            .max(self.service_nanos(class, tier));
        let resume = at.saturating_add(backoff);
        if resume.saturating_add(expected) > phase.requests[request].deadline {
            self.nodes[n].admission.observe(expected, true);
            Self::finalize_on_node(
                &mut self.nodes[n],
                phase,
                request,
                RequestOutcome::Violated(ViolationKind::BudgetExhausted),
            );
            return;
        }
        // The retry re-enters *cluster* dispatch at resume time: it may be
        // re-routed to a healthier node (the request is "at the client"
        // while backing off — a node crash does not lose it).
        phase.push(resume, EventKind::Retry { request });
    }

    /// Record a terminal outcome on `node`'s book and close the request.
    fn finalize_on_node(
        node: &mut Node,
        phase: &mut Phase,
        request: usize,
        outcome: RequestOutcome,
    ) {
        node.book.record(&outcome);
        let req = &mut phase.requests[request];
        if req.downgraded {
            node.book.downgraded += 1;
        }
        req.terminal = true;
        phase.outstanding -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::crash_storm;
    use sig_serving::{QualityTier, RetryPolicy};

    fn ladder_class(name: &str, significance: f64) -> RequestClass {
        RequestClass {
            name: name.into(),
            tiers: vec![
                QualityTier {
                    significance,
                    work_factor: 1.0,
                },
                QualityTier {
                    significance: significance * 0.6,
                    work_factor: 0.5,
                },
                QualityTier {
                    significance: significance * 0.3,
                    work_factor: 0.25,
                },
            ],
            deadline: Duration::from_millis(20),
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(100),
                jitter: 0.5,
            },
        }
    }

    fn classes() -> Vec<RequestClass> {
        vec![
            RequestClass::exact(
                "critical",
                1.0,
                Duration::from_millis(20),
                RetryPolicy {
                    max_retries: 2,
                    base_backoff: Duration::from_micros(100),
                    jitter: 0.5,
                },
            ),
            ladder_class("standard", 0.7),
            ladder_class("background", 0.3),
        ]
    }

    /// `count` arrivals at a fixed spacing, round-robined over the classes.
    fn schedule(count: usize, spacing: u64, classes: usize) -> Vec<(u64, usize)> {
        (0..count)
            .map(|i| (i as u64 * spacing, i % classes))
            .collect()
    }

    #[test]
    fn light_load_completes_everything() {
        let config = ClusterConfig::default();
        let mut sim = ClusterSim::new(config, classes());
        // 4 nodes × 2 workers at 1 ms service: 8 req/ms capacity; offer
        // one request every 250 µs — far below capacity.
        let report = sim.run(&schedule(200, 250_000, 3), &[]);
        assert!(report.balanced(), "fleet identity must hold");
        assert_eq!(report.stats.offered, 200);
        assert_eq!(report.stats.completed, 200);
        assert_eq!(report.stats.shed, 0);
        assert_eq!(report.lost_to_crash, 0);
        assert_eq!(report.violation_joules, 0.0, "uncapped: no violation");
        assert!(report.joules > 0.0, "real environments price real energy");
        assert!(report.power_integral_joules > 0.0);
        assert_eq!(report.accurate_scaled, 0);
    }

    #[test]
    fn tight_cap_holds_and_sheds_monotonically() {
        let mut config = ClusterConfig::default();
        // Fleet idle floor 4 × 3.0 W = 12 W; full draw 4 × 15.2 W = 60.8 W.
        // 25 W affords the floor plus two busy slots (6.1 W marginal each).
        config.cap.cap_watts = 25.0;
        let mut sim = ClusterSim::new(config, classes());
        // Overload: 2 granted slots serve ~2 req/ms; offer 5/ms.
        let report = sim.run(&schedule(2_000, 200_000, 3), &[]);
        assert!(report.balanced());
        assert_eq!(
            report.violation_joules, 0.0,
            "a feasible cap must hold at every instant"
        );
        assert!(
            report.average_watts() <= 25.0,
            "mean draw {} exceeds the cap",
            report.average_watts()
        );
        assert!(
            report.max_shed_significance < 1.0,
            "critical work is never shed"
        );
        // Overload at 2.5× granted capacity must shed or violate something.
        assert!(report.stats.completed < report.stats.offered);
        // Shedding is a significance-axis prefix: background sheds at least
        // as hard as standard, standard at least as hard as critical.
        let shed = |class: usize| report.stats.shed_fraction(class);
        assert!(shed(2) >= shed(1));
        assert!(shed(1) >= shed(0));
        assert_eq!(
            report.stats.shed_by_class[0], 0,
            "significance-1.0 requests are never shed"
        );
    }

    #[test]
    fn crash_storm_loses_work_but_books_balance() {
        let config = ClusterConfig {
            nodes: 6,
            panic_per_mille: 50,
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(config, classes());
        let faults = crash_storm(9, 6, 0.3, 5_000_000, 30_000_000);
        let report = sim.run(&schedule(1_000, 100_000, 3), &faults);
        assert!(report.balanced(), "losses must be ledgered, not leaked");
        assert!(report.lost_to_crash > 0, "a storm at 2× load loses work");
        assert_eq!(
            report.lost_by_class.iter().sum::<u64>(),
            report.lost_to_crash
        );
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let run = || {
            let mut config = ClusterConfig {
                panic_per_mille: 20,
                ..ClusterConfig::default()
            };
            config.cap.cap_watts = 25.0;
            let mut sim = ClusterSim::new(config, classes());
            let faults = crash_storm(3, 4, 0.3, 2_000_000, 10_000_000);
            sim.run(&schedule(500, 150_000, 3), &faults).fingerprint()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn phases_carry_energy_and_clock_forward() {
        let mut sim = ClusterSim::new(ClusterConfig::default(), classes());
        let first = sim.run(&schedule(50, 250_000, 3), &[]);
        let clock = sim.now();
        let second = sim.run(&schedule(50, 250_000, 3), &[]);
        assert!(sim.now() > clock, "virtual time is monotone across phases");
        assert!(first.joules > 0.0 && second.joules > 0.0);
        assert!(first.balanced() && second.balanced());
        assert_eq!(second.stats.completed, 50, "phase books reset");
    }
}

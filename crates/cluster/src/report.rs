//! Fleet-level phase reports: the merged scoreboard, two energy ledgers,
//! and the cap-violation integral.
//!
//! A cluster run carries **two** energy numbers, deliberately distinct:
//!
//! * [`ClusterPhaseReport::joules`] — the sum of every node's real
//!   [`EnergyReport`](sig_core::EnergyReport) reading (static + dynamic +
//!   idle + transitions over each node's up-time). This is the number
//!   "joules per completed request" divides, comparable with the
//!   single-node serving bench.
//! * [`ClusterPhaseReport::power_integral_joules`] — the exact piecewise-
//!   constant integral of the fleet's modelled *instantaneous* draw (the
//!   per-node [`UtilizationPowerCurve`](sig_energy::UtilizationPowerCurve)
//!   at the busy set of every moment). The cap guarantee is stated against
//!   this ledger: [`ClusterPhaseReport::violation_joules`] integrates only
//!   the part *above* the cap and must be zero whenever the cap is
//!   feasible.

use sig_serving::ServingStats;

/// The scoreboard and energy bill of one cluster phase.
#[derive(Debug)]
pub struct ClusterPhaseReport {
    /// Fleet-merged request accounting: `offered` counted once at cluster
    /// ingress, outcomes merged from every node's book plus the cluster's
    /// own (ingress sheds).
    pub stats: ServingStats,
    /// Requests lost because their node crashed — ledgered separately from
    /// sheds and violations (nothing is lost silently, the fleet identity
    /// includes this bucket).
    pub lost_to_crash: u64,
    /// Lost-to-crash requests by class index.
    pub lost_by_class: Vec<u64>,
    /// Node-environment energy for the phase, joules (see module docs).
    pub joules: f64,
    /// Integral of the fleet's modelled instantaneous draw, joules.
    pub power_integral_joules: f64,
    /// Integral of modelled draw **above the cap**, joules. Zero means the
    /// cap held at every instant of the phase.
    pub violation_joules: f64,
    /// Virtual span of the phase, nanoseconds.
    pub wall_nanos: u64,
    /// Highest best-tier significance of any shed request this phase
    /// (negative when nothing was shed). Must stay strictly below 1.0.
    pub max_shed_significance: f64,
    /// Accurate (tier-0) dispatches that executed below nominal frequency.
    /// The cluster conformance harness pins this to zero: no cap pressure
    /// may scale critical work.
    pub accurate_scaled: u64,
}

impl ClusterPhaseReport {
    /// The fleet accounting identity:
    /// `offered == completed + violations + shed + lost_to_crash`.
    pub fn balanced(&self) -> bool {
        self.stats.offered
            == self.stats.completed + self.stats.violations() + self.stats.shed + self.lost_to_crash
    }

    /// Fraction of offered requests completed within deadline.
    pub fn goodput(&self) -> f64 {
        if self.stats.offered == 0 {
            0.0
        } else {
            self.stats.completed as f64 / self.stats.offered as f64
        }
    }

    /// Node-environment joules per completed request (`inf` if energy was
    /// spent and nothing completed).
    pub fn joules_per_completed(&self) -> f64 {
        if self.stats.completed == 0 {
            if self.joules == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.joules / self.stats.completed as f64
        }
    }

    /// Mean modelled fleet draw over the phase, watts.
    pub fn average_watts(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.power_integral_joules / (self.wall_nanos as f64 * 1e-9)
        }
    }

    /// A byte-deterministic one-line summary: every float is rendered as
    /// its exact IEEE-754 bit pattern, so two runs agree **iff** they are
    /// bit-identical. The determinism replay test compares these across
    /// whole cluster runs.
    pub fn fingerprint(&self) -> String {
        format!(
            "offered={} completed={} shed={} late={} retries_exhausted={} budget_exhausted={} \
             lost={} downgraded={} retries={} p50={} p99={} wall={} joules={:016x} \
             power={:016x} violation={:016x} max_shed_sig={:016x} accurate_scaled={}",
            self.stats.offered,
            self.stats.completed,
            self.stats.shed,
            self.stats.late,
            self.stats.retries_exhausted,
            self.stats.budget_exhausted,
            self.lost_to_crash,
            self.stats.downgraded,
            self.stats.retries,
            self.stats.latency.quantile(0.50),
            self.stats.latency.quantile(0.99),
            self.wall_nanos,
            self.joules.to_bits(),
            self.power_integral_joules.to_bits(),
            self.violation_joules.to_bits(),
            self.max_shed_significance.to_bits(),
            self.accurate_scaled,
        )
    }
}

//! Cluster-level request routing.
//!
//! The dispatcher sees the fleet as a slice of [`RouteCandidate`]s — the
//! kernel's per-node load/power snapshot — and picks a destination for one
//! request. Two policies share the interface:
//!
//! * [`DispatchPolicy::RoundRobin`] — significance-blind rotation over up
//!   nodes, the baseline every cluster paper routes against;
//! * [`DispatchPolicy::SignificanceAware`] — joint cost over normalised
//!   queue load and the node's **power state**: frequency-capped nodes are
//!   cheap-but-slow, so low-significance work is steered toward them (it
//!   will be degraded and clamped there anyway) and critical work away from
//!   them. The sign of the power term flips at significance 0.5, so the two
//!   halves of the significance axis sort themselves onto the two halves of
//!   the power-state spectrum.
//!
//! Both policies **never route to a down node** — the property test in
//! `tests/cluster_props.rs` drives arbitrary candidate fleets through both
//! to pin that down.

/// Relative weight of the power-state term against one queue-slot of load in
/// the significance-aware cost.
const ROUTE_POWER_WEIGHT: f64 = 4.0;

/// How one request is routed across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Significance/load/power-state joint cost (see module docs).
    SignificanceAware,
    /// Significance-blind rotation over up nodes.
    RoundRobin,
}

impl DispatchPolicy {
    /// Short name used in reports and bench JSON keys.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::SignificanceAware => "sig_aware",
            DispatchPolicy::RoundRobin => "round_robin",
        }
    }
}

/// One node's routing-relevant state, as the kernel snapshots it.
#[derive(Debug, Clone, Copy)]
pub struct RouteCandidate {
    /// Node index.
    pub index: usize,
    /// Whether the node is up (down nodes are never chosen).
    pub up: bool,
    /// Queued plus running requests on the node.
    pub depth: usize,
    /// Smoothed queue depth (EWMA), blended with the instantaneous depth.
    pub load_ewma: f64,
    /// Busy-worker budget the cap controller granted the node.
    pub allowed: usize,
    /// Frequency cap imposed on the node's non-critical work (1.0 = none).
    pub freq_cap: f64,
}

/// Routes requests across the fleet under one [`DispatchPolicy`].
#[derive(Debug)]
pub struct ClusterDispatcher {
    policy: DispatchPolicy,
    cursor: usize,
}

impl ClusterDispatcher {
    /// A dispatcher with the given policy.
    pub fn new(policy: DispatchPolicy) -> Self {
        ClusterDispatcher { policy, cursor: 0 }
    }

    /// The configured policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Choose a destination node for a request of the given (best-tier)
    /// significance, or `None` when no node is up. Never returns a down
    /// node.
    pub fn route(&mut self, candidates: &[RouteCandidate], significance: f64) -> Option<usize> {
        match self.policy {
            DispatchPolicy::RoundRobin => self.route_round_robin(candidates),
            DispatchPolicy::SignificanceAware => {
                Self::route_significance_aware(candidates, significance)
            }
        }
    }

    fn route_round_robin(&mut self, candidates: &[RouteCandidate]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let len = candidates.len();
        // Pass 0 considers only nodes with busy-slot budget; pass 1 accepts
        // any up node (an infeasible cap zeroes every budget — work still
        // lands somewhere and the kernel's deadline sweep accounts for it).
        for pass in 0..2 {
            for step in 0..len {
                let slot = (self.cursor + step) % len;
                let candidate = &candidates[slot];
                if candidate.up && (pass == 1 || candidate.allowed > 0) {
                    self.cursor = slot + 1;
                    return Some(candidate.index);
                }
            }
        }
        None
    }

    fn route_significance_aware(candidates: &[RouteCandidate], significance: f64) -> Option<usize> {
        Self::cheapest(candidates, significance, true)
            .or_else(|| Self::cheapest(candidates, significance, false))
    }

    fn cheapest(
        candidates: &[RouteCandidate],
        significance: f64,
        require_slots: bool,
    ) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for candidate in candidates {
            if !candidate.up || (require_slots && candidate.allowed == 0) {
                continue;
            }
            // Normalised load: instantaneous depth blended with the EWMA,
            // per granted busy slot (a throttled node absorbs load slower,
            // so the same queue weighs heavier there).
            let slots = candidate.allowed.max(1) as f64;
            let load = (candidate.depth as f64 + candidate.load_ewma) / slots;
            // Power-state term: positive cost on capped ("cheap") nodes for
            // high-significance work, negative (an attraction) for
            // low-significance work.
            let cheap = 1.0 - candidate.freq_cap;
            let cost = load + ROUTE_POWER_WEIGHT * (2.0 * significance - 1.0) * cheap;
            // Strict `<` keeps ties on the lowest index: deterministic.
            if best.is_none_or(|(best_cost, _)| cost < best_cost) {
                best = Some((cost, candidate.index));
            }
        }
        best.map(|(_, index)| index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(index: usize, up: bool, depth: usize, freq_cap: f64) -> RouteCandidate {
        RouteCandidate {
            index,
            up,
            depth,
            load_ewma: depth as f64,
            allowed: 2,
            freq_cap,
        }
    }

    #[test]
    fn round_robin_rotates_over_up_nodes_only() {
        let mut dispatcher = ClusterDispatcher::new(DispatchPolicy::RoundRobin);
        let fleet = vec![
            candidate(0, true, 0, 1.0),
            candidate(1, false, 0, 1.0),
            candidate(2, true, 0, 1.0),
        ];
        let picks: Vec<usize> = (0..4)
            .map(|_| dispatcher.route(&fleet, 0.5).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
        let all_down = vec![candidate(0, false, 0, 1.0)];
        assert_eq!(dispatcher.route(&all_down, 0.5), None);
        assert_eq!(dispatcher.route(&[], 0.5), None);
    }

    #[test]
    fn significance_steers_between_capped_and_full_nodes() {
        let mut dispatcher = ClusterDispatcher::new(DispatchPolicy::SignificanceAware);
        // Equal load; node 1 is frequency-capped (cheap-but-slow).
        let fleet = vec![candidate(0, true, 2, 1.0), candidate(1, true, 2, 0.5)];
        assert_eq!(
            dispatcher.route(&fleet, 1.0),
            Some(0),
            "critical work avoids the capped node"
        );
        assert_eq!(
            dispatcher.route(&fleet, 0.1),
            Some(1),
            "low-significance work prefers the capped node"
        );
    }

    #[test]
    fn load_dominates_when_power_states_match() {
        let mut dispatcher = ClusterDispatcher::new(DispatchPolicy::SignificanceAware);
        let fleet = vec![candidate(0, true, 9, 1.0), candidate(1, true, 1, 1.0)];
        for sig in [0.0, 0.5, 1.0] {
            assert_eq!(dispatcher.route(&fleet, sig), Some(1));
        }
        // Ties break to the lowest index, deterministically.
        let tied = vec![candidate(0, true, 3, 1.0), candidate(1, true, 3, 1.0)];
        assert_eq!(dispatcher.route(&tied, 0.7), Some(0));
    }
}

//! # sig-perforation — loop perforation baseline
//!
//! Loop perforation (Sidiroglou-Douskos et al., ESEC/FSE 2011) is the
//! comparator the paper evaluates against: a compiler transformation that
//! drops a fraction of a loop's iterations. "The perforated version executes
//! the same number of tasks as those executed accurately by our approach"
//! (Section 4.1), so the perforation *rate* is always derived from the same
//! ratio knob the significance runtime uses.
//!
//! This crate provides the iteration-selection machinery as reusable
//! combinators; the per-benchmark perforated drivers live next to each kernel
//! in `sig-kernels`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which fraction of loop iterations to *keep* (execute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerforationRate {
    keep: f64,
}

impl PerforationRate {
    /// Keep the given fraction of iterations (`1.0` = no perforation,
    /// `0.0` = drop everything).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is NaN or outside `[0.0, 1.0]`.
    pub fn keep(keep: f64) -> Self {
        assert!(
            keep.is_finite() && (0.0..=1.0).contains(&keep),
            "keep fraction must be in [0.0, 1.0], got {keep}"
        );
        PerforationRate { keep }
    }

    /// Drop the given fraction of iterations.
    pub fn drop_fraction(drop: f64) -> Self {
        assert!(
            drop.is_finite() && (0.0..=1.0).contains(&drop),
            "drop fraction must be in [0.0, 1.0], got {drop}"
        );
        PerforationRate { keep: 1.0 - drop }
    }

    /// The kept fraction.
    pub fn kept_fraction(self) -> f64 {
        self.keep
    }

    /// The dropped fraction.
    pub fn dropped_fraction(self) -> f64 {
        1.0 - self.keep
    }

    /// How many of `n` iterations are kept (rounded to nearest, clamped so
    /// that a non-zero keep fraction keeps at least one iteration of a
    /// non-empty loop).
    pub fn kept_count(self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let kept = (self.keep * n as f64).round() as usize;
        if self.keep > 0.0 {
            kept.clamp(1, n)
        } else {
            0
        }
    }
}

/// Deterministic, evenly spread selection of kept iteration indices in
/// `0..n` — the "interleaved" perforation scheme of the original paper,
/// which keeps every k-th iteration.
pub fn kept_indices(n: usize, rate: PerforationRate) -> Vec<usize> {
    let kept = rate.kept_count(n);
    if kept == 0 {
        return Vec::new();
    }
    if kept == n {
        return (0..n).collect();
    }
    // Spread the kept iterations evenly across the index space so the error
    // is distributed, mirroring interleaved perforation.
    (0..kept)
        .map(|i| (i as f64 * n as f64 / kept as f64).floor() as usize)
        .map(|idx| idx.min(n - 1))
        .collect()
}

/// Randomised selection of kept iteration indices (the "random" perforation
/// scheme), reproducible through the seed.
pub fn kept_indices_random(n: usize, rate: PerforationRate, seed: u64) -> Vec<usize> {
    let kept = rate.kept_count(n);
    if kept == 0 {
        return Vec::new();
    }
    if kept == n {
        return (0..n).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    // Partial Fisher-Yates: select `kept` distinct indices.
    for i in 0..kept {
        let j = rng.gen_range(i..n);
        indices.swap(i, j);
    }
    let mut selected = indices[..kept].to_vec();
    selected.sort_unstable();
    selected
}

/// Run `body` for the kept subset of `0..n`, skipping perforated iterations.
/// Returns the number of iterations actually executed.
pub fn perforated_for(n: usize, rate: PerforationRate, mut body: impl FnMut(usize)) -> usize {
    let kept = kept_indices(n, rate);
    for &i in &kept {
        body(i);
    }
    kept.len()
}

/// Extension trait adding `.perforate(rate)` to iterators: keeps an evenly
/// spread subset of the items.
pub trait Perforate: Iterator + Sized {
    /// Keep roughly `rate.kept_fraction()` of the items, evenly spread.
    fn perforate(self, rate: PerforationRate) -> PerforatedIter<Self> {
        PerforatedIter {
            inner: self,
            rate,
            index: 0,
            emitted: 0,
        }
    }
}

impl<I: Iterator> Perforate for I {}

/// Iterator adaptor produced by [`Perforate::perforate`].
#[derive(Debug)]
pub struct PerforatedIter<I> {
    inner: I,
    rate: PerforationRate,
    index: usize,
    emitted: usize,
}

impl<I: Iterator> Iterator for PerforatedIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let item = self.inner.next()?;
            let index = self.index;
            self.index += 1;
            // Emit the item when doing so keeps the running kept-fraction at
            // or below the target — this reproduces the evenly-spread
            // selection without knowing the loop length in advance.
            let target = self.rate.kept_fraction();
            if target >= 1.0 {
                self.emitted += 1;
                return Some(item);
            }
            if target <= 0.0 {
                continue;
            }
            let would_be = (self.emitted + 1) as f64;
            if would_be <= target * (index + 1) as f64 + f64::EPSILON {
                self.emitted += 1;
                return Some(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_constructors() {
        assert_eq!(PerforationRate::keep(0.3).kept_fraction(), 0.3);
        assert!((PerforationRate::drop_fraction(0.3).kept_fraction() - 0.7).abs() < 1e-12);
        assert!((PerforationRate::keep(0.25).dropped_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn invalid_rate_panics() {
        PerforationRate::keep(1.2);
    }

    #[test]
    fn kept_count_boundaries() {
        let r = PerforationRate::keep(0.5);
        assert_eq!(r.kept_count(0), 0);
        assert_eq!(r.kept_count(10), 5);
        assert_eq!(PerforationRate::keep(0.0).kept_count(10), 0);
        assert_eq!(PerforationRate::keep(1.0).kept_count(10), 10);
        // A tiny keep fraction still keeps at least one iteration.
        assert_eq!(PerforationRate::keep(0.01).kept_count(10), 1);
    }

    #[test]
    fn kept_indices_are_spread_and_sorted() {
        let idx = kept_indices(100, PerforationRate::keep(0.25));
        assert_eq!(idx.len(), 25);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        // Evenly spread: gaps of roughly 4.
        assert!(idx[1] - idx[0] >= 3 && idx[1] - idx[0] <= 5);
        assert!(*idx.last().unwrap() < 100);
    }

    #[test]
    fn kept_indices_full_and_empty() {
        assert_eq!(
            kept_indices(5, PerforationRate::keep(1.0)),
            vec![0, 1, 2, 3, 4]
        );
        assert!(kept_indices(5, PerforationRate::keep(0.0)).is_empty());
    }

    #[test]
    fn random_selection_is_deterministic_per_seed() {
        let a = kept_indices_random(50, PerforationRate::keep(0.4), 7);
        let b = kept_indices_random(50, PerforationRate::keep(0.4), 7);
        let c = kept_indices_random(50, PerforationRate::keep(0.4), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
        let mut deduped = a.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), a.len(), "indices must be distinct");
    }

    #[test]
    fn perforated_for_executes_kept_subset() {
        let mut executed = Vec::new();
        let count = perforated_for(10, PerforationRate::keep(0.5), |i| executed.push(i));
        assert_eq!(count, 5);
        assert_eq!(executed.len(), 5);
        assert!(executed.iter().all(|&i| i < 10));
    }

    #[test]
    fn iterator_adaptor_keeps_expected_fraction() {
        let kept: Vec<i32> = (0..100).perforate(PerforationRate::keep(0.3)).collect();
        assert!(
            (28..=32).contains(&kept.len()),
            "kept {} items, expected ~30",
            kept.len()
        );
        let all: Vec<i32> = (0..10).perforate(PerforationRate::keep(1.0)).collect();
        assert_eq!(all.len(), 10);
        let none: Vec<i32> = (0..10).perforate(PerforationRate::keep(0.0)).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn kept_iterations_reach_the_tail_for_all_rates() {
        // For a range of rates, the deterministic scheme never clusters all
        // kept iterations at the front.
        for &rate in &[0.1, 0.2, 0.35, 0.5, 0.75, 0.9] {
            let idx = kept_indices(1000, PerforationRate::keep(rate));
            assert!(!idx.is_empty());
            let last = *idx.last().unwrap();
            assert!(
                last >= 900,
                "rate {rate}: last kept index {last} should reach the tail"
            );
        }
    }
}

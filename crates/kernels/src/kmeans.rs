//! K-means clustering.
//!
//! Each iteration spawns one task per chunk of observations; a task assigns
//! its observations to the nearest centroid and accumulates partial sums for
//! the centroid update. All tasks share one significance value — "The degree
//! of approximation is controlled by the ratio used at taskwait pragmas"
//! (Section 4.1). The approximate body computes "a simpler version of the
//! euclidean distance, while at the same time considering only a subset (1/8)
//! of the dimensions", and only observations processed by *accurate* tasks
//! participate in the convergence criterion (fewer than 1/1000 of the
//! population changing cluster).
//!
//! Degrees (Table 1): ratio 80% / 60% / 40%; quality metric relative error of
//! the final centroids.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sig_core::{Policy, Runtime, SharedGrid};
use sig_perforation::{kept_indices, PerforationRate};
use sig_quality::QualityMetric;

use crate::common::{
    Approach, ApproxTechnique, Benchmark, BenchmarkInfo, Degree, ExecutionConfig, RunOutput,
};

/// K-means benchmark configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of observations.
    pub points: usize,
    /// Dimensionality of each observation.
    pub dims: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Number of task chunks per iteration.
    pub chunks: usize,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// RNG seed for the synthetic observation set.
    pub seed: u64,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans {
            points: 4096,
            dims: 16,
            clusters: 8,
            chunks: 64,
            max_iterations: 20,
            seed: 0x5eed_0002,
        }
    }
}

/// Full Euclidean distance (squared) over all dimensions — the accurate
/// distance.
fn distance_accurate(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Approximate distance: L1 over the first `dims / 8` dimensions.
fn distance_approximate(a: &[f64], b: &[f64], dims: usize) -> f64 {
    let subset = (dims / 8).max(1);
    a.iter()
        .zip(b)
        .take(subset)
        .map(|(x, y)| (x - y).abs())
        .sum()
}

/// Layout of one chunk's partial-result row:
/// `[cluster 0 sums (dims), cluster 0 count, cluster 1 sums, ..., moved]`.
fn partial_row_len(clusters: usize, dims: usize) -> usize {
    clusters * (dims + 1) + 1
}

/// Process one chunk of observations against the given centroids.
///
/// Writes partial sums/counts (and, for accurate tasks only, the number of
/// observations that changed cluster) into `partials`, and the new
/// assignments into `assignments`.
#[allow(clippy::too_many_arguments)]
fn process_chunk(
    points: &[f64],
    dims: usize,
    clusters: usize,
    centroids: &[f64],
    prev_assignments: &[usize],
    range: std::ops::Range<usize>,
    accurate: bool,
    partials: &mut [f64],
    assignments: &mut [usize],
) {
    partials.fill(0.0);
    let mut moved = 0usize;
    for (local, p) in range.clone().enumerate() {
        let obs = &points[p * dims..(p + 1) * dims];
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for c in 0..clusters {
            let centroid = &centroids[c * dims..(c + 1) * dims];
            let d = if accurate {
                distance_accurate(obs, centroid)
            } else {
                distance_approximate(obs, centroid, dims)
            };
            if d < best_dist {
                best_dist = d;
                best = c;
            }
        }
        if best != prev_assignments[p] {
            moved += 1;
        }
        assignments[local] = best;
        let base = best * (dims + 1);
        for d in 0..dims {
            partials[base + d] += obs[d];
        }
        partials[base + dims] += 1.0;
    }
    // Only accurate tasks feed the convergence criterion.
    let moved_slot = partials.len() - 1;
    partials[moved_slot] = if accurate { moved as f64 } else { 0.0 };
}

impl KMeans {
    /// The accurate-task ratio for an approximation degree (Table 1).
    pub fn ratio_for(degree: Degree) -> f64 {
        match degree {
            Degree::Mild => 0.80,
            Degree::Medium => 0.60,
            Degree::Aggressive => 0.40,
        }
    }

    /// Deterministic synthetic observations: `clusters` Gaussian-ish blobs.
    pub fn observations(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let centres: Vec<f64> = (0..self.clusters * self.dims)
            .map(|_| rng.gen_range(0.0..100.0))
            .collect();
        let mut points = Vec::with_capacity(self.points * self.dims);
        for p in 0..self.points {
            let c = p % self.clusters;
            for d in 0..self.dims {
                let noise: f64 = rng.gen_range(-4.0..4.0);
                points.push(centres[c * self.dims + d] + noise);
            }
        }
        points
    }

    /// Initial centroids: the first `clusters` observations (deterministic).
    fn initial_centroids(&self, points: &[f64]) -> Vec<f64> {
        points[..self.clusters * self.dims].to_vec()
    }

    fn chunk_range(&self, chunk: usize) -> std::ops::Range<usize> {
        let per_chunk = self.points.div_ceil(self.chunks);
        let start = chunk * per_chunk;
        let end = ((chunk + 1) * per_chunk).min(self.points);
        start..end
    }

    /// Reduce per-chunk partials into new centroids; clusters that received
    /// no observations keep their previous centroid. Returns the total moved
    /// count reported by accurate chunks.
    fn reduce(&self, partials: &[f64], previous: &[f64], centroids: &mut [f64]) -> usize {
        let row = partial_row_len(self.clusters, self.dims);
        let mut sums = vec![0.0f64; self.clusters * self.dims];
        let mut counts = vec![0.0f64; self.clusters];
        let mut moved = 0.0f64;
        for chunk in 0..self.chunks {
            let part = &partials[chunk * row..(chunk + 1) * row];
            for c in 0..self.clusters {
                let base = c * (self.dims + 1);
                for d in 0..self.dims {
                    sums[c * self.dims + d] += part[base + d];
                }
                counts[c] += part[base + self.dims];
            }
            moved += part[row - 1];
        }
        for c in 0..self.clusters {
            for d in 0..self.dims {
                centroids[c * self.dims + d] = if counts[c] > 0.0 {
                    sums[c * self.dims + d] / counts[c]
                } else {
                    previous[c * self.dims + d]
                };
            }
        }
        moved as usize
    }

    /// Convergence threshold: fewer than 1/1000 of the population moving.
    fn moved_threshold(&self) -> usize {
        (self.points / 1000).max(1)
    }

    /// Serial fully accurate execution; returns the final centroids.
    pub fn run_accurate_serial(&self) -> Vec<f64> {
        let points = self.observations();
        let mut centroids = self.initial_centroids(&points);
        let mut assignments = vec![usize::MAX; self.points];
        let row = partial_row_len(self.clusters, self.dims);
        for _ in 0..self.max_iterations {
            let mut partials = vec![0.0f64; self.chunks * row];
            let mut new_assignments = assignments.clone();
            for chunk in 0..self.chunks {
                let range = self.chunk_range(chunk);
                let local = range.clone();
                process_chunk(
                    &points,
                    self.dims,
                    self.clusters,
                    &centroids,
                    &assignments,
                    range,
                    true,
                    &mut partials[chunk * row..(chunk + 1) * row],
                    &mut new_assignments[local],
                );
            }
            let previous = centroids.clone();
            let moved = self.reduce(&partials, &previous, &mut centroids);
            assignments = new_assignments;
            if moved < self.moved_threshold() {
                break;
            }
        }
        centroids
    }

    /// Significance-annotated task execution.
    pub fn run_tasks(&self, workers: usize, policy: Policy, ratio: f64) -> RunOutput {
        let points = Arc::new(self.observations());
        let mut centroids = self.initial_centroids(&points);
        let mut assignments: Arc<Vec<usize>> = Arc::new(vec![usize::MAX; self.points]);
        let row = partial_row_len(self.clusters, self.dims);
        let dims = self.dims;
        let clusters = self.clusters;

        let start = Instant::now();
        let rt = Runtime::builder().workers(workers).policy(policy).build();
        let group = rt.create_group("kmeans", ratio);
        for _ in 0..self.max_iterations {
            let partials = SharedGrid::new(self.chunks, row, 0.0f64);
            let per_chunk = self.points.div_ceil(self.chunks);
            let new_assignments = SharedGrid::new(self.chunks, per_chunk, usize::MAX);
            let shared_centroids = Arc::new(centroids.clone());
            for chunk in 0..self.chunks {
                let range = self.chunk_range(chunk);
                let part = Arc::new(std::sync::Mutex::new((
                    partials.row_writer(chunk),
                    new_assignments.row_writer(chunk),
                )));
                let part_apx = part.clone();
                let points_acc = points.clone();
                let points_apx = points.clone();
                let centroids_acc = shared_centroids.clone();
                let centroids_apx = shared_centroids.clone();
                let prev_acc = assignments.clone();
                let prev_apx = assignments.clone();
                let range_apx = range.clone();
                rt.task(move || {
                    let mut guards = part.lock().expect("partials lock");
                    let (partials, assignments) = &mut *guards;
                    process_chunk(
                        &points_acc,
                        dims,
                        clusters,
                        &centroids_acc,
                        &prev_acc,
                        range.clone(),
                        true,
                        partials.as_mut_slice(),
                        assignments.as_mut_slice(),
                    );
                })
                .approx(move || {
                    let mut guards = part_apx.lock().expect("partials lock");
                    let (partials, assignments) = &mut *guards;
                    process_chunk(
                        &points_apx,
                        dims,
                        clusters,
                        &centroids_apx,
                        &prev_apx,
                        range_apx.clone(),
                        false,
                        partials.as_mut_slice(),
                        assignments.as_mut_slice(),
                    );
                })
                .significance(0.5)
                .group(&group)
                .spawn();
            }
            rt.wait_group(&group);

            // Reduce partial sums into the next centroids.
            let partials = partials.snapshot();
            let previous = centroids.clone();
            let moved = self.reduce(&partials, &previous, &mut centroids);

            // Fold the per-chunk assignment rows back into the flat vector.
            let rows = new_assignments.snapshot();
            let mut merged = (*assignments).clone();
            for chunk in 0..self.chunks {
                let range = self.chunk_range(chunk);
                let len = range.len();
                merged[range].copy_from_slice(&rows[chunk * per_chunk..chunk * per_chunk + len]);
            }
            assignments = Arc::new(merged);

            if moved < self.moved_threshold() {
                break;
            }
        }
        let elapsed = start.elapsed();
        RunOutput::from_runtime(&rt, centroids, elapsed)
    }

    /// Loop perforation: each iteration processes only the kept chunks
    /// (accurately); skipped chunks contribute nothing.
    pub fn run_perforated(&self, ratio: f64) -> RunOutput {
        let points = self.observations();
        let mut centroids = self.initial_centroids(&points);
        let mut assignments = vec![usize::MAX; self.points];
        let row = partial_row_len(self.clusters, self.dims);
        let start = Instant::now();
        let kept = kept_indices(self.chunks, PerforationRate::keep(ratio));
        for _ in 0..self.max_iterations {
            let mut partials = vec![0.0f64; self.chunks * row];
            let mut new_assignments = assignments.clone();
            for &chunk in &kept {
                let range = self.chunk_range(chunk);
                let local = range.clone();
                process_chunk(
                    &points,
                    self.dims,
                    self.clusters,
                    &centroids,
                    &assignments,
                    range,
                    true,
                    &mut partials[chunk * row..(chunk + 1) * row],
                    &mut new_assignments[local],
                );
            }
            let previous = centroids.clone();
            let moved = self.reduce(&partials, &previous, &mut centroids);
            assignments = new_assignments;
            if moved < self.moved_threshold() {
                break;
            }
        }
        let elapsed = start.elapsed();
        RunOutput::serial(centroids, elapsed)
    }
}

impl Benchmark for KMeans {
    fn info(&self) -> BenchmarkInfo {
        BenchmarkInfo {
            name: "Kmeans",
            technique: ApproxTechnique::Approximate,
            degree_parameter: "accurate-task ratio",
            degrees: [0.80, 0.60, 0.40],
            metric: QualityMetric::RelativeError,
            perforation_supported: true,
        }
    }

    fn run(&self, config: &ExecutionConfig) -> RunOutput {
        match config.approach {
            Approach::Accurate => {
                let start = Instant::now();
                let out = self.run_accurate_serial();
                RunOutput::serial(out, start.elapsed())
            }
            Approach::Significance { policy, degree } => {
                self.run_tasks(config.workers, policy, KMeans::ratio_for(degree))
            }
            Approach::Perforation { degree } => self.run_perforated(KMeans::ratio_for(degree)),
        }
    }

    fn run_full_accuracy(&self, workers: usize, policy: Policy) -> RunOutput {
        self.run_tasks(workers, policy, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sig_quality::relative_error;

    fn small() -> KMeans {
        KMeans {
            points: 512,
            dims: 16,
            clusters: 4,
            chunks: 16,
            max_iterations: 12,
            seed: 11,
        }
    }

    #[test]
    fn ratios_match_table1() {
        assert_eq!(KMeans::ratio_for(Degree::Mild), 0.80);
        assert_eq!(KMeans::ratio_for(Degree::Medium), 0.60);
        assert_eq!(KMeans::ratio_for(Degree::Aggressive), 0.40);
    }

    #[test]
    fn observations_are_deterministic() {
        let km = small();
        assert_eq!(km.observations(), km.observations());
        assert_eq!(km.observations().len(), km.points * km.dims);
    }

    #[test]
    fn chunk_ranges_cover_all_points_without_overlap() {
        let km = KMeans {
            points: 1000,
            chunks: 7,
            ..small()
        };
        let mut covered = vec![false; km.points];
        for chunk in 0..km.chunks {
            for p in km.chunk_range(chunk) {
                assert!(!covered[p]);
                covered[p] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn distances_behave() {
        let a = vec![0.0; 16];
        let b = vec![1.0; 16];
        assert_eq!(distance_accurate(&a, &b), 16.0);
        // Approximate distance uses 16/8 = 2 dimensions.
        assert_eq!(distance_approximate(&a, &b, 16), 2.0);
    }

    #[test]
    fn serial_clustering_recovers_blob_structure() {
        let km = small();
        let centroids = km.run_accurate_serial();
        assert_eq!(centroids.len(), km.clusters * km.dims);
        // The synthetic blobs have a spread of ±4 around their centres, so
        // every centroid must be close to one of the true generator centres.
        let mut rng = StdRng::seed_from_u64(km.seed);
        let truth: Vec<f64> = (0..km.clusters * km.dims)
            .map(|_| rng.gen_range(0.0..100.0))
            .collect();
        for c in 0..km.clusters {
            let centroid = &centroids[c * km.dims..(c + 1) * km.dims];
            let best = (0..km.clusters)
                .map(|t| distance_accurate(centroid, &truth[t * km.dims..(t + 1) * km.dims]))
                .fold(f64::INFINITY, f64::min);
            assert!(
                best < 100.0,
                "centroid {c} far from every true centre: {best}"
            );
        }
    }

    #[test]
    fn task_version_full_ratio_matches_serial() {
        let km = small();
        let serial = km.run_accurate_serial();
        let tasks = km.run_tasks(2, Policy::GtbMaxBuffer, 1.0);
        let err = relative_error(&serial, &tasks.values);
        assert!(err < 1e-12, "relative error {err}");
        assert_eq!(tasks.tasks.approximate, 0);
    }

    #[test]
    fn approximation_error_is_small_and_graceful() {
        let km = small();
        let reference = km.run(&ExecutionConfig::accurate(2));
        let mild = km.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Mild,
        ));
        let aggr = km.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Aggressive,
        ));
        let q_mild = km.quality(&reference, &mild).value;
        let q_aggr = km.quality(&reference, &aggr).value;
        // The paper reports sub-percent errors on its (much larger) input;
        // on this small synthetic instance the error stays below 10% — the
        // point is graceful degradation, not a specific magnitude.
        assert!(q_aggr < 10.0, "aggressive error {q_aggr}% too large");
        assert!(q_mild <= q_aggr + 1e-9);
    }

    #[test]
    fn perforated_version_runs_and_converges() {
        let km = small();
        let reference = km.run(&ExecutionConfig::accurate(2));
        let perf = km.run(&ExecutionConfig::perforation(2, Degree::Medium));
        assert_eq!(perf.values.len(), reference.values.len());
        let q = km.quality(&reference, &perf).value;
        assert!(q.is_finite());
    }

    #[test]
    fn lqh_with_uniform_significance_stays_essentially_accurate() {
        // All K-means tasks share one significance level; under LQH the
        // history rule keeps every task after a worker's first one accurate
        // (paper Section 4.2: LQH matches the fully accurate output).
        let workers = 2;
        let km = small();
        let out = km.run_tasks(workers, Policy::Lqh, 0.6);
        assert!(out.tasks.approximate <= workers);
        assert!(out.tasks.accurate > out.tasks.approximate);
    }
}

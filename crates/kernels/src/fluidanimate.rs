//! Fluidanimate: smoothed-particle-hydrodynamics (SPH) fluid simulation
//! (modelled on the PARSEC workload the paper uses).
//!
//! The fluid is a set of particles in a unit box. Each time step either runs
//! **fully accurately** (densities and forces are evaluated from the particle
//! neighbourhood and integrated) or **fully approximately** ("the new
//! position of each particle is estimated assuming it will move linearly, in
//! the same direction and with the same velocity as it did in the previous
//! time steps"). The choice is made per time step by setting the `ratio`
//! clause of the step's `taskwait` to `1.0` or `0.0` — exactly the trick the
//! paper highlights as trivially expressible in the programming model, and
//! accurate and approximate steps must alternate to keep the physics stable.
//!
//! Degrees (Table 1): fraction of accurate time steps 50% / 25% / 12.5%;
//! quality metric relative error of the final particle positions.
//! Loop perforation is **not applicable**: dropping part of the particles in
//! a step violates the physics (Section 4.2).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sig_core::{Policy, Runtime, SharedGrid};
use sig_quality::QualityMetric;

use crate::common::{
    Approach, ApproxTechnique, Benchmark, BenchmarkInfo, Degree, ExecutionConfig, RunOutput,
};

/// Number of scalar values stored per particle: position (x, y), velocity
/// (x, y).
const STRIDE: usize = 4;

/// Fluidanimate benchmark configuration.
#[derive(Debug, Clone)]
pub struct Fluidanimate {
    /// Number of particles.
    pub particles: usize,
    /// Number of simulated time steps.
    pub steps: usize,
    /// Number of task chunks per time step.
    pub chunks: usize,
    /// Integration time step.
    pub dt: f64,
    /// SPH interaction radius.
    pub radius: f64,
    /// RNG seed for the initial particle distribution.
    pub seed: u64,
}

impl Default for Fluidanimate {
    fn default() -> Self {
        Fluidanimate {
            particles: 1024,
            steps: 24,
            chunks: 16,
            dt: 0.002,
            radius: 0.06,
            seed: 0x5eed_0004,
        }
    }
}

/// Accurate update of one chunk of particles: SPH-style density/pressure
/// forces from all neighbours within the interaction radius, plus gravity and
/// box collisions, then symplectic Euler integration.
fn step_accurate(
    state: &[f64],
    range: std::ops::Range<usize>,
    dt: f64,
    radius: f64,
    out: &mut [f64],
) {
    let n = state.len() / STRIDE;
    let r2 = radius * radius;
    for (local, i) in range.enumerate() {
        let xi = state[i * STRIDE];
        let yi = state[i * STRIDE + 1];
        let mut vx = state[i * STRIDE + 2];
        let mut vy = state[i * STRIDE + 3];

        // Pairwise repulsion within the smoothing radius (a simplified SPH
        // pressure force) — this is the expensive O(n) part of the step.
        let mut fx = 0.0;
        let mut fy = 0.0;
        for j in 0..n {
            if j == i {
                continue;
            }
            let dx = xi - state[j * STRIDE];
            let dy = yi - state[j * STRIDE + 1];
            let d2 = dx * dx + dy * dy;
            if d2 < r2 && d2 > 1e-12 {
                let d = d2.sqrt();
                let overlap = (radius - d) / radius;
                fx += overlap * overlap * dx / d * 40.0;
                fy += overlap * overlap * dy / d * 40.0;
            }
        }
        // Gravity.
        fy -= 9.8;

        vx += fx * dt;
        vy += fy * dt;
        let mut x = xi + vx * dt;
        let mut y = yi + vy * dt;
        // Box collisions with damping.
        if x < 0.0 {
            x = 0.0;
            vx = -vx * 0.5;
        }
        if x > 1.0 {
            x = 1.0;
            vx = -vx * 0.5;
        }
        if y < 0.0 {
            y = 0.0;
            vy = -vy * 0.5;
        }
        if y > 1.0 {
            y = 1.0;
            vy = -vy * 0.5;
        }
        out[local * STRIDE] = x;
        out[local * STRIDE + 1] = y;
        out[local * STRIDE + 2] = vx;
        out[local * STRIDE + 3] = vy;
    }
}

/// Approximate update: pure linear extrapolation with the previous velocity
/// (no force evaluation), with the same box clamping.
fn step_approximate(state: &[f64], range: std::ops::Range<usize>, dt: f64, out: &mut [f64]) {
    for (local, i) in range.enumerate() {
        let mut vx = state[i * STRIDE + 2];
        let mut vy = state[i * STRIDE + 3];
        let mut x = state[i * STRIDE] + vx * dt;
        let mut y = state[i * STRIDE + 1] + vy * dt;
        if x < 0.0 {
            x = 0.0;
            vx = -vx * 0.5;
        }
        if x > 1.0 {
            x = 1.0;
            vx = -vx * 0.5;
        }
        if y < 0.0 {
            y = 0.0;
            vy = -vy * 0.5;
        }
        if y > 1.0 {
            y = 1.0;
            vy = -vy * 0.5;
        }
        out[local * STRIDE] = x;
        out[local * STRIDE + 1] = y;
        out[local * STRIDE + 2] = vx;
        out[local * STRIDE + 3] = vy;
    }
}

impl Fluidanimate {
    /// Period of accurate time steps for an approximation degree: every 2nd,
    /// 4th or 8th step is accurate (= 50% / 25% / 12.5% accurate steps,
    /// Table 1).
    pub fn accurate_period_for(degree: Degree) -> usize {
        match degree {
            Degree::Mild => 2,
            Degree::Medium => 4,
            Degree::Aggressive => 8,
        }
    }

    /// Deterministic initial particle state: a block of fluid in the upper
    /// half of the box with a small random jitter and zero velocity.
    pub fn initial_state(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut state = Vec::with_capacity(self.particles * STRIDE);
        let cols = (self.particles as f64).sqrt().ceil() as usize;
        for p in 0..self.particles {
            let gx = (p % cols) as f64 / cols as f64;
            let gy = (p / cols) as f64 / cols as f64;
            state.push(0.25 + 0.5 * gx + rng.gen_range(-0.005..0.005));
            state.push(0.5 + 0.45 * gy + rng.gen_range(-0.005..0.005));
            state.push(0.0);
            state.push(0.0);
        }
        state
    }

    fn chunk_range(&self, chunk: usize) -> std::ops::Range<usize> {
        let per_chunk = self.particles.div_ceil(self.chunks);
        let start = chunk * per_chunk;
        let end = ((chunk + 1) * per_chunk).min(self.particles);
        start..end
    }

    /// Serial fully accurate simulation; returns the final particle
    /// positions (x, y interleaved).
    pub fn run_accurate_serial(&self) -> Vec<f64> {
        let mut state = self.initial_state();
        for _ in 0..self.steps {
            let mut next = vec![0.0f64; state.len()];
            for chunk in 0..self.chunks {
                let range = self.chunk_range(chunk);
                let out_range = range.start * STRIDE..range.end * STRIDE;
                step_accurate(&state, range, self.dt, self.radius, &mut next[out_range]);
            }
            state = next;
        }
        positions_of(&state)
    }

    /// Significance-annotated task execution: each time step's barrier
    /// carries `ratio(1.0)` or `ratio(0.0)` depending on whether the step is
    /// an accurate or an extrapolation step.
    pub fn run_tasks(&self, workers: usize, policy: Policy, accurate_period: usize) -> RunOutput {
        let dt = self.dt;
        let radius = self.radius;
        let per_chunk = self.particles.div_ceil(self.chunks);
        let mut state = Arc::new(self.initial_state());

        let start = Instant::now();
        let rt = Runtime::builder().workers(workers).policy(policy).build();
        let group = rt.create_group("fluidanimate", 1.0);
        for step in 0..self.steps {
            // Accurate steps occur once every `accurate_period` steps; the
            // remaining steps are linear extrapolation.
            let accurate_step = step % accurate_period == 0;
            let next = SharedGrid::new(self.chunks, per_chunk * STRIDE, 0.0f64);
            for chunk in 0..self.chunks {
                let range = self.chunk_range(chunk);
                let writer = Arc::new(std::sync::Mutex::new(next.row_writer(chunk)));
                let writer_apx = writer.clone();
                let state_acc = state.clone();
                let state_apx = state.clone();
                let range_apx = range.clone();
                let len = range.len();
                rt.task(move || {
                    let mut out = writer.lock().expect("chunk writer");
                    step_accurate(
                        &state_acc,
                        range.clone(),
                        dt,
                        radius,
                        &mut out.as_mut_slice()[..len * STRIDE],
                    );
                })
                .approx(move || {
                    let mut out = writer_apx.lock().expect("chunk writer");
                    step_approximate(
                        &state_apx,
                        range_apx.clone(),
                        dt,
                        &mut out.as_mut_slice()[..len * STRIDE],
                    );
                })
                .significance(0.5)
                .group(&group)
                .spawn();
            }
            rt.wait_group_with_ratio(&group, if accurate_step { 1.0 } else { 0.0 });

            let rows = next.snapshot();
            let mut merged = vec![0.0f64; self.particles * STRIDE];
            for chunk in 0..self.chunks {
                let range = self.chunk_range(chunk);
                let len = range.len();
                merged[range.start * STRIDE..range.end * STRIDE].copy_from_slice(
                    &rows[chunk * per_chunk * STRIDE..chunk * per_chunk * STRIDE + len * STRIDE],
                );
            }
            state = Arc::new(merged);
        }
        let elapsed = start.elapsed();
        RunOutput::from_runtime(&rt, positions_of(&state), elapsed)
    }
}

/// Extract the interleaved (x, y) positions from the particle state.
fn positions_of(state: &[f64]) -> Vec<f64> {
    state
        .chunks_exact(STRIDE)
        .flat_map(|p| [p[0], p[1]])
        .collect()
}

impl Benchmark for Fluidanimate {
    fn info(&self) -> BenchmarkInfo {
        BenchmarkInfo {
            name: "Fluidanimate",
            technique: ApproxTechnique::Approximate,
            degree_parameter: "fraction of accurate time steps",
            degrees: [0.50, 0.25, 0.125],
            metric: QualityMetric::RelativeError,
            perforation_supported: false,
        }
    }

    fn run(&self, config: &ExecutionConfig) -> RunOutput {
        match config.approach {
            Approach::Accurate => {
                let start = Instant::now();
                let out = self.run_accurate_serial();
                RunOutput::serial(out, start.elapsed())
            }
            Approach::Significance { policy, degree } => self.run_tasks(
                config.workers,
                policy,
                Fluidanimate::accurate_period_for(degree),
            ),
            Approach::Perforation { .. } => {
                panic!("loop perforation is not applicable to Fluidanimate (paper, Section 4.2)")
            }
        }
    }

    fn run_full_accuracy(&self, workers: usize, policy: Policy) -> RunOutput {
        // Accurate period 1: every time step runs its accurate body.
        self.run_tasks(workers, policy, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fluidanimate {
        Fluidanimate {
            particles: 256,
            steps: 12,
            chunks: 8,
            dt: 0.002,
            radius: 0.08,
            seed: 9,
        }
    }

    #[test]
    fn periods_match_table1() {
        assert_eq!(Fluidanimate::accurate_period_for(Degree::Mild), 2);
        assert_eq!(Fluidanimate::accurate_period_for(Degree::Medium), 4);
        assert_eq!(Fluidanimate::accurate_period_for(Degree::Aggressive), 8);
    }

    #[test]
    fn initial_state_is_deterministic_and_inside_the_box() {
        let f = small();
        let a = f.initial_state();
        assert_eq!(a, f.initial_state());
        assert_eq!(a.len(), f.particles * STRIDE);
        for p in a.chunks_exact(STRIDE) {
            assert!((0.0..=1.0).contains(&p[0]));
            assert!((0.0..=1.0).contains(&p[1]));
        }
    }

    #[test]
    fn particles_stay_inside_the_box() {
        let f = small();
        let positions = f.run_accurate_serial();
        for xy in positions.chunks_exact(2) {
            assert!((0.0..=1.0).contains(&xy[0]), "x = {}", xy[0]);
            assert!((0.0..=1.0).contains(&xy[1]), "y = {}", xy[1]);
        }
    }

    #[test]
    fn gravity_pulls_the_fluid_down() {
        let f = small();
        let initial = positions_of(&f.initial_state());
        let after = f.run_accurate_serial();
        let mean_y_initial: f64 =
            initial.chunks_exact(2).map(|p| p[1]).sum::<f64>() / f.particles as f64;
        let mean_y_after: f64 =
            after.chunks_exact(2).map(|p| p[1]).sum::<f64>() / f.particles as f64;
        assert!(
            mean_y_after < mean_y_initial,
            "fluid should fall: {mean_y_initial} -> {mean_y_after}"
        );
    }

    #[test]
    fn task_version_with_every_step_accurate_matches_serial() {
        let f = small();
        let serial = f.run_accurate_serial();
        let tasks = f.run_tasks(2, Policy::GtbMaxBuffer, 1);
        let max_err = serial
            .iter()
            .zip(&tasks.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "max error {max_err}");
        assert_eq!(tasks.tasks.approximate, 0);
    }

    #[test]
    fn mild_approximation_is_stable_and_close() {
        let f = small();
        let reference = f.run(&ExecutionConfig::accurate(2));
        let mild = f.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Mild,
        ));
        let q = f.quality(&reference, &mild).value;
        // Paper: only the mild degree gives acceptable results; it should be
        // within a few percent relative error here.
        assert!(q < 20.0, "mild relative error {q}% too large");
        // Both accurate and extrapolation steps must have run.
        assert!(mild.tasks.accurate > 0);
        assert!(mild.tasks.approximate > 0);
    }

    #[test]
    fn aggressive_approximation_degrades_more_than_mild() {
        let f = small();
        let reference = f.run(&ExecutionConfig::accurate(2));
        let mild = f.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Mild,
        ));
        let aggr = f.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Aggressive,
        ));
        let q_mild = f.quality(&reference, &mild).value;
        let q_aggr = f.quality(&reference, &aggr).value;
        assert!(
            q_mild <= q_aggr + 1e-9,
            "mild {q_mild} vs aggressive {q_aggr}"
        );
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn perforation_is_rejected() {
        let f = small();
        f.run(&ExecutionConfig::perforation(2, Degree::Mild));
    }

    #[test]
    fn accurate_step_fraction_matches_degree() {
        let f = small();
        let out = f.run_tasks(2, Policy::GtbMaxBuffer, 4);
        // steps = 12, period 4 => 3 accurate steps of 8 chunks each.
        assert_eq!(out.tasks.accurate, 3 * f.chunks);
        assert_eq!(out.tasks.approximate, 9 * f.chunks);
    }
}

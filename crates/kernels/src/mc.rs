//! Monte-Carlo estimation of a PDE subdomain boundary (the "MC" benchmark).
//!
//! Following Vavalis & Sarailidis' hybrid elliptic solvers, the value of a
//! harmonic function on the boundary of an interior subdomain is estimated by
//! random walks: from each subdomain boundary point, walks (walk-on-spheres)
//! proceed until they hit the outer domain boundary, where the known boundary
//! condition is sampled; the estimate is the mean over walks.
//!
//! One task estimates one subdomain boundary point. The approximate body
//! "drops a percentage of the random walks" and uses "a modified, more
//! lightweight methodology ... to decide how far from the current location
//! the next step of a random walk should be" (Section 4.1): here, half the
//! walks and a looser termination band.
//!
//! Degrees (Table 1): ratio 100% / 80% / 50%; quality metric relative error.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sig_core::{Policy, Runtime, SharedGrid};
use sig_perforation::{kept_indices, PerforationRate};
use sig_quality::QualityMetric;

use crate::common::{
    Approach, ApproxTechnique, Benchmark, BenchmarkInfo, Degree, ExecutionConfig, RunOutput,
};

/// Monte-Carlo benchmark configuration.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Number of subdomain boundary points (= number of tasks).
    pub points: usize,
    /// Random walks per point in the accurate task body.
    pub walks_per_point: usize,
    /// Base RNG seed (walks are deterministic given the seed and the point
    /// index).
    pub seed: u64,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            points: 192,
            walks_per_point: 96,
            seed: 0x5eed_0001,
        }
    }
}

/// Boundary condition on the outer unit-square boundary: a harmonic function
/// (`x² − y²`) so the Monte-Carlo estimate converges to its interior value.
fn boundary_value(x: f64, y: f64) -> f64 {
    x * x - y * y
}

/// Distance from `(x, y)` to the outer unit-square boundary.
fn distance_to_boundary(x: f64, y: f64) -> f64 {
    x.min(1.0 - x).min(y).min(1.0 - y)
}

/// One walk-on-spheres random walk starting at `(x, y)`.
///
/// `eps` is the termination band: the walk stops when it is within `eps` of
/// the boundary and samples the boundary condition at the nearest boundary
/// point. A larger `eps` terminates sooner (cheaper) but is less accurate —
/// that is the "lightweight methodology" of the approximate task body.
fn random_walk(mut x: f64, mut y: f64, eps: f64, rng: &mut StdRng) -> f64 {
    const MAX_STEPS: usize = 10_000;
    for _ in 0..MAX_STEPS {
        let d = distance_to_boundary(x, y);
        if d <= eps {
            break;
        }
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        x += d * angle.cos();
        y += d * angle.sin();
        x = x.clamp(0.0, 1.0);
        y = y.clamp(0.0, 1.0);
    }
    // Project to the nearest boundary point and sample the condition there.
    let dx0 = x;
    let dx1 = 1.0 - x;
    let dy0 = y;
    let dy1 = 1.0 - y;
    let min = dx0.min(dx1).min(dy0).min(dy1);
    if min == dx0 {
        boundary_value(0.0, y)
    } else if min == dx1 {
        boundary_value(1.0, y)
    } else if min == dy0 {
        boundary_value(x, 0.0)
    } else {
        boundary_value(x, 1.0)
    }
}

/// Estimate the harmonic function at `(x, y)` with `walks` random walks.
fn estimate_point(x: f64, y: f64, walks: usize, eps: f64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0;
    for _ in 0..walks {
        sum += random_walk(x, y, eps, &mut rng);
    }
    sum / walks as f64
}

impl MonteCarlo {
    /// Accurate termination band.
    const EPS_ACCURATE: f64 = 1e-3;
    /// Approximate (lightweight) termination band.
    const EPS_APPROX: f64 = 2e-2;

    /// The accurate-task ratio for an approximation degree (Table 1).
    pub fn ratio_for(degree: Degree) -> f64 {
        match degree {
            Degree::Mild => 1.00,
            Degree::Medium => 0.80,
            Degree::Aggressive => 0.50,
        }
    }

    /// The subdomain boundary points: the perimeter of the centred square
    /// `[0.25, 0.75]²`, sampled uniformly.
    pub fn boundary_points(&self) -> Vec<(f64, f64)> {
        let n = self.points;
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * 4.0;
                let side = t.floor() as usize % 4;
                let frac = t.fract();
                match side {
                    0 => (0.25 + 0.5 * frac, 0.25),
                    1 => (0.75, 0.25 + 0.5 * frac),
                    2 => (0.75 - 0.5 * frac, 0.75),
                    _ => (0.25, 0.75 - 0.5 * frac),
                }
            })
            .collect()
    }

    /// Per-point accurate estimate (used by the serial reference and the
    /// accurate task body).
    fn accurate_estimate(&self, index: usize, x: f64, y: f64) -> f64 {
        estimate_point(
            x,
            y,
            self.walks_per_point,
            MonteCarlo::EPS_ACCURATE,
            self.seed.wrapping_add(index as u64),
        )
    }

    /// Per-point approximate estimate: half the walks, looser termination.
    fn approximate_estimate(&self, index: usize, x: f64, y: f64) -> f64 {
        estimate_point(
            x,
            y,
            (self.walks_per_point / 2).max(1),
            MonteCarlo::EPS_APPROX,
            self.seed.wrapping_add(index as u64),
        )
    }

    /// Serial fully accurate execution.
    pub fn run_accurate_serial(&self) -> Vec<f64> {
        self.boundary_points()
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| self.accurate_estimate(i, x, y))
            .collect()
    }

    /// Significance-annotated task execution: one task per boundary point.
    pub fn run_tasks(&self, workers: usize, policy: Policy, ratio: f64) -> RunOutput {
        let points = self.boundary_points();
        let estimates = SharedGrid::new(1, points.len(), 0.0f64);
        let this = Arc::new(self.clone());
        let start = Instant::now();
        let rt = Runtime::builder().workers(workers).policy(policy).build();
        let group = rt.create_group("mc", ratio);
        for (i, &(x, y)) in points.iter().enumerate() {
            let cell = Arc::new(std::sync::Mutex::new(estimates.region_writer(i, i + 1)));
            let cell_apx = cell.clone();
            let cfg_acc = this.clone();
            let cfg_apx = this.clone();
            rt.task(move || {
                let value = cfg_acc.accurate_estimate(i, x, y);
                cell.lock().expect("estimate cell").set(0, value);
            })
            .approx(move || {
                let value = cfg_apx.approximate_estimate(i, x, y);
                cell_apx.lock().expect("estimate cell").set(0, value);
            })
            // All points contribute equally; keep the value inside (0, 1).
            .significance(0.5)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let elapsed = start.elapsed();
        let values = estimates.snapshot();
        RunOutput::from_runtime(&rt, values, elapsed)
    }

    /// Blind perforation: only the kept points are estimated (accurately),
    /// the rest keep the default value 0 — "drop the random walks and the
    /// corresponding computations".
    pub fn run_perforated(&self, ratio: f64) -> RunOutput {
        let points = self.boundary_points();
        let start = Instant::now();
        let mut estimates = vec![0.0f64; points.len()];
        let kept = kept_indices(points.len(), PerforationRate::keep(ratio));
        for &i in &kept {
            let (x, y) = points[i];
            estimates[i] = self.accurate_estimate(i, x, y);
        }
        let elapsed = start.elapsed();
        RunOutput::serial(estimates, elapsed)
    }
}

impl Benchmark for MonteCarlo {
    fn info(&self) -> BenchmarkInfo {
        BenchmarkInfo {
            name: "MC",
            technique: ApproxTechnique::Both,
            degree_parameter: "accurate-task ratio",
            degrees: [1.00, 0.80, 0.50],
            metric: QualityMetric::RelativeError,
            perforation_supported: true,
        }
    }

    fn run(&self, config: &ExecutionConfig) -> RunOutput {
        match config.approach {
            Approach::Accurate => {
                let start = Instant::now();
                let out = self.run_accurate_serial();
                RunOutput::serial(out, start.elapsed())
            }
            Approach::Significance { policy, degree } => {
                self.run_tasks(config.workers, policy, MonteCarlo::ratio_for(degree))
            }
            Approach::Perforation { degree } => self.run_perforated(MonteCarlo::ratio_for(degree)),
        }
    }

    fn run_full_accuracy(&self, workers: usize, policy: Policy) -> RunOutput {
        self.run_tasks(workers, policy, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sig_quality::relative_error;

    fn small() -> MonteCarlo {
        MonteCarlo {
            points: 48,
            walks_per_point: 32,
            seed: 42,
        }
    }

    #[test]
    fn ratios_match_table1() {
        assert_eq!(MonteCarlo::ratio_for(Degree::Mild), 1.00);
        assert_eq!(MonteCarlo::ratio_for(Degree::Medium), 0.80);
        assert_eq!(MonteCarlo::ratio_for(Degree::Aggressive), 0.50);
    }

    #[test]
    fn boundary_points_lie_on_the_subdomain_square() {
        let mc = small();
        let points = mc.boundary_points();
        assert_eq!(points.len(), mc.points);
        for &(x, y) in &points {
            let on_vertical =
                ((x - 0.25).abs() < 1e-9 || (x - 0.75).abs() < 1e-9) && (0.25..=0.75).contains(&y);
            let on_horizontal =
                ((y - 0.25).abs() < 1e-9 || (y - 0.75).abs() < 1e-9) && (0.25..=0.75).contains(&x);
            assert!(on_vertical || on_horizontal, "({x}, {y}) not on the square");
        }
    }

    #[test]
    fn estimates_are_deterministic() {
        let mc = small();
        assert_eq!(mc.run_accurate_serial(), mc.run_accurate_serial());
    }

    #[test]
    fn estimates_track_the_harmonic_solution() {
        // For a harmonic boundary condition the interior value equals the
        // function itself; the MC estimate should be in that neighbourhood.
        let mc = MonteCarlo {
            points: 8,
            walks_per_point: 400,
            seed: 7,
        };
        let estimates = mc.run_accurate_serial();
        let points = mc.boundary_points();
        for (&(x, y), &est) in points.iter().zip(&estimates) {
            let exact = x * x - y * y;
            assert!(
                (est - exact).abs() < 0.15,
                "estimate {est} too far from exact {exact} at ({x}, {y})"
            );
        }
    }

    #[test]
    fn task_version_full_ratio_matches_serial() {
        let mc = small();
        let serial = mc.run_accurate_serial();
        let tasks = mc.run_tasks(2, Policy::GtbMaxBuffer, 1.0);
        assert_eq!(serial, tasks.values);
        assert_eq!(tasks.tasks.accurate, mc.points);
    }

    #[test]
    fn approximation_keeps_relative_error_small() {
        let mc = small();
        let reference = mc.run(&ExecutionConfig::accurate(2));
        let aggr = mc.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Aggressive,
        ));
        let err = relative_error(&reference.values, &aggr.values);
        assert!(err < 0.25, "relative error {err} too large");
        assert!(aggr.tasks.approximate > 0);
    }

    #[test]
    fn perforation_zeroes_points_and_hurts_more() {
        let mc = small();
        let reference = mc.run(&ExecutionConfig::accurate(2));
        let ours = mc.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Aggressive,
        ));
        let perf = mc.run(&ExecutionConfig::perforation(2, Degree::Aggressive));
        let q_ours = mc.quality(&reference, &ours).value;
        let q_perf = mc.quality(&reference, &perf).value;
        assert!(q_ours <= q_perf, "ours {q_ours} vs perforation {q_perf}");
        assert!(perf.values.iter().filter(|&&v| v == 0.0).count() > 0);
    }

    #[test]
    fn lighter_walks_are_cheaper() {
        // The approximate estimate uses half the walks: check that it indeed
        // differs (it is an approximation) but stays in the same ballpark.
        let mc = small();
        let (x, y) = (0.4, 0.3);
        let accurate = mc.accurate_estimate(3, x, y);
        let approximate = mc.approximate_estimate(3, x, y);
        assert_ne!(accurate, approximate);
        assert!((accurate - approximate).abs() < 0.3);
    }
}

//! Jacobi iterative solver for diagonally dominant linear systems.
//!
//! One task updates one block of unknowns per sweep. The paper executes "the
//! first 5 iterations approximately, by dropping the tasks (and computations)
//! corresponding to the upper right and lower left areas of the matrix" —
//! legitimate because a diagonally dominant matrix concentrates its
//! information in a band around the diagonal — and then iterates accurately
//! to a *relaxed* convergence tolerance (the degree knob): `10⁻⁴ / 10⁻³ /
//! 10⁻²` against the native `10⁻⁵`.
//!
//! Here the "drop the off-band areas" effect is expressed exactly as the
//! paper advertises: the approximate task body sums only the in-band columns,
//! and the first five sweeps run with `ratio = 0`, so every task takes the
//! approximate (band-only) path. Later sweeps run with `ratio = 1`.
//!
//! Quality metric: relative error of the solution vector against the fully
//! accurate solve.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sig_core::{Policy, Runtime, SharedGrid};
use sig_perforation::{kept_indices, PerforationRate};
use sig_quality::QualityMetric;

use crate::common::{
    Approach, ApproxTechnique, Benchmark, BenchmarkInfo, Degree, ExecutionConfig, RunOutput,
};

/// Jacobi benchmark configuration.
#[derive(Debug, Clone)]
pub struct Jacobi {
    /// Number of unknowns (matrix is `n × n`).
    pub n: usize,
    /// Number of row blocks (= tasks per sweep).
    pub blocks: usize,
    /// Half-width of the diagonal band used by the approximate task body.
    pub band: usize,
    /// Number of initial approximate sweeps.
    pub approx_sweeps: usize,
    /// Maximum number of sweeps.
    pub max_sweeps: usize,
    /// Convergence tolerance of the fully accurate reference execution.
    pub native_tolerance: f64,
    /// RNG seed for the right-hand side.
    pub seed: u64,
}

impl Default for Jacobi {
    fn default() -> Self {
        Jacobi {
            n: 512,
            blocks: 32,
            band: 32,
            approx_sweeps: 5,
            max_sweeps: 200,
            native_tolerance: 1e-5,
            seed: 0x5eed_0003,
        }
    }
}

/// Matrix entry `A[i][j]` of the synthetic diagonally dominant system:
/// a strong diagonal with slowly decaying off-diagonal coupling.
fn matrix_entry(n: usize, i: usize, j: usize) -> f64 {
    if i == j {
        n as f64
    } else {
        1.0 / (1.0 + i.abs_diff(j) as f64)
    }
}

/// Update one block of unknowns: `x_new[i] = (b[i] − Σ_{j≠i} A[i][j]·x[j]) / A[i][i]`.
///
/// `band` limits the columns visited: `None` sums every column (accurate),
/// `Some(w)` sums only `|i − j| ≤ w` (the approximate, band-only body).
fn update_block(
    n: usize,
    b: &[f64],
    x: &[f64],
    rows: std::ops::Range<usize>,
    band: Option<usize>,
    out: &mut [f64],
) {
    for (local, i) in rows.enumerate() {
        let (lo, hi) = match band {
            Some(w) => (i.saturating_sub(w), (i + w + 1).min(n)),
            None => (0, n),
        };
        let mut sum = 0.0;
        for (j, xj) in x.iter().enumerate().take(hi).skip(lo) {
            if j != i {
                sum += matrix_entry(n, i, j) * xj;
            }
        }
        out[local] = (b[i] - sum) / matrix_entry(n, i, i);
    }
}

impl Jacobi {
    /// The convergence tolerance for an approximation degree (Table 1).
    pub fn tolerance_for(degree: Degree) -> f64 {
        match degree {
            Degree::Mild => 1e-4,
            Degree::Medium => 1e-3,
            Degree::Aggressive => 1e-2,
        }
    }

    /// Deterministic right-hand side.
    pub fn rhs(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n).map(|_| rng.gen_range(-100.0..100.0)).collect()
    }

    fn block_range(&self, block: usize) -> std::ops::Range<usize> {
        let per_block = self.n.div_ceil(self.blocks);
        let start = block * per_block;
        let end = ((block + 1) * per_block).min(self.n);
        start..end
    }

    fn max_delta(old: &[f64], new: &[f64]) -> f64 {
        old.iter()
            .zip(new)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Serial solve with every sweep accurate, iterating to `tolerance`.
    pub fn solve_accurate_serial(&self, tolerance: f64) -> Vec<f64> {
        let b = self.rhs();
        let mut x = vec![0.0f64; self.n];
        for _ in 0..self.max_sweeps {
            let mut x_new = vec![0.0f64; self.n];
            for block in 0..self.blocks {
                let range = self.block_range(block);
                let local = range.clone();
                update_block(
                    self.n,
                    &b,
                    &x,
                    range,
                    None,
                    &mut x_new[local.start..local.end],
                );
            }
            let delta = Jacobi::max_delta(&x, &x_new);
            x = x_new;
            if delta < tolerance {
                break;
            }
        }
        x
    }

    /// Significance-annotated task execution: `approx_sweeps` band-only
    /// sweeps (ratio 0), then accurate sweeps (ratio 1) until the relaxed
    /// tolerance is reached.
    pub fn run_tasks(&self, workers: usize, policy: Policy, tolerance: f64) -> RunOutput {
        let b = Arc::new(self.rhs());
        let n = self.n;
        let band = self.band;
        let mut x = Arc::new(vec![0.0f64; self.n]);
        let per_block = self.n.div_ceil(self.blocks);

        let start = Instant::now();
        let rt = Runtime::builder().workers(workers).policy(policy).build();
        let group = rt.create_group("jacobi", 0.0);
        let mut sweeps = 0usize;
        for sweep in 0..self.max_sweeps {
            sweeps += 1;
            let accurate_sweep = sweep >= self.approx_sweeps;
            let x_new = SharedGrid::new(self.blocks, per_block, 0.0f64);
            for block in 0..self.blocks {
                let range = self.block_range(block);
                let writer = Arc::new(std::sync::Mutex::new(x_new.row_writer(block)));
                let writer_apx = writer.clone();
                let b_acc = b.clone();
                let b_apx = b.clone();
                let x_acc = x.clone();
                let x_apx = x.clone();
                let range_apx = range.clone();
                let len = range.len();
                rt.task(move || {
                    let mut out = writer.lock().expect("block writer");
                    update_block(
                        n,
                        &b_acc,
                        &x_acc,
                        range.clone(),
                        None,
                        &mut out.as_mut_slice()[..len],
                    );
                })
                .approx(move || {
                    let mut out = writer_apx.lock().expect("block writer");
                    update_block(
                        n,
                        &b_apx,
                        &x_apx,
                        range_apx.clone(),
                        Some(band),
                        &mut out.as_mut_slice()[..len],
                    );
                })
                .significance(0.5)
                .group(&group)
                .spawn();
            }
            // The ratio clause at the barrier selects the sweep mode:
            // 0.0 during the initial approximate phase, 1.0 afterwards.
            rt.wait_group_with_ratio(&group, if accurate_sweep { 1.0 } else { 0.0 });

            let rows = x_new.snapshot();
            let mut merged = vec![0.0f64; self.n];
            for block in 0..self.blocks {
                let range = self.block_range(block);
                let len = range.len();
                merged[range].copy_from_slice(&rows[block * per_block..block * per_block + len]);
            }
            let delta = Jacobi::max_delta(&x, &merged);
            x = Arc::new(merged);
            // Only accurate sweeps can declare convergence.
            if accurate_sweep && delta < tolerance {
                break;
            }
        }
        let elapsed = start.elapsed();
        let mut output = RunOutput::from_runtime(&rt, (*x).clone(), elapsed);
        // Record the sweep count in the task totals for analysis.
        output.tasks.total = output.tasks.total.max(sweeps * self.blocks);
        output
    }

    /// Loop perforation: every sweep updates only a kept subset of the row
    /// blocks (accurately); the remaining unknowns keep their previous value.
    /// Iterates to the same relaxed tolerance.
    pub fn run_perforated(&self, tolerance: f64, keep: f64) -> RunOutput {
        let b = self.rhs();
        let mut x = vec![0.0f64; self.n];
        let start = Instant::now();
        let kept = kept_indices(self.blocks, PerforationRate::keep(keep));
        for _ in 0..self.max_sweeps {
            let mut x_new = x.clone();
            for &block in &kept {
                let range = self.block_range(block);
                let local = range.clone();
                update_block(
                    self.n,
                    &b,
                    &x,
                    range,
                    None,
                    &mut x_new[local.start..local.end],
                );
            }
            let delta = Jacobi::max_delta(&x, &x_new);
            x = x_new;
            if delta < tolerance {
                break;
            }
        }
        let elapsed = start.elapsed();
        RunOutput::serial(x, elapsed)
    }
}

impl Benchmark for Jacobi {
    fn info(&self) -> BenchmarkInfo {
        BenchmarkInfo {
            name: "Jacobi",
            technique: ApproxTechnique::Both,
            degree_parameter: "convergence tolerance",
            degrees: [1e-4, 1e-3, 1e-2],
            metric: QualityMetric::RelativeError,
            perforation_supported: true,
        }
    }

    fn run(&self, config: &ExecutionConfig) -> RunOutput {
        match config.approach {
            Approach::Accurate => {
                let start = Instant::now();
                let out = self.solve_accurate_serial(self.native_tolerance);
                RunOutput::serial(out, start.elapsed())
            }
            Approach::Significance { policy, degree } => {
                self.run_tasks(config.workers, policy, Jacobi::tolerance_for(degree))
            }
            Approach::Perforation { degree } => {
                // Match the paper: perforation keeps 80% of the row blocks
                // and converges to the same relaxed tolerance.
                self.run_perforated(Jacobi::tolerance_for(degree), 0.8)
            }
        }
    }

    fn run_full_accuracy(&self, workers: usize, policy: Policy) -> RunOutput {
        // Disable the initial approximate sweeps so every task runs its
        // accurate body; iterate to the native tolerance.
        let fully_accurate = Jacobi {
            approx_sweeps: 0,
            ..self.clone()
        };
        fully_accurate.run_tasks(workers, policy, self.native_tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sig_quality::relative_error;

    fn small() -> Jacobi {
        Jacobi {
            n: 128,
            blocks: 8,
            band: 16,
            approx_sweeps: 5,
            max_sweeps: 100,
            native_tolerance: 1e-5,
            seed: 3,
        }
    }

    #[test]
    fn tolerances_match_table1() {
        assert_eq!(Jacobi::tolerance_for(Degree::Mild), 1e-4);
        assert_eq!(Jacobi::tolerance_for(Degree::Medium), 1e-3);
        assert_eq!(Jacobi::tolerance_for(Degree::Aggressive), 1e-2);
    }

    #[test]
    fn matrix_is_diagonally_dominant() {
        let n = 64;
        for i in 0..n {
            let off_diag: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| matrix_entry(n, i, j).abs())
                .sum();
            assert!(matrix_entry(n, i, i) > off_diag, "row {i} not dominant");
        }
    }

    #[test]
    fn accurate_solve_satisfies_the_system() {
        let j = small();
        let x = j.solve_accurate_serial(1e-8);
        let b = j.rhs();
        // Residual check: ||Ax − b||_∞ must be tiny.
        let mut max_residual = 0.0f64;
        for (i, bi) in b.iter().enumerate() {
            let mut row = 0.0;
            for (jj, xv) in x.iter().enumerate() {
                row += matrix_entry(j.n, i, jj) * xv;
            }
            max_residual = max_residual.max((row - bi).abs());
        }
        assert!(max_residual < 1e-3, "residual {max_residual}");
    }

    #[test]
    fn block_ranges_partition_unknowns() {
        let j = Jacobi {
            n: 100,
            blocks: 7,
            ..small()
        };
        let mut covered = vec![false; j.n];
        for block in 0..j.blocks {
            for i in j.block_range(block) {
                assert!(!covered[i]);
                covered[i] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn band_only_update_is_an_approximation() {
        let j = small();
        let b = j.rhs();
        let x = vec![1.0f64; j.n];
        let mut full = vec![0.0f64; 16];
        let mut banded = vec![0.0f64; 16];
        update_block(j.n, &b, &x, 0..16, None, &mut full);
        update_block(j.n, &b, &x, 0..16, Some(j.band), &mut banded);
        assert_ne!(full, banded);
        let err = relative_error(&full, &banded);
        assert!(err < 0.2, "band approximation error {err} too large");
    }

    #[test]
    fn task_solver_converges_close_to_reference() {
        let j = small();
        let reference = j.run(&ExecutionConfig::accurate(2));
        for degree in [Degree::Mild, Degree::Medium, Degree::Aggressive] {
            let approx = j.run(&ExecutionConfig::significance(
                2,
                Policy::GtbMaxBuffer,
                degree,
            ));
            let q = j.quality(&reference, &approx).value;
            assert!(q < 5.0, "{:?}: relative error {q}% too large", degree);
        }
    }

    #[test]
    fn relaxed_tolerance_degrades_monotonically() {
        let j = small();
        let reference = j.run(&ExecutionConfig::accurate(2));
        let mild = j.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Mild,
        ));
        let aggr = j.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Aggressive,
        ));
        let q_mild = j.quality(&reference, &mild).value;
        let q_aggr = j.quality(&reference, &aggr).value;
        assert!(
            q_mild <= q_aggr + 1e-9,
            "mild {q_mild} vs aggressive {q_aggr}"
        );
    }

    #[test]
    fn perforated_solver_still_converges() {
        let j = small();
        let reference = j.run(&ExecutionConfig::accurate(2));
        let perf = j.run(&ExecutionConfig::perforation(2, Degree::Medium));
        let q = j.quality(&reference, &perf).value;
        assert!(q.is_finite());
        assert_eq!(perf.values.len(), j.n);
    }

    #[test]
    fn early_sweeps_run_approximately_later_ones_accurately() {
        let j = small();
        let out = j.run_tasks(2, Policy::GtbMaxBuffer, 1e-3);
        // The first 5 sweeps (8 blocks each) are approximate; the rest are
        // accurate.
        assert_eq!(out.tasks.approximate, j.approx_sweeps * j.blocks);
        assert!(out.tasks.accurate >= j.blocks);
    }
}

//! # sig-kernels — the paper's benchmark suite
//!
//! The six benchmarks of Table 1, each ported to the significance-aware task
//! model of `sig-core` and equipped with
//!
//! * a fully **accurate** reference execution,
//! * a **significance-annotated task version** (accurate + approximate task
//!   bodies, per-task significance, group ratio per approximation degree),
//! * a **loop-perforated** variant matched to the number of accurately
//!   executed tasks (where perforation is applicable), and
//! * a deterministic, seeded **input generator** replacing the paper's
//!   external input sets.
//!
//! | Benchmark | Approximate or drop | Degree knob (Mild/Medium/Aggr) | Quality |
//! |---|---|---|---|
//! | [`sobel`] | Approximate | ratio 0.80 / 0.30 / 0.00 | PSNR |
//! | [`dct`] | Drop | ratio 0.80 / 0.40 / 0.10 | PSNR |
//! | [`mc`] | Drop + approximate | ratio 1.00 / 0.80 / 0.50 | Rel. error |
//! | [`kmeans`] | Approximate | ratio 0.80 / 0.60 / 0.40 | Rel. error |
//! | [`jacobi`] | Drop + approximate | tolerance 1e-4 / 1e-3 / 1e-2 | Rel. error |
//! | [`fluidanimate`] | Approximate | accurate steps 1/2, 1/4, 1/8 | Rel. error |
//!
//! All benchmarks implement the [`Benchmark`] trait so the experiment harness
//! and the Criterion benches can drive them uniformly.

#![warn(missing_docs)]

pub mod common;
pub mod dct;
pub mod fluidanimate;
pub mod jacobi;
pub mod kmeans;
pub mod mc;
pub mod sobel;

pub use common::{
    all_benchmarks, Approach, ApproxTechnique, Benchmark, BenchmarkInfo, Degree, ExecutionConfig,
    RunOutput, TaskCounts,
};

//! Sobel edge-detection filter (the paper's running example, Listing 1).
//!
//! One task computes one output image row. Task significance cycles through
//! `(i % 9 + 1) / 10` so that approximated rows are spread uniformly over the
//! image, and the approximate body uses a lighter stencil with 2/3 of the
//! filter taps and `|sx| + |sy|` instead of `sqrt(sx² + sy²)`.
//!
//! Degrees (Table 1): ratio of accurately executed tasks 80% (Mild), 30%
//! (Medium), 0% (Aggressive); quality metric PSNR.

use std::sync::Arc;
use std::time::Instant;

use sig_core::{BatchTask, Policy, Runtime, SharedGrid};
use sig_perforation::{kept_indices, PerforationRate};
use sig_quality::{GrayImage, QualityMetric};

use crate::common::{
    Approach, ApproxTechnique, Benchmark, BenchmarkInfo, Degree, ExecutionConfig, RunOutput,
};

/// Sobel benchmark configuration.
#[derive(Debug, Clone)]
pub struct Sobel {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
}

impl Default for Sobel {
    fn default() -> Self {
        Sobel {
            width: 512,
            height: 512,
        }
    }
}

/// Accurate horizontal Sobel operator (all six taps).
#[inline]
fn sbl_x(img: &[u8], width: usize, y: usize, x: usize) -> i32 {
    img[(y - 1) * width + x - 1] as i32
        + 2 * img[y * width + x - 1] as i32
        + img[(y + 1) * width + x - 1] as i32
        - img[(y - 1) * width + x + 1] as i32
        - 2 * img[y * width + x + 1] as i32
        - img[(y + 1) * width + x + 1] as i32
}

/// Accurate vertical Sobel operator (all six taps).
#[inline]
fn sbl_y(img: &[u8], width: usize, y: usize, x: usize) -> i32 {
    img[(y - 1) * width + x - 1] as i32
        + 2 * img[(y - 1) * width + x] as i32
        + img[(y - 1) * width + x + 1] as i32
        - img[(y + 1) * width + x - 1] as i32
        - 2 * img[(y + 1) * width + x] as i32
        - img[(y + 1) * width + x + 1] as i32
}

/// Approximate horizontal operator: the corner taps are omitted
/// (lines 11/13 of Listing 1).
#[inline]
fn sbl_x_approx(img: &[u8], width: usize, y: usize, x: usize) -> i32 {
    2 * img[y * width + x - 1] as i32 + img[(y + 1) * width + x - 1] as i32
        - 2 * img[y * width + x + 1] as i32
        - img[(y + 1) * width + x + 1] as i32
}

/// Approximate vertical operator: the corner taps are omitted.
#[inline]
fn sbl_y_approx(img: &[u8], width: usize, y: usize, x: usize) -> i32 {
    2 * img[(y - 1) * width + x] as i32 + img[(y - 1) * width + x + 1] as i32
        - 2 * img[(y + 1) * width + x] as i32
        - img[(y + 1) * width + x + 1] as i32
}

/// Accurate computation of one output row: `sqrt(sx² + sy²)`, clamped to 255.
fn row_accurate(img: &[u8], width: usize, y: usize, out_row: &mut [u8]) {
    for (x, out) in out_row.iter_mut().enumerate().take(width - 1).skip(1) {
        let gx = sbl_x(img, width, y, x) as f64;
        let gy = sbl_y(img, width, y, x) as f64;
        let p = (gx * gx + gy * gy).sqrt();
        *out = if p > 255.0 { 255 } else { p as u8 };
    }
}

/// Approximate computation of one output row: `|sx| + |sy|` with the reduced
/// stencils.
fn row_approximate(img: &[u8], width: usize, y: usize, out_row: &mut [u8]) {
    for (x, out) in out_row.iter_mut().enumerate().take(width - 1).skip(1) {
        let p =
            (sbl_x_approx(img, width, y, x).abs() + sbl_y_approx(img, width, y, x).abs()) as u32;
        *out = if p > 255 { 255 } else { p as u8 };
    }
}

impl Sobel {
    /// The accurate-task ratio for an approximation degree (Table 1).
    pub fn ratio_for(degree: Degree) -> f64 {
        match degree {
            Degree::Mild => 0.80,
            Degree::Medium => 0.30,
            Degree::Aggressive => 0.00,
        }
    }

    /// The deterministic synthetic input image.
    pub fn input(&self) -> GrayImage {
        GrayImage::synthetic(self.width, self.height)
    }

    /// Turn a run's flat output back into an image (used by the Figure 1 /
    /// Figure 3 generators).
    pub fn output_image(&self, values: &[f64]) -> GrayImage {
        let pixels = values.iter().map(|&v| v.clamp(0.0, 255.0) as u8).collect();
        GrayImage::from_raw(self.width, self.height, pixels)
    }

    /// Serial, fully accurate reference execution.
    pub fn run_accurate_serial(&self) -> Vec<u8> {
        let img = self.input();
        let pixels = img.pixels();
        let mut out = vec![0u8; self.width * self.height];
        for y in 1..self.height - 1 {
            let row = &mut out[y * self.width..(y + 1) * self.width];
            row_accurate(pixels, self.width, y, row);
        }
        out
    }

    /// Significance-annotated task execution: one task per output row,
    /// injected through the batched spawn pipeline — the rows are
    /// footprint-free and fine-grained, exactly the flood `spawn_batch`
    /// amortises (one wake, one stats record and one counter bump per
    /// image instead of per row).
    pub fn run_tasks(&self, workers: usize, policy: Policy, ratio: f64) -> RunOutput {
        let img = Arc::new(self.input().into_raw());
        let width = self.width;
        let out = SharedGrid::new(self.height, self.width, 0u8);
        let start = Instant::now();
        let rt = Runtime::builder().workers(workers).policy(policy).build();
        let group = rt.create_group("sobel", ratio);
        let rows = (1..self.height - 1).map(|y| {
            let img_acc = img.clone();
            let img_apx = img.clone();
            // Exactly one of the two bodies runs, so they share the row's
            // single exclusive writer through a mutex.
            let row = Arc::new(std::sync::Mutex::new(out.row_writer(y)));
            let row_apx = row.clone();
            BatchTask::new(move || {
                let mut row = row.lock().expect("row writer lock");
                row_accurate(&img_acc, width, y, row.as_mut_slice());
            })
            .approx(move || {
                let mut row = row_apx.lock().expect("row writer lock");
                row_approximate(&img_apx, width, y, row.as_mut_slice());
            })
            .significance(((y % 9) + 1) as f64 / 10.0)
        });
        rt.batch().group(&group).spawn_tasks(rows);
        rt.wait_group(&group);
        let elapsed = start.elapsed();
        let values: Vec<f64> = out.snapshot().iter().map(|&p| p as f64).collect();
        RunOutput::from_runtime(&rt, values, elapsed)
    }

    /// Loop-perforated execution: only the kept rows are computed (all with
    /// the accurate stencil), matching the number of accurate tasks the
    /// significance runtime would execute.
    pub fn run_perforated(&self, ratio: f64) -> RunOutput {
        let img = self.input();
        let pixels = img.pixels();
        let mut out = vec![0u8; self.width * self.height];
        let start = Instant::now();
        let rows: Vec<usize> = (1..self.height - 1).collect();
        let kept = kept_indices(rows.len(), PerforationRate::keep(ratio));
        for &idx in &kept {
            let y = rows[idx];
            let row = &mut out[y * self.width..(y + 1) * self.width];
            row_accurate(pixels, self.width, y, row);
        }
        let elapsed = start.elapsed();
        RunOutput::serial(out.iter().map(|&p| p as f64).collect(), elapsed)
    }
}

impl Benchmark for Sobel {
    fn info(&self) -> BenchmarkInfo {
        BenchmarkInfo {
            name: "Sobel",
            technique: ApproxTechnique::Approximate,
            degree_parameter: "accurate-task ratio",
            degrees: [0.80, 0.30, 0.00],
            metric: QualityMetric::PsnrInverse,
            perforation_supported: true,
        }
    }

    fn run(&self, config: &ExecutionConfig) -> RunOutput {
        match config.approach {
            Approach::Accurate => {
                let start = Instant::now();
                let out = self.run_accurate_serial();
                let elapsed = start.elapsed();
                RunOutput::serial(out.iter().map(|&p| p as f64).collect(), elapsed)
            }
            Approach::Significance { policy, degree } => {
                self.run_tasks(config.workers, policy, Sobel::ratio_for(degree))
            }
            Approach::Perforation { degree } => self.run_perforated(Sobel::ratio_for(degree)),
        }
    }

    fn run_full_accuracy(&self, workers: usize, policy: Policy) -> RunOutput {
        self.run_tasks(workers, policy, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::score_against;

    fn small() -> Sobel {
        Sobel {
            width: 96,
            height: 96,
        }
    }

    #[test]
    fn ratios_match_table1() {
        assert_eq!(Sobel::ratio_for(Degree::Mild), 0.80);
        assert_eq!(Sobel::ratio_for(Degree::Medium), 0.30);
        assert_eq!(Sobel::ratio_for(Degree::Aggressive), 0.00);
    }

    #[test]
    fn accurate_serial_detects_edges() {
        let s = small();
        let out = s.run_accurate_serial();
        // The synthetic image has hard edges, so some pixels must saturate.
        assert!(out.iter().any(|&p| p > 100));
        // The border rows are untouched.
        assert!(out[..s.width].iter().all(|&p| p == 0));
    }

    #[test]
    fn task_version_with_ratio_one_matches_serial() {
        let s = small();
        let serial = s.run_accurate_serial();
        let tasks = s.run_tasks(2, Policy::GtbMaxBuffer, 1.0);
        let serial_f: Vec<f64> = serial.iter().map(|&p| p as f64).collect();
        assert_eq!(serial_f, tasks.values);
        assert_eq!(tasks.tasks.total, s.height - 2);
        assert_eq!(tasks.tasks.accurate, s.height - 2);
    }

    #[test]
    fn approximation_degrades_quality_gracefully() {
        let s = small();
        let reference = s.run(&ExecutionConfig::accurate(2));
        let mild = s.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Mild,
        ));
        let aggressive = s.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Aggressive,
        ));
        let q_mild = s.quality(&reference, &mild).value;
        let q_aggr = s.quality(&reference, &aggressive).value;
        assert!(
            q_mild <= q_aggr,
            "mild {q_mild} should beat aggressive {q_aggr}"
        );
        // Even aggressive approximation keeps a finite, reasonable PSNR:
        // PSNR^-1 < 0.1 means PSNR > 10 dB.
        assert!(q_aggr < 0.1, "aggressive PSNR^-1 {q_aggr} too large");
    }

    #[test]
    fn aggressive_tasks_all_run_approximately() {
        let s = small();
        let out = s.run_tasks(2, Policy::GtbMaxBuffer, 0.0);
        assert_eq!(out.tasks.accurate, 0);
        assert_eq!(out.tasks.approximate, s.height - 2);
    }

    #[test]
    fn perforation_loses_more_quality_than_significance() {
        // The paper's Figure 1 vs Figure 3 comparison: at the same accurate
        // fraction, blind perforation (black rows) is much worse than
        // approximating the dropped rows.
        let s = small();
        let reference = s.run(&ExecutionConfig::accurate(2));
        let ours = s.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Medium,
        ));
        let perforated = s.run(&ExecutionConfig::perforation(2, Degree::Medium));
        let q_ours = s.quality(&reference, &ours).value;
        let q_perf = s.quality(&reference, &perforated).value;
        assert!(
            q_ours < q_perf,
            "significance ({q_ours}) should beat perforation ({q_perf})"
        );
    }

    #[test]
    fn lqh_policy_also_produces_valid_output() {
        let s = small();
        let reference = s.run(&ExecutionConfig::accurate(2));
        let lqh = s.run(&ExecutionConfig::significance(
            2,
            Policy::Lqh,
            Degree::Medium,
        ));
        assert_eq!(lqh.values.len(), reference.values.len());
        assert_eq!(lqh.tasks.total, s.height - 2);
        let q = score_against(QualityMetric::PsnrInverse, &reference.values, &lqh.values);
        assert!(q.value < 0.2);
    }

    #[test]
    fn output_image_roundtrip() {
        let s = small();
        let out = s.run(&ExecutionConfig::accurate(1));
        let img = s.output_image(&out.values);
        assert_eq!(img.width(), s.width);
        assert_eq!(img.height(), s.height);
    }
}

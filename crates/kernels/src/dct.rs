//! Discrete Cosine Transform (8×8 block DCT, the JPEG building block).
//!
//! The image is split into 8×8 blocks. The 64 coefficients of a block are
//! grouped into 15 diagonal *frequency layers* (`u + v = 0 .. 14`); a task
//! computes one frequency layer for all blocks of one stripe of block rows.
//! "We assign higher significance to tasks that compute lower frequency
//! coefficients" (Section 4.1), because the human eye is more sensitive to
//! low spatial frequencies. Non-accurate tasks are **dropped** (no
//! `approxfun`), zeroing their coefficients — exactly what JPEG quantisation
//! does to high frequencies.
//!
//! Degrees (Table 1): ratio 80% / 40% / 10%; quality metric PSNR of the
//! reconstructed (inverse-transformed) image.

use std::f64::consts::PI;
use std::sync::Arc;
use std::time::Instant;

use sig_core::{Policy, Runtime, SharedGrid};
use sig_perforation::{kept_indices, PerforationRate};
use sig_quality::{GrayImage, QualityMetric};

use crate::common::{
    Approach, ApproxTechnique, Benchmark, BenchmarkInfo, Degree, ExecutionConfig, RunOutput,
};

/// Block edge length (8, as in JPEG).
const BLOCK: usize = 8;
/// Number of diagonal frequency layers in an 8×8 block (`u + v` in `0..=14`).
const LAYERS: usize = 2 * BLOCK - 1;

/// DCT benchmark configuration.
#[derive(Debug, Clone)]
pub struct Dct {
    /// Image width (multiple of 8).
    pub width: usize,
    /// Image height (multiple of 8).
    pub height: usize,
}

impl Default for Dct {
    fn default() -> Self {
        Dct {
            width: 256,
            height: 256,
        }
    }
}

/// Number of `(u, v)` coefficient positions on diagonal layer `k`.
fn layer_size(k: usize) -> usize {
    assert!(k < LAYERS);
    if k < BLOCK {
        k + 1
    } else {
        2 * BLOCK - 1 - k
    }
}

/// The `(u, v)` coefficient positions on layer `k`, in ascending `u`.
fn layer_positions(k: usize) -> Vec<(usize, usize)> {
    (0..BLOCK)
        .filter_map(|u| {
            let v = k.checked_sub(u)?;
            (v < BLOCK).then_some((u, v))
        })
        .collect()
}

/// DCT-II basis scale factor.
fn alpha(u: usize) -> f64 {
    if u == 0 {
        (1.0 / BLOCK as f64).sqrt()
    } else {
        (2.0 / BLOCK as f64).sqrt()
    }
}

/// Compute one coefficient `(u, v)` of the 8×8 block whose top-left pixel is
/// `(bx * 8, by * 8)`.
fn block_coefficient(pixels: &[u8], width: usize, bx: usize, by: usize, u: usize, v: usize) -> f64 {
    let mut sum = 0.0;
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let p = pixels[(by * BLOCK + y) * width + bx * BLOCK + x] as f64 - 128.0;
            sum += p
                * ((2.0 * x as f64 + 1.0) * u as f64 * PI / (2.0 * BLOCK as f64)).cos()
                * ((2.0 * y as f64 + 1.0) * v as f64 * PI / (2.0 * BLOCK as f64)).cos();
        }
    }
    alpha(u) * alpha(v) * sum
}

/// Inverse-transform one block from a dense 64-coefficient array.
fn inverse_block(coeffs: &[f64; BLOCK * BLOCK], out: &mut [f64; BLOCK * BLOCK]) {
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut sum = 0.0;
            for u in 0..BLOCK {
                for v in 0..BLOCK {
                    sum += alpha(u)
                        * alpha(v)
                        * coeffs[v * BLOCK + u]
                        * ((2.0 * x as f64 + 1.0) * u as f64 * PI / (2.0 * BLOCK as f64)).cos()
                        * ((2.0 * y as f64 + 1.0) * v as f64 * PI / (2.0 * BLOCK as f64)).cos();
                }
            }
            out[y * BLOCK + x] = (sum + 128.0).clamp(0.0, 255.0);
        }
    }
}

/// Layout of the layer-major coefficient buffer: coefficients are stored
/// first by layer, then by stripe (block row), then by block within the
/// stripe, then by position within the layer. This keeps each
/// (stripe, layer) task's output contiguous so tasks can hold disjoint
/// region writers.
#[derive(Debug, Clone)]
struct CoeffLayout {
    blocks_x: usize,
    blocks_y: usize,
    /// Starting offset of each layer's segment.
    layer_offsets: Vec<usize>,
    total: usize,
}

impl CoeffLayout {
    fn new(width: usize, height: usize) -> Self {
        let blocks_x = width / BLOCK;
        let blocks_y = height / BLOCK;
        let mut layer_offsets = Vec::with_capacity(LAYERS);
        let mut offset = 0;
        for k in 0..LAYERS {
            layer_offsets.push(offset);
            offset += layer_size(k) * blocks_x * blocks_y;
        }
        CoeffLayout {
            blocks_x,
            blocks_y,
            layer_offsets,
            total: offset,
        }
    }

    /// Region (half-open range) written by the task for (stripe `by`,
    /// layer `k`).
    fn stripe_layer_range(&self, by: usize, k: usize) -> (usize, usize) {
        let per_block = layer_size(k);
        let start = self.layer_offsets[k] + by * self.blocks_x * per_block;
        (start, start + self.blocks_x * per_block)
    }

    /// Offset of coefficient position `pos_idx` (index into
    /// `layer_positions(k)`) of block `(bx, by)` on layer `k`.
    fn coeff_offset(&self, bx: usize, by: usize, k: usize, pos_idx: usize) -> usize {
        let per_block = layer_size(k);
        self.layer_offsets[k] + (by * self.blocks_x + bx) * per_block + pos_idx
    }
}

impl Dct {
    /// The accurate-task ratio for an approximation degree (Table 1).
    pub fn ratio_for(degree: Degree) -> f64 {
        match degree {
            Degree::Mild => 0.80,
            Degree::Medium => 0.40,
            Degree::Aggressive => 0.10,
        }
    }

    /// Significance of the task computing frequency layer `k`: lower
    /// frequencies (small `k`) are more significant. Kept inside `(0, 1)` so
    /// the special values 0.0/1.0 are reserved for unconditional decisions,
    /// as the paper's Sobel example recommends.
    pub fn significance_for_layer(k: usize) -> f64 {
        0.9 - 0.8 * k as f64 / (LAYERS - 1) as f64
    }

    /// The deterministic synthetic input image.
    pub fn input(&self) -> GrayImage {
        GrayImage::synthetic(self.width, self.height)
    }

    fn layout(&self) -> CoeffLayout {
        CoeffLayout::new(self.width, self.height)
    }

    /// Compute the coefficients of one (stripe, layer) chunk into `out`,
    /// which must be the region returned by `stripe_layer_range`.
    fn compute_stripe_layer(
        pixels: &[u8],
        width: usize,
        layout: &CoeffLayout,
        by: usize,
        k: usize,
        out: &mut [f64],
    ) {
        let positions = layer_positions(k);
        let per_block = positions.len();
        for bx in 0..layout.blocks_x {
            for (pos_idx, &(u, v)) in positions.iter().enumerate() {
                out[bx * per_block + pos_idx] = block_coefficient(pixels, width, bx, by, u, v);
            }
        }
    }

    /// Reconstruct the image from a (possibly partial) layer-major
    /// coefficient buffer; missing coefficients are zero, exactly like
    /// aggressively quantised JPEG.
    fn reconstruct(&self, layout: &CoeffLayout, coeffs: &[f64]) -> Vec<f64> {
        let mut image = vec![0.0f64; self.width * self.height];
        let mut block_coeffs = [0.0f64; BLOCK * BLOCK];
        let mut block_pixels = [0.0f64; BLOCK * BLOCK];
        for by in 0..layout.blocks_y {
            for bx in 0..layout.blocks_x {
                block_coeffs.fill(0.0);
                for k in 0..LAYERS {
                    for (pos_idx, &(u, v)) in layer_positions(k).iter().enumerate() {
                        block_coeffs[v * BLOCK + u] =
                            coeffs[layout.coeff_offset(bx, by, k, pos_idx)];
                    }
                }
                inverse_block(&block_coeffs, &mut block_pixels);
                for y in 0..BLOCK {
                    for x in 0..BLOCK {
                        image[(by * BLOCK + y) * self.width + bx * BLOCK + x] =
                            block_pixels[y * BLOCK + x];
                    }
                }
            }
        }
        image
    }

    /// Serial fully accurate execution (all layers computed).
    pub fn run_accurate_serial(&self) -> Vec<f64> {
        let layout = self.layout();
        let img = self.input();
        let pixels = img.pixels();
        let mut coeffs = vec![0.0f64; layout.total];
        for by in 0..layout.blocks_y {
            for k in 0..LAYERS {
                let (start, end) = layout.stripe_layer_range(by, k);
                Dct::compute_stripe_layer(
                    pixels,
                    self.width,
                    &layout,
                    by,
                    k,
                    &mut coeffs[start..end],
                );
            }
        }
        self.reconstruct(&layout, &coeffs)
    }

    /// Significance-annotated task execution: one task per (stripe, layer).
    pub fn run_tasks(&self, workers: usize, policy: Policy, ratio: f64) -> RunOutput {
        let layout = Arc::new(self.layout());
        let img = Arc::new(self.input().into_raw());
        let width = self.width;
        let coeffs = SharedGrid::new(1, layout.total, 0.0f64);
        let start = Instant::now();
        let rt = Runtime::builder().workers(workers).policy(policy).build();
        let group = rt.create_group("dct", ratio);
        for by in 0..layout.blocks_y {
            for k in 0..LAYERS {
                let (seg_start, seg_end) = layout.stripe_layer_range(by, k);
                let mut region = coeffs.region_writer(seg_start, seg_end);
                let img = img.clone();
                let layout = layout.clone();
                rt.task(move || {
                    Dct::compute_stripe_layer(&img, width, &layout, by, k, region.as_mut_slice());
                })
                // No approxfun: tasks selected for approximation are dropped,
                // zeroing their frequency layer.
                .significance(Dct::significance_for_layer(k))
                .group(&group)
                .spawn();
            }
        }
        rt.wait_group(&group);
        let elapsed = start.elapsed();
        let values = self.reconstruct(&layout, &coeffs.snapshot());
        RunOutput::from_runtime(&rt, values, elapsed)
    }

    /// Blind loop perforation over the same (stripe, layer) iteration space:
    /// the kept fraction equals the accurate-task ratio, but the selection is
    /// significance-oblivious, so low-frequency layers get dropped too.
    pub fn run_perforated(&self, ratio: f64) -> RunOutput {
        let layout = self.layout();
        let img = self.input();
        let pixels = img.pixels();
        let mut coeffs = vec![0.0f64; layout.total];
        let start = Instant::now();
        let total_chunks = layout.blocks_y * LAYERS;
        let kept = kept_indices(total_chunks, PerforationRate::keep(ratio));
        for &chunk in &kept {
            let by = chunk / LAYERS;
            let k = chunk % LAYERS;
            let (seg_start, seg_end) = layout.stripe_layer_range(by, k);
            Dct::compute_stripe_layer(
                pixels,
                self.width,
                &layout,
                by,
                k,
                &mut coeffs[seg_start..seg_end],
            );
        }
        let elapsed = start.elapsed();
        RunOutput::serial(self.reconstruct(&layout, &coeffs), elapsed)
    }
}

impl Benchmark for Dct {
    fn info(&self) -> BenchmarkInfo {
        BenchmarkInfo {
            name: "DCT",
            technique: ApproxTechnique::Drop,
            degree_parameter: "accurate-task ratio",
            degrees: [0.80, 0.40, 0.10],
            metric: QualityMetric::PsnrInverse,
            perforation_supported: true,
        }
    }

    fn run(&self, config: &ExecutionConfig) -> RunOutput {
        match config.approach {
            Approach::Accurate => {
                let start = Instant::now();
                let out = self.run_accurate_serial();
                RunOutput::serial(out, start.elapsed())
            }
            Approach::Significance { policy, degree } => {
                self.run_tasks(config.workers, policy, Dct::ratio_for(degree))
            }
            Approach::Perforation { degree } => self.run_perforated(Dct::ratio_for(degree)),
        }
    }

    fn run_full_accuracy(&self, workers: usize, policy: Policy) -> RunOutput {
        self.run_tasks(workers, policy, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dct {
        Dct {
            width: 64,
            height: 64,
        }
    }

    #[test]
    fn layer_sizes_sum_to_64() {
        let total: usize = (0..LAYERS).map(layer_size).sum();
        assert_eq!(total, BLOCK * BLOCK);
        assert_eq!(layer_size(0), 1);
        assert_eq!(layer_size(7), 8);
        assert_eq!(layer_size(14), 1);
    }

    #[test]
    fn layer_positions_are_on_the_diagonal() {
        for k in 0..LAYERS {
            let positions = layer_positions(k);
            assert_eq!(positions.len(), layer_size(k));
            assert!(positions
                .iter()
                .all(|&(u, v)| u + v == k && u < BLOCK && v < BLOCK));
        }
    }

    #[test]
    fn significance_decreases_with_frequency() {
        let low = Dct::significance_for_layer(0);
        let high = Dct::significance_for_layer(LAYERS - 1);
        assert!(low > high);
        assert!(low < 1.0 && high > 0.0, "special values must not be used");
    }

    #[test]
    fn ratios_match_table1() {
        assert_eq!(Dct::ratio_for(Degree::Mild), 0.80);
        assert_eq!(Dct::ratio_for(Degree::Medium), 0.40);
        assert_eq!(Dct::ratio_for(Degree::Aggressive), 0.10);
    }

    #[test]
    fn full_transform_roundtrips_the_image() {
        let d = small();
        let original: Vec<f64> = d.input().to_f64();
        let reconstructed = d.run_accurate_serial();
        // DCT followed by IDCT with all coefficients reproduces the image
        // (up to clamping / floating point noise).
        let max_err = original
            .iter()
            .zip(&reconstructed)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1.0, "roundtrip error {max_err} too large");
    }

    #[test]
    fn task_version_with_full_ratio_matches_serial() {
        let d = small();
        let serial = d.run_accurate_serial();
        let tasks = d.run_tasks(2, Policy::GtbMaxBuffer, 1.0);
        let max_err = serial
            .iter()
            .zip(&tasks.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9);
        let layout = d.layout();
        assert_eq!(tasks.tasks.total, layout.blocks_y * LAYERS);
    }

    #[test]
    fn dropping_high_frequencies_is_graceful() {
        let d = small();
        let reference = d.run(&ExecutionConfig::accurate(2));
        let mild = d.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Mild,
        ));
        let aggr = d.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Aggressive,
        ));
        let q_mild = d.quality(&reference, &mild).value;
        let q_aggr = d.quality(&reference, &aggr).value;
        assert!(q_mild <= q_aggr);
        // Even at 10% accurate tasks the image survives (PSNR > 10 dB) since
        // the kept tasks are the perceptually important low frequencies.
        assert!(q_aggr < 0.1, "aggressive PSNR^-1 {q_aggr}");
        // Dropped tasks show up in the counters.
        assert!(aggr.tasks.dropped > 0);
        assert_eq!(aggr.tasks.approximate, 0);
    }

    #[test]
    fn significance_beats_blind_perforation_at_equal_work() {
        let d = small();
        let reference = d.run(&ExecutionConfig::accurate(2));
        let ours = d.run(&ExecutionConfig::significance(
            2,
            Policy::GtbMaxBuffer,
            Degree::Medium,
        ));
        let perf = d.run(&ExecutionConfig::perforation(2, Degree::Medium));
        let q_ours = d.quality(&reference, &ours).value;
        let q_perf = d.quality(&reference, &perf).value;
        assert!(
            q_ours < q_perf,
            "significance-driven drop ({q_ours}) should beat blind perforation ({q_perf})"
        );
    }

    #[test]
    fn coeff_layout_ranges_are_disjoint_and_cover_everything() {
        let layout = CoeffLayout::new(64, 64);
        let mut covered = vec![false; layout.total];
        for by in 0..layout.blocks_y {
            for k in 0..LAYERS {
                let (s, e) = layout.stripe_layer_range(by, k);
                for slot in &mut covered[s..e] {
                    assert!(!*slot, "overlapping coefficient ranges");
                    *slot = true;
                }
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }
}

//! Shared benchmark infrastructure: the [`Benchmark`] trait, execution
//! configuration, and run outputs consumed by the experiment harness.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use sig_core::{EnergyReading, GroupStatsSnapshot, Policy, Runtime};
use sig_quality::{psnr, relative_error, QualityMetric, QualityScore};

/// The three approximation degrees studied for every benchmark (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Degree {
    /// Mild approximation: most tasks run accurately.
    Mild,
    /// Medium approximation.
    Medium,
    /// Aggressive approximation: few (or no) tasks run accurately.
    Aggressive,
}

impl Degree {
    /// All degrees, in the order the paper's figures list them.
    pub const ALL: [Degree; 3] = [Degree::Aggressive, Degree::Medium, Degree::Mild];

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Degree::Mild => "Mild",
            Degree::Medium => "Medium",
            Degree::Aggressive => "Aggr",
        }
    }
}

/// Whether a benchmark's non-accurate tasks are approximated, dropped, or
/// both (the "Approximate or Drop" column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApproxTechnique {
    /// Non-accurate tasks run an `approxfun` body.
    Approximate,
    /// Non-accurate tasks are dropped entirely.
    Drop,
    /// Both: some computations are dropped, the rest approximated.
    Both,
}

impl ApproxTechnique {
    /// Short code as printed in Table 1 ("A", "D", "D, A").
    pub fn code(self) -> &'static str {
        match self {
            ApproxTechnique::Approximate => "A",
            ApproxTechnique::Drop => "D",
            ApproxTechnique::Both => "D, A",
        }
    }
}

/// Static description of a benchmark (one row of Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkInfo {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// Approximate / drop / both.
    pub technique: ApproxTechnique,
    /// What the degree values mean (accurate-task ratio, tolerance, ...).
    pub degree_parameter: &'static str,
    /// Degree values for Mild, Medium, Aggressive (in that order).
    pub degrees: [f64; 3],
    /// Quality metric used in the evaluation.
    pub metric: QualityMetric,
    /// Whether a loop-perforated comparator exists (it does not for
    /// Fluidanimate, Section 4.2).
    pub perforation_supported: bool,
}

impl BenchmarkInfo {
    /// The degree value (ratio / tolerance) configured for `degree`.
    pub fn degree_value(&self, degree: Degree) -> f64 {
        match degree {
            Degree::Mild => self.degrees[0],
            Degree::Medium => self.degrees[1],
            Degree::Aggressive => self.degrees[2],
        }
    }
}

/// How a benchmark run should execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Approach {
    /// Fully accurate execution on the significance-agnostic runtime.
    Accurate,
    /// Significance-aware execution under a given policy and degree.
    Significance {
        /// Runtime policy (GTB, GTB Max-Buffer, LQH).
        policy: Policy,
        /// Approximation degree (maps to the group ratio / tolerance).
        degree: Degree,
    },
    /// Loop-perforated execution matched to the degree's accurate-task count.
    Perforation {
        /// Approximation degree.
        degree: Degree,
    },
}

/// A complete execution configuration for one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionConfig {
    /// Number of worker threads for task-parallel runs.
    pub workers: usize,
    /// Which variant to execute.
    pub approach: Approach,
}

impl ExecutionConfig {
    /// Fully accurate run.
    pub fn accurate(workers: usize) -> Self {
        ExecutionConfig {
            workers,
            approach: Approach::Accurate,
        }
    }

    /// Significance-aware run.
    pub fn significance(workers: usize, policy: Policy, degree: Degree) -> Self {
        ExecutionConfig {
            workers,
            approach: Approach::Significance { policy, degree },
        }
    }

    /// Perforated run.
    pub fn perforation(workers: usize, degree: Degree) -> Self {
        ExecutionConfig {
            workers,
            approach: Approach::Perforation { degree },
        }
    }

    /// Default worker count: the host's available parallelism.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Task-level execution counts of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskCounts {
    /// Total tasks (or loop chunks) executed.
    pub total: usize,
    /// Tasks that ran their accurate body.
    pub accurate: usize,
    /// Tasks that ran their approximate body.
    pub approximate: usize,
    /// Tasks dropped by the runtime.
    pub dropped: usize,
}

/// The observable result of one benchmark run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Flattened numeric output used for quality evaluation (pixels,
    /// centroids, solution vector, particle positions, ...).
    pub values: Vec<f64>,
    /// Wall-clock makespan of the run.
    pub elapsed: Duration,
    /// Total busy core-seconds spent in task bodies (equals `elapsed` for
    /// serial reference runs).
    pub busy_core_seconds: f64,
    /// Task execution counts.
    pub tasks: TaskCounts,
    /// Per-group statistics (Table 2 inputs); empty for serial runs.
    pub groups: Vec<(String, GroupStatsSnapshot)>,
    /// Energy reading produced by the runtime's own per-worker accounting
    /// (DVFS-aware when a governor is installed); `None` for serial runs,
    /// which have no runtime to account them.
    pub energy: Option<EnergyReading>,
    /// DVFS frequency-domain switches across all workers (each carries the
    /// runtime's configured transition cost); zero for serial runs.
    pub frequency_transitions: u64,
    /// Modelled deep-sleep residency banked by race-to-idle dispatches, in
    /// core-seconds; zero for serial runs and stretch-only governors.
    pub sleep_seconds: f64,
}

impl RunOutput {
    /// Wrap the output of a serial (non-task) execution.
    pub fn serial(values: Vec<f64>, elapsed: Duration) -> Self {
        RunOutput {
            values,
            elapsed,
            busy_core_seconds: elapsed.as_secs_f64(),
            tasks: TaskCounts::default(),
            groups: Vec::new(),
            energy: None,
            frequency_transitions: 0,
            sleep_seconds: 0.0,
        }
    }

    /// Wrap the output of a run on the significance runtime, harvesting the
    /// runtime- and group-level statistics plus the energy accounting of its
    /// execution environment.
    pub fn from_runtime(rt: &Runtime, values: Vec<f64>, elapsed: Duration) -> Self {
        let stats = rt.stats();
        // Price static/idle power over the caller-measured makespan, not
        // the runtime's whole lifetime (which would also bill result
        // harvesting after the barrier).
        let report = rt.energy_report_at(elapsed);
        RunOutput {
            values,
            elapsed,
            busy_core_seconds: stats.busy_core_seconds(),
            tasks: TaskCounts {
                total: stats.completed(),
                accurate: stats.accurate(),
                approximate: stats.approximate(),
                dropped: stats.dropped(),
            },
            groups: rt
                .all_group_stats()
                .into_iter()
                .filter(|(_, snap)| snap.total() > 0)
                .collect(),
            frequency_transitions: report.frequency_transitions(),
            sleep_seconds: report.sleep_seconds(),
            energy: Some(report.reading()),
        }
    }
}

/// Interface every benchmark implements, so the harness and the Criterion
/// benches can drive all six uniformly.
pub trait Benchmark: Send + Sync {
    /// Static description (Table 1 row).
    fn info(&self) -> BenchmarkInfo;

    /// Execute the benchmark under the given configuration.
    fn run(&self, config: &ExecutionConfig) -> RunOutput;

    /// Execute the task-parallel version with approximation disabled (every
    /// task runs accurately) under the given policy.
    ///
    /// This is the configuration of the paper's Figure 4: "All tasks are
    /// created with the same significance and the ratio of tasks executed
    /// accurately is set to 100%, therefore eliminating any benefits of
    /// approximate execution" — comparing it against
    /// [`Policy::SignificanceAgnostic`] isolates the policies' runtime
    /// overhead.
    fn run_full_accuracy(&self, workers: usize, policy: Policy) -> RunOutput;

    /// The benchmark's name.
    fn name(&self) -> &'static str {
        self.info().name
    }

    /// Quality of `candidate` relative to `reference`, using the benchmark's
    /// metric (Section 4.1: outputs are always compared against the fully
    /// accurate execution).
    fn quality(&self, reference: &RunOutput, candidate: &RunOutput) -> QualityScore {
        score_against(self.info().metric, &reference.values, &candidate.values)
    }
}

/// Compute a [`QualityScore`] for `candidate` against `reference` under the
/// given metric.
pub fn score_against(metric: QualityMetric, reference: &[f64], candidate: &[f64]) -> QualityScore {
    match metric {
        QualityMetric::PsnrInverse => QualityScore::from_psnr(psnr(reference, candidate, 255.0)),
        QualityMetric::RelativeError => {
            QualityScore::from_relative_error(relative_error(reference, candidate))
        }
    }
}

/// Instantiate all six benchmarks with their default (laptop-scale) problem
/// sizes, in the order the paper's figures list them.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(crate::sobel::Sobel::default()),
        Box::new(crate::dct::Dct::default()),
        Box::new(crate::mc::MonteCarlo::default()),
        Box::new(crate::kmeans::KMeans::default()),
        Box::new(crate::jacobi::Jacobi::default()),
        Box::new(crate::fluidanimate::Fluidanimate::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_metadata() {
        assert_eq!(Degree::Mild.name(), "Mild");
        assert_eq!(Degree::ALL.len(), 3);
        assert_eq!(ApproxTechnique::Both.code(), "D, A");
    }

    #[test]
    fn info_degree_lookup() {
        let info = BenchmarkInfo {
            name: "x",
            technique: ApproxTechnique::Approximate,
            degree_parameter: "ratio",
            degrees: [0.8, 0.3, 0.0],
            metric: QualityMetric::PsnrInverse,
            perforation_supported: true,
        };
        assert_eq!(info.degree_value(Degree::Mild), 0.8);
        assert_eq!(info.degree_value(Degree::Medium), 0.3);
        assert_eq!(info.degree_value(Degree::Aggressive), 0.0);
    }

    #[test]
    fn execution_config_constructors() {
        let c = ExecutionConfig::accurate(4);
        assert_eq!(c.approach, Approach::Accurate);
        let c = ExecutionConfig::significance(4, Policy::Lqh, Degree::Medium);
        assert!(matches!(c.approach, Approach::Significance { .. }));
        let c = ExecutionConfig::perforation(4, Degree::Mild);
        assert!(matches!(c.approach, Approach::Perforation { .. }));
        assert!(ExecutionConfig::default_workers() >= 1);
    }

    #[test]
    fn serial_run_output_busy_equals_elapsed() {
        let out = RunOutput::serial(vec![1.0, 2.0], Duration::from_millis(500));
        assert_eq!(out.busy_core_seconds, 0.5);
        assert_eq!(out.tasks.total, 0);
        assert!(out.groups.is_empty());
        assert!(out.energy.is_none());
    }

    #[test]
    fn runtime_run_output_carries_an_energy_reading() {
        let rt = Runtime::builder().workers(2).build();
        rt.task(|| std::thread::sleep(std::time::Duration::from_millis(2)))
            .spawn();
        rt.wait_all();
        let out = RunOutput::from_runtime(&rt, vec![0.0], Duration::from_millis(2));
        let energy = out.energy.expect("runtime runs carry a reading");
        assert!(energy.joules > 0.0);
        assert!(energy.busy_core_seconds > 0.0);
    }

    #[test]
    fn score_against_both_metrics() {
        let reference = vec![100.0, 100.0, 100.0];
        let identical = score_against(QualityMetric::PsnrInverse, &reference, &reference);
        assert_eq!(identical.value, 0.0);
        let noisy = score_against(
            QualityMetric::PsnrInverse,
            &reference,
            &[100.0, 101.0, 99.0],
        );
        assert!(noisy.value > 0.0);
        let rel = score_against(
            QualityMetric::RelativeError,
            &reference,
            &[110.0, 100.0, 100.0],
        );
        assert!((rel.value - 100.0 * 10.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn registry_contains_all_six_benchmarks() {
        let benchmarks = all_benchmarks();
        let names: Vec<_> = benchmarks.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["Sobel", "DCT", "MC", "Kmeans", "Jacobi", "Fluidanimate"]
        );
    }
}

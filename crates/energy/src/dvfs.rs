//! Dynamic voltage/frequency scaling (DVFS) hook.
//!
//! Section 6 of the paper lists "DVFS in conjunction with suitable runtime
//! policies for executing approximate (and more light-weight) task versions on
//! the slower but also less power-hungry CPUs" as future work. This module
//! provides the modelling hook for exploring that scenario: a frequency scale
//! that adjusts both execution time and active power using the classic
//! `P ∝ f·V²` (≈ cubic in frequency when voltage tracks frequency) rule.

use serde::{Deserialize, Serialize};

use crate::power::PowerModel;

/// A relative CPU frequency setting.
///
/// `1.0` is nominal frequency. Values below one slow execution down but lower
/// the per-core active power superlinearly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyScale {
    ratio: f64,
    /// Exponent applied to the frequency ratio when scaling active power.
    /// The default of 2.4 sits between the pure-dynamic `f·V² ≈ f³` model and
    /// the linear leakage-dominated regime.
    power_exponent: f64,
}

impl FrequencyScale {
    /// Create a scale at the given frequency ratio with the default power
    /// exponent.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `(0, 1.5]` (turbo beyond 1.5× nominal is
    /// outside the model's validity range).
    pub fn new(ratio: f64) -> Self {
        Self::with_exponent(ratio, 2.4)
    }

    /// Create a scale with an explicit power exponent.
    pub fn with_exponent(ratio: f64, power_exponent: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.5,
            "frequency ratio must be in (0, 1.5], got {ratio}"
        );
        assert!(power_exponent >= 1.0, "power exponent must be >= 1");
        FrequencyScale {
            ratio,
            power_exponent,
        }
    }

    /// Nominal frequency (no scaling).
    pub fn nominal() -> Self {
        FrequencyScale::new(1.0)
    }

    /// The frequency ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The exponent applied to the frequency ratio when scaling active
    /// power.
    pub fn power_exponent(&self) -> f64 {
        self.power_exponent
    }

    /// Whether this scale is the identity (nominal frequency). Used by the
    /// runtime's dispatch hot path to skip all scaling arithmetic.
    pub fn is_nominal(&self) -> bool {
        self.ratio == 1.0
    }

    /// Per-core active power under this frequency setting, in watts —
    /// shorthand for `self.apply(model).active_watts_per_core`.
    pub fn scaled_active_watts(&self, model: &PowerModel) -> f64 {
        model.active_watts_per_core * self.power_factor()
    }

    /// An evenly spaced ladder of `steps` frequency settings from `floor` up
    /// to nominal (inclusive), highest first — the shape of a P-state table.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `floor` is outside `(0, 1]`.
    pub fn ladder(steps: usize, floor: f64) -> Vec<FrequencyScale> {
        assert!(steps > 0, "a frequency ladder needs at least one step");
        assert!(
            floor > 0.0 && floor <= 1.0,
            "ladder floor must be in (0, 1], got {floor}"
        );
        (0..steps)
            .map(|i| {
                let t = if steps == 1 {
                    0.0
                } else {
                    i as f64 / (steps - 1) as f64
                };
                FrequencyScale::new(1.0 - t * (1.0 - floor))
            })
            .collect()
    }

    /// How much longer a CPU-bound region takes at this frequency.
    pub fn time_dilation(&self) -> f64 {
        1.0 / self.ratio
    }

    /// Multiplier applied to per-core active power at this frequency.
    pub fn power_factor(&self) -> f64 {
        self.ratio.powf(self.power_exponent)
    }

    /// Derive a new [`PowerModel`] whose active-core power reflects this
    /// frequency setting. Static and idle power are unchanged (they are
    /// largely frequency-independent).
    pub fn apply(&self, model: &PowerModel) -> PowerModel {
        PowerModel {
            active_watts_per_core: model.active_watts_per_core * self.power_factor(),
            ..*model
        }
    }

    /// Energy factor for a fixed amount of CPU-bound work executed entirely
    /// on active cores at this frequency, ignoring static power:
    /// `time_dilation · power_factor`.
    ///
    /// Values below 1 mean the frequency reduction saves dynamic energy for
    /// that work (the usual DVFS trade-off ignoring race-to-idle).
    pub fn dynamic_energy_factor(&self) -> f64 {
        self.time_dilation() * self.power_factor()
    }
}

impl Default for FrequencyScale {
    fn default() -> Self {
        FrequencyScale::nominal()
    }
}

/// Modelled cost of one DVFS frequency-domain switch.
///
/// Real frequency transitions are not free: the core stalls while the PLL
/// relocks and the voltage regulator ramps (tens of microseconds on
/// contemporary parts), and the ramp itself burns energy. Governors that
/// thrash between steps pay this per switch; hysteresis exists to bound it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionCost {
    /// Wall-clock stall per frequency switch, in seconds. Extends the
    /// modelled makespan of a run by `switches × latency / workers`.
    pub latency_seconds: f64,
    /// Energy burned per frequency switch, in joules (regulator ramp + the
    /// stalled core's draw during the relock).
    pub energy_joules: f64,
}

impl TransitionCost {
    /// Build a transition cost, validating its parameters.
    ///
    /// # Panics
    ///
    /// Panics if either component is negative.
    pub fn new(latency_seconds: f64, energy_joules: f64) -> Self {
        assert!(
            latency_seconds >= 0.0,
            "transition latency must be non-negative, got {latency_seconds}"
        );
        assert!(
            energy_joules >= 0.0,
            "transition energy must be non-negative, got {energy_joules}"
        );
        TransitionCost {
            latency_seconds,
            energy_joules,
        }
    }

    /// Free transitions — the (idealised) accounting of runs that predate
    /// transition modelling, and the default.
    pub fn free() -> Self {
        TransitionCost::new(0.0, 0.0)
    }

    /// A typical contemporary DVFS transition: ~50 µs relock stall and
    /// ~150 µJ of ramp energy.
    pub fn typical() -> Self {
        TransitionCost::new(50e-6, 150e-6)
    }

    /// Whether this cost is exactly free (both components zero).
    pub fn is_free(&self) -> bool {
        self.latency_seconds == 0.0 && self.energy_joules == 0.0
    }
}

impl Default for TransitionCost {
    fn default() -> Self {
        TransitionCost::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let s = FrequencyScale::nominal();
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.time_dilation(), 1.0);
        assert!((s.power_factor() - 1.0).abs() < 1e-12);
        assert!((s.dynamic_energy_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_frequency_lowers_power_superlinearly() {
        let s = FrequencyScale::new(0.5);
        assert!(s.power_factor() < 0.5);
        assert_eq!(s.time_dilation(), 2.0);
        // Dynamic energy per unit of work drops despite the longer runtime.
        assert!(s.dynamic_energy_factor() < 1.0);
    }

    #[test]
    fn apply_scales_only_active_power() {
        let base = PowerModel::xeon_e5_2650_dual_socket();
        let scaled = FrequencyScale::new(0.5).apply(&base);
        assert!(scaled.active_watts_per_core < base.active_watts_per_core);
        assert_eq!(scaled.idle_watts_per_core, base.idle_watts_per_core);
        assert_eq!(scaled.static_watts_per_socket, base.static_watts_per_socket);
    }

    #[test]
    #[should_panic(expected = "frequency ratio")]
    fn zero_ratio_panics() {
        FrequencyScale::new(0.0);
    }

    #[test]
    #[should_panic(expected = "frequency ratio")]
    fn excessive_turbo_panics() {
        FrequencyScale::new(2.0);
    }

    #[test]
    fn linear_exponent_gives_no_dynamic_saving() {
        let s = FrequencyScale::with_exponent(0.5, 1.0);
        assert!((s.dynamic_energy_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nominal_detection() {
        assert!(FrequencyScale::nominal().is_nominal());
        assert!(!FrequencyScale::new(0.99).is_nominal());
    }

    #[test]
    fn ladder_spans_nominal_to_floor() {
        let steps = FrequencyScale::ladder(4, 0.4);
        assert_eq!(steps.len(), 4);
        assert!(steps[0].is_nominal());
        assert!((steps[3].ratio() - 0.4).abs() < 1e-12);
        for pair in steps.windows(2) {
            assert!(pair[0].ratio() > pair[1].ratio());
        }
        let single = FrequencyScale::ladder(1, 0.5);
        assert!(single[0].is_nominal());
    }

    #[test]
    fn transition_cost_defaults_to_free() {
        assert!(TransitionCost::default().is_free());
        assert!(!TransitionCost::typical().is_free());
        assert!(TransitionCost::typical().latency_seconds > 0.0);
        assert!(TransitionCost::typical().energy_joules > 0.0);
    }

    #[test]
    #[should_panic(expected = "transition latency")]
    fn negative_transition_latency_rejected() {
        TransitionCost::new(-1.0, 0.0);
    }

    #[test]
    fn scaled_active_watts_matches_apply() {
        let model = PowerModel::xeon_e5_2650_dual_socket();
        let s = FrequencyScale::new(0.7);
        assert!(
            (s.scaled_active_watts(&model) - s.apply(&model).active_watts_per_core).abs() < 1e-12
        );
    }
}

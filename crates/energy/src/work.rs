//! Deterministic work-unit energy model.
//!
//! Wall-clock based measurement (see [`crate::meter`]) is the right tool for
//! the experiment harness, but it is inherently non-deterministic. Tests and
//! property checks need an energy model whose output depends only on *what*
//! was executed. [`WorkUnitMeter`] charges a fixed number of joules per
//! abstract work unit, split by [`WorkClass`], so that e.g. "an approximate
//! task consumes strictly less energy than its accurate version" can be
//! asserted exactly.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::meter::EnergyReading;

/// The kind of work being charged to a [`WorkUnitMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkClass {
    /// Work performed by an accurate task body.
    Accurate,
    /// Work performed by an approximate task body.
    Approximate,
    /// Runtime overhead (scheduling, buffering, bookkeeping).
    Runtime,
}

/// Energy cost coefficients per work unit, by class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkUnitModel {
    /// Joules charged per accurate work unit.
    pub accurate_joules_per_unit: f64,
    /// Joules charged per approximate work unit.
    pub approximate_joules_per_unit: f64,
    /// Joules charged per runtime-overhead unit.
    pub runtime_joules_per_unit: f64,
}

impl Default for WorkUnitModel {
    fn default() -> Self {
        // Approximate tasks in the paper's benchmarks do roughly a third to a
        // half of the accurate work (e.g. Sobel drops 1/3 of the taps and
        // replaces sqrt/pow with abs); the default coefficients encode that
        // ballpark while keeping runtime bookkeeping comparatively free.
        WorkUnitModel {
            accurate_joules_per_unit: 1.0,
            approximate_joules_per_unit: 0.4,
            runtime_joules_per_unit: 0.01,
        }
    }
}

impl WorkUnitModel {
    /// Joules charged for `units` units of the given class.
    pub fn joules_for(&self, class: WorkClass, units: u64) -> f64 {
        let per_unit = match class {
            WorkClass::Accurate => self.accurate_joules_per_unit,
            WorkClass::Approximate => self.approximate_joules_per_unit,
            WorkClass::Runtime => self.runtime_joules_per_unit,
        };
        per_unit * units as f64
    }
}

/// Deterministic energy meter charging abstract work units.
///
/// Internally stores unit counts (not joules) so the accounting is exact and
/// independent of floating-point accumulation order.
#[derive(Debug, Default)]
pub struct WorkUnitMeter {
    model: WorkUnitModel,
    accurate_units: AtomicU64,
    approximate_units: AtomicU64,
    runtime_units: AtomicU64,
}

impl WorkUnitMeter {
    /// Create a meter with the given cost model.
    pub fn new(model: WorkUnitModel) -> Self {
        WorkUnitMeter {
            model,
            ..Default::default()
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &WorkUnitModel {
        &self.model
    }

    /// Charge `units` work units of the given class.
    pub fn charge(&self, class: WorkClass, units: u64) {
        let counter = match class {
            WorkClass::Accurate => &self.accurate_units,
            WorkClass::Approximate => &self.approximate_units,
            WorkClass::Runtime => &self.runtime_units,
        };
        counter.fetch_add(units, Ordering::Relaxed);
    }

    /// Units charged so far for the given class.
    pub fn units(&self, class: WorkClass) -> u64 {
        match class {
            WorkClass::Accurate => self.accurate_units.load(Ordering::Relaxed),
            WorkClass::Approximate => self.approximate_units.load(Ordering::Relaxed),
            WorkClass::Runtime => self.runtime_units.load(Ordering::Relaxed),
        }
    }

    /// Total modelled energy in joules.
    pub fn joules(&self) -> f64 {
        self.model
            .joules_for(WorkClass::Accurate, self.units(WorkClass::Accurate))
            + self
                .model
                .joules_for(WorkClass::Approximate, self.units(WorkClass::Approximate))
            + self
                .model
                .joules_for(WorkClass::Runtime, self.units(WorkClass::Runtime))
    }

    /// Produce an [`EnergyReading`] for the units charged so far, so
    /// work-driven accounting can be aggregated and compared against
    /// wall-clock ([`crate::EnergyMeter`]) and runtime-driven readings
    /// through the one shared reading type. Work units have no wall-clock
    /// window; all energy is reported as dynamic.
    pub fn read(&self) -> EnergyReading {
        EnergyReading::from_work_joules(self.joules())
    }

    /// Reset all counters to zero (the model is retained).
    pub fn reset(&self) {
        self.accurate_units.store(0, Ordering::Relaxed);
        self.approximate_units.store(0, Ordering::Relaxed);
        self.runtime_units.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_prefers_approximate_work() {
        let m = WorkUnitModel::default();
        assert!(m.approximate_joules_per_unit < m.accurate_joules_per_unit);
        assert!(m.runtime_joules_per_unit < m.approximate_joules_per_unit);
    }

    #[test]
    fn charging_accumulates_per_class() {
        let meter = WorkUnitMeter::new(WorkUnitModel::default());
        meter.charge(WorkClass::Accurate, 10);
        meter.charge(WorkClass::Accurate, 5);
        meter.charge(WorkClass::Approximate, 7);
        meter.charge(WorkClass::Runtime, 100);
        assert_eq!(meter.units(WorkClass::Accurate), 15);
        assert_eq!(meter.units(WorkClass::Approximate), 7);
        assert_eq!(meter.units(WorkClass::Runtime), 100);
    }

    #[test]
    fn joules_match_model() {
        let model = WorkUnitModel {
            accurate_joules_per_unit: 2.0,
            approximate_joules_per_unit: 0.5,
            runtime_joules_per_unit: 0.1,
        };
        let meter = WorkUnitMeter::new(model);
        meter.charge(WorkClass::Accurate, 3);
        meter.charge(WorkClass::Approximate, 4);
        meter.charge(WorkClass::Runtime, 10);
        assert!((meter.joules() - (6.0 + 2.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn approximate_execution_costs_less_than_accurate() {
        let meter_acc = WorkUnitMeter::new(WorkUnitModel::default());
        meter_acc.charge(WorkClass::Accurate, 100);
        let meter_apx = WorkUnitMeter::new(WorkUnitModel::default());
        meter_apx.charge(WorkClass::Approximate, 100);
        assert!(meter_apx.joules() < meter_acc.joules());
    }

    #[test]
    fn read_shares_the_common_reading_type() {
        let meter = WorkUnitMeter::new(WorkUnitModel::default());
        meter.charge(WorkClass::Accurate, 10);
        let reading = meter.read();
        assert!((reading.joules - meter.joules()).abs() < 1e-12);
        assert_eq!(reading.breakdown.dynamic_joules, reading.joules);
        assert_eq!(reading.wall_seconds, 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let meter = WorkUnitMeter::new(WorkUnitModel::default());
        meter.charge(WorkClass::Accurate, 42);
        meter.reset();
        assert_eq!(meter.units(WorkClass::Accurate), 0);
        assert_eq!(meter.joules(), 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let meter = WorkUnitMeter::new(WorkUnitModel::default());
            for i in 0..1000u64 {
                meter.charge(
                    if i % 3 == 0 {
                        WorkClass::Approximate
                    } else {
                        WorkClass::Accurate
                    },
                    i % 7,
                );
            }
            meter.joules()
        };
        assert_eq!(run(), run());
    }
}

//! # sig-energy
//!
//! Energy-accounting substrate for the significance-aware runtime
//! reproduction.
//!
//! The PPoPP 2015 paper measures package energy with Intel RAPL counters
//! (via likwid) on a dual-socket Xeon E5-2650. Neither RAPL access nor that
//! machine is available here, so this crate implements the closest behavioural
//! equivalent: an **affine power model integrated over per-core busy and idle
//! time**. The paper's energy savings come from two mechanisms —
//!
//! 1. shorter makespans (less wall-clock time at package static power), and
//! 2. fewer/cheaper instructions retired on the active cores (less dynamic
//!    energy)
//!
//! — and both are captured by `E = Σ_sockets P_static·T_wall +
//! Σ_cores (P_active·T_busy + P_idle·T_idle)`. Relative comparisons between
//! runtime policies and approximation degrees (what Figure 2 reports) are
//! therefore preserved, even though absolute joules differ from the paper's
//! testbed.
//!
//! Two measurement modes are provided:
//!
//! * [`EnergyMeter`] — wall-clock based, used by the experiment harness.
//! * [`WorkUnitMeter`] — a deterministic model that charges abstract work
//!   units, used by tests that must be reproducible across machines.
//!
//! A DVFS hook ([`FrequencyScale`]) models the paper's future-work scenario
//! of running approximate tasks on slower, less power-hungry cores. Two
//! companion models complete the energy-strategy picture: [`SleepState`]
//! (per-step sleep power, static gating and wake latency, for race-to-idle
//! accounting) and [`TransitionCost`] (per-switch DVFS latency/energy, so
//! frequency thrashing is no longer free).

#![warn(missing_docs)]

pub mod budget;
pub mod curve;
pub mod dvfs;
pub mod idle;
pub mod meter;
pub mod power;
#[cfg(feature = "rapl")]
pub mod rapl;
pub mod work;

pub use budget::{BudgetConfig, BudgetController, BudgetSetpoint, BudgetTarget, SplitEstimator};
pub use curve::UtilizationPowerCurve;
pub use dvfs::{FrequencyScale, TransitionCost};
pub use idle::SleepState;
pub use meter::{BusyGuard, EnergyMeter, EnergyReading};
pub use power::{EnergyBreakdown, PowerModel};
pub use work::{WorkClass, WorkUnitMeter, WorkUnitModel};

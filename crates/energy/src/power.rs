//! Affine CPU power model.

use serde::{Deserialize, Serialize};

/// An affine power model for a multi-socket, multi-core CPU.
///
/// The default parameters are calibrated so that a fully loaded 2 × 8-core
/// machine draws roughly the 2 × 95 W TDP of the paper's dual Xeon E5-2650
/// testbed:
///
/// * 21 W static (uncore, caches, memory controller) per socket,
/// * 6.6 W per fully busy core,
/// * 1.4 W per idle core.
///
/// `21 + 8·6.6 + 0·1.4 ≈ 74 W` per busy socket plus DRAM/interconnect margin,
/// which is comfortably inside the RAPL package range the paper reports.
/// Absolute joules are *not* the point — the model exists so that shorter
/// makespans and fewer busy core-seconds translate into proportionally lower
/// energy, the mechanism the paper's evaluation exercises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Number of CPU sockets (packages).
    pub sockets: usize,
    /// Number of physical cores per socket.
    pub cores_per_socket: usize,
    /// Static (leakage + uncore) power per socket in watts, drawn for the
    /// whole wall-clock duration of a measurement.
    pub static_watts_per_socket: f64,
    /// Additional power drawn by a core while executing work, in watts.
    pub active_watts_per_core: f64,
    /// Power drawn by an idle (halted) core, in watts.
    pub idle_watts_per_core: f64,
}

impl PowerModel {
    /// Model of the paper's testbed: two 8-core Intel Xeon E5-2650 packages.
    pub fn xeon_e5_2650_dual_socket() -> Self {
        PowerModel {
            sockets: 2,
            cores_per_socket: 8,
            static_watts_per_socket: 21.0,
            active_watts_per_core: 6.6,
            idle_watts_per_core: 1.4,
        }
    }

    /// A model sized to the host this process is running on: a single
    /// "socket" containing all available cores, with the same per-core
    /// coefficients as the paper's testbed.
    pub fn for_host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        PowerModel {
            sockets: 1,
            cores_per_socket: cores,
            static_watts_per_socket: 21.0,
            active_watts_per_core: 6.6,
            idle_watts_per_core: 1.4,
        }
    }

    /// Total number of cores across all sockets.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// One core's share of its socket's static power, in watts — the amount
    /// a sleep state's `static_fraction_saved` gates off per sleeping core.
    /// Zero for a degenerate model with no cores.
    pub fn static_watts_per_core(&self) -> f64 {
        if self.cores_per_socket > 0 {
            self.static_watts_per_socket / self.cores_per_socket as f64
        } else {
            0.0
        }
    }

    /// Package power in watts when `busy_cores` cores are executing work and
    /// the remainder are idle.
    ///
    /// `busy_cores` is clamped to the total core count.
    pub fn power_watts(&self, busy_cores: usize) -> f64 {
        let busy = busy_cores.min(self.total_cores()) as f64;
        let idle = self.total_cores() as f64 - busy;
        self.sockets as f64 * self.static_watts_per_socket
            + busy * self.active_watts_per_core
            + idle * self.idle_watts_per_core
    }

    /// Energy in joules consumed over a measurement window.
    ///
    /// * `wall_seconds` — elapsed wall-clock time of the window,
    /// * `busy_core_seconds` — total core-seconds spent executing work
    ///   (summed over all cores; at most `total_cores · wall_seconds`).
    ///
    /// Busy core-seconds beyond physical capacity are clamped, so oversubscribed
    /// thread pools cannot yield more-than-physical energy.
    pub fn energy_joules(&self, wall_seconds: f64, busy_core_seconds: f64) -> f64 {
        self.energy_breakdown(wall_seconds, busy_core_seconds)
            .total()
    }

    /// The same integration as [`PowerModel::energy_joules`], split into its
    /// static, active (dynamic) and idle components. The components are what
    /// DVFS-aware accounting manipulates individually: frequency scaling
    /// changes only the active term, race-to-idle changes the wall time the
    /// static term integrates over.
    pub fn energy_breakdown(&self, wall_seconds: f64, busy_core_seconds: f64) -> EnergyBreakdown {
        assert!(wall_seconds >= 0.0, "wall time must be non-negative");
        assert!(busy_core_seconds >= 0.0, "busy time must be non-negative");
        let capacity = self.total_cores() as f64 * wall_seconds;
        let busy = busy_core_seconds.min(capacity);
        let idle = capacity - busy;
        EnergyBreakdown {
            static_joules: self.sockets as f64 * self.static_watts_per_socket * wall_seconds,
            dynamic_joules: self.active_watts_per_core * busy,
            idle_joules: self.idle_watts_per_core * idle,
            transition_joules: 0.0,
        }
    }
}

/// Additive decomposition of a modelled energy window into the terms of the
/// affine model (plus transition costs). Shared by wall-clock metering
/// ([`crate::EnergyMeter`]), the runtime's per-worker DVFS accounting, and
/// reports built from either.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Leakage + uncore energy drawn for the whole window.
    pub static_joules: f64,
    /// Energy drawn by cores while executing work (the only term DVFS
    /// frequency scaling changes).
    pub dynamic_joules: f64,
    /// Energy drawn by idle (halted or sleeping) cores.
    pub idle_joules: f64,
    /// Energy burned by state transitions: DVFS frequency switches and
    /// sleep-state wakeups. Zero for accounting sources that predate (or do
    /// not model) transition costs.
    pub transition_joules: f64,
}

impl EnergyBreakdown {
    /// Total joules across all components.
    pub fn total(&self) -> f64 {
        self.static_joules + self.dynamic_joules + self.idle_joules + self.transition_joules
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::xeon_e5_2650_dual_socket()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let m = PowerModel::default();
        assert_eq!(m.sockets, 2);
        assert_eq!(m.cores_per_socket, 8);
        assert_eq!(m.total_cores(), 16);
    }

    #[test]
    fn idle_power_is_static_plus_idle_cores() {
        let m = PowerModel::xeon_e5_2650_dual_socket();
        let expected = 2.0 * 21.0 + 16.0 * 1.4;
        assert!((m.power_watts(0) - expected).abs() < 1e-9);
    }

    #[test]
    fn full_load_power_is_higher_than_idle() {
        let m = PowerModel::xeon_e5_2650_dual_socket();
        assert!(m.power_watts(16) > m.power_watts(0));
        // Busy cores beyond capacity clamp.
        assert_eq!(m.power_watts(16), m.power_watts(100));
    }

    #[test]
    fn energy_scales_linearly_with_time_at_fixed_load() {
        let m = PowerModel::xeon_e5_2650_dual_socket();
        let e1 = m.energy_joules(1.0, 8.0);
        let e2 = m.energy_joules(2.0, 16.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn energy_matches_power_times_time_for_constant_load() {
        let m = PowerModel::xeon_e5_2650_dual_socket();
        // 4 cores busy for the entire 2-second window.
        let e = m.energy_joules(2.0, 8.0);
        assert!((e - m.power_watts(4) * 2.0).abs() < 1e-9);
    }

    #[test]
    fn busy_time_clamped_to_capacity() {
        let m = PowerModel::xeon_e5_2650_dual_socket();
        let at_capacity = m.energy_joules(1.0, 16.0);
        let over_capacity = m.energy_joules(1.0, 1000.0);
        assert!((at_capacity - over_capacity).abs() < 1e-9);
    }

    #[test]
    fn shorter_makespan_uses_less_energy_for_same_work() {
        // Same busy core-seconds, shorter wall time => less energy.
        // This is the race-to-idle effect that makes approximation pay off.
        let m = PowerModel::xeon_e5_2650_dual_socket();
        let slow = m.energy_joules(10.0, 40.0);
        let fast = m.energy_joules(5.0, 40.0);
        assert!(fast < slow);
    }

    #[test]
    fn for_host_uses_at_least_one_core() {
        let m = PowerModel::for_host();
        assert!(m.total_cores() >= 1);
        assert_eq!(m.sockets, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_wall_time_panics() {
        PowerModel::default().energy_joules(-1.0, 0.0);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let m = PowerModel::xeon_e5_2650_dual_socket();
        let b = m.energy_breakdown(2.0, 8.0);
        assert!((b.total() - m.energy_joules(2.0, 8.0)).abs() < 1e-9);
        assert!((b.static_joules - 2.0 * 21.0 * 2.0).abs() < 1e-9);
        assert!((b.dynamic_joules - 6.6 * 8.0).abs() < 1e-9);
        assert!((b.idle_joules - 1.4 * (32.0 - 8.0)).abs() < 1e-9);
    }
}

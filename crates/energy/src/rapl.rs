//! Real RAPL backend: fill [`EnergyReading`]s from the Linux powercap sysfs
//! tree instead of the affine model.
//!
//! Gated behind the `rapl` cargo feature. The modelled path stays the
//! default — this offline container has no `/sys/class/powercap` — but the
//! feature is built (not run) in CI so the sysfs plumbing cannot bit-rot.
//!
//! Only package-level counters are read (`intel-rapl:<n>/energy_uj`), which
//! is exactly what the paper measured with likwid on its Xeon E5-2650
//! testbed. Counter wraparound is handled with each domain's advertised
//! `max_energy_range_uj`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::meter::EnergyReading;
use crate::power::EnergyBreakdown;

/// One RAPL package domain under `/sys/class/powercap`.
#[derive(Debug, Clone)]
pub struct RaplDomain {
    /// Domain name as reported by sysfs (e.g. `package-0`).
    pub name: String,
    energy_path: PathBuf,
    /// Wrap point of the cumulative counter, in microjoules.
    pub max_energy_range_uj: u64,
}

impl RaplDomain {
    fn read_uj(&self) -> io::Result<u64> {
        parse_u64(&fs::read_to_string(&self.energy_path)?)
    }
}

fn parse_u64(text: &str) -> io::Result<u64> {
    text.trim()
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad counter: {e}")))
}

/// A monotone snapshot of every discovered package counter.
#[derive(Debug, Clone)]
pub struct RaplSample {
    /// Cumulative microjoules per domain, in discovery order.
    pub energy_uj: Vec<u64>,
    /// Monotonic timestamp the sample was taken at.
    pub at: Instant,
}

/// Reader over the host's RAPL package domains.
///
/// ```no_run
/// # use sig_energy::rapl::RaplReader;
/// let mut reader = RaplReader::discover()?;
/// // ... run the workload ...
/// let reading = reader.read(/* busy_core_seconds = */ 1.25)?;
/// println!("{} J over {} s", reading.joules, reading.wall_seconds);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct RaplReader {
    domains: Vec<RaplDomain>,
    baseline: RaplSample,
}

impl RaplReader {
    /// Default sysfs root.
    pub const SYSFS_ROOT: &'static str = "/sys/class/powercap";

    /// Discover package domains under [`Self::SYSFS_ROOT`].
    pub fn discover() -> io::Result<Self> {
        Self::discover_at(Path::new(Self::SYSFS_ROOT))
    }

    /// Discover package domains under an explicit powercap root (testable
    /// against a fake tree).
    pub fn discover_at(root: &Path) -> io::Result<Self> {
        let mut domains = Vec::new();
        let mut entries: Vec<_> = fs::read_dir(root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let Some(dir_name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            // Top-level package domains are `intel-rapl:<n>`; subdomains
            // (`intel-rapl:<n>:<m>`, core/uncore/dram) are skipped so
            // package energy is not double-counted.
            if !dir_name.starts_with("intel-rapl:") || dir_name.matches(':').count() != 1 {
                continue;
            }
            let energy_path = path.join("energy_uj");
            if !energy_path.exists() {
                continue;
            }
            let name = fs::read_to_string(path.join("name"))
                .map(|s| s.trim().to_string())
                .unwrap_or_else(|_| dir_name.to_string());
            let max_energy_range_uj = fs::read_to_string(path.join("max_energy_range_uj"))
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(u64::MAX);
            domains.push(RaplDomain {
                name,
                energy_path,
                max_energy_range_uj,
            });
        }
        if domains.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no intel-rapl package domains under {}", root.display()),
            ));
        }
        let baseline = Self::sample_domains(&domains)?;
        Ok(RaplReader { domains, baseline })
    }

    /// The discovered package domains.
    pub fn domains(&self) -> &[RaplDomain] {
        &self.domains
    }

    fn sample_domains(domains: &[RaplDomain]) -> io::Result<RaplSample> {
        let mut energy_uj = Vec::with_capacity(domains.len());
        for d in domains {
            energy_uj.push(d.read_uj()?);
        }
        Ok(RaplSample {
            energy_uj,
            at: Instant::now(),
        })
    }

    /// Take a raw counter snapshot.
    pub fn sample(&self) -> io::Result<RaplSample> {
        Self::sample_domains(&self.domains)
    }

    /// Joules between two samples, wrap-corrected per domain.
    pub fn delta_joules(&self, before: &RaplSample, after: &RaplSample) -> f64 {
        self.domains
            .iter()
            .zip(before.energy_uj.iter().zip(&after.energy_uj))
            .map(|(d, (&b, &a))| {
                let uj = if a >= b {
                    a - b
                } else {
                    // Counter wrapped: count up to the range, then from zero.
                    d.max_energy_range_uj.saturating_sub(b).saturating_add(a)
                };
                uj as f64 * 1e-6
            })
            .sum()
    }

    /// Cumulative reading since discovery (or the last [`Self::reset`]).
    ///
    /// RAPL reports package totals only, so the static/dynamic decomposition
    /// is not available: the whole delta is reported as `dynamic_joules` and
    /// downstream consumers — the budget controller's [`crate::budget::SplitEstimator`]
    /// in particular — recover the observed split from deltas instead of the
    /// breakdown. `busy_core_seconds` is the caller's own busy accounting
    /// (the runtime tracks it; RAPL does not).
    pub fn read(&mut self, busy_core_seconds: f64) -> io::Result<EnergyReading> {
        let now = self.sample()?;
        let joules = self.delta_joules(&self.baseline, &now);
        let wall = now.at.duration_since(self.baseline.at).as_secs_f64();
        Ok(EnergyReading::from_breakdown(
            wall,
            busy_core_seconds,
            EnergyBreakdown {
                dynamic_joules: joules,
                ..Default::default()
            },
        ))
    }

    /// Restart the measurement window at the current counter values.
    pub fn reset(&mut self) -> io::Result<()> {
        self.baseline = self.sample()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_tree(dir: &Path, packages: &[(u64, u64)]) {
        for (i, &(uj, range)) in packages.iter().enumerate() {
            let pkg = dir.join(format!("intel-rapl:{i}"));
            fs::create_dir_all(&pkg).unwrap();
            fs::write(pkg.join("name"), format!("package-{i}\n")).unwrap();
            fs::write(pkg.join("energy_uj"), format!("{uj}\n")).unwrap();
            fs::write(pkg.join("max_energy_range_uj"), format!("{range}\n")).unwrap();
            // A core subdomain that must be skipped.
            let sub = dir.join(format!("intel-rapl:{i}:0"));
            fs::create_dir_all(&sub).unwrap();
            fs::write(sub.join("name"), "core\n").unwrap();
            fs::write(sub.join("energy_uj"), "1\n").unwrap();
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sig-rapl-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn discovers_packages_and_skips_subdomains() {
        let dir = temp_dir("discover");
        fake_tree(&dir, &[(1_000_000, u64::MAX), (2_000_000, u64::MAX)]);
        let reader = RaplReader::discover_at(&dir).unwrap();
        assert_eq!(reader.domains().len(), 2);
        assert_eq!(reader.domains()[0].name, "package-0");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_reading_reports_joules() {
        let dir = temp_dir("delta");
        fake_tree(&dir, &[(1_000_000, u64::MAX)]);
        let mut reader = RaplReader::discover_at(&dir).unwrap();
        fs::write(dir.join("intel-rapl:0").join("energy_uj"), "4500000").unwrap();
        let reading = reader.read(0.5).unwrap();
        assert!((reading.joules - 3.5).abs() < 1e-9, "{reading:?}");
        assert_eq!(reading.busy_core_seconds, 0.5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_wrap_is_corrected() {
        let dir = temp_dir("wrap");
        fake_tree(&dir, &[(9_000_000, 10_000_000)]);
        let reader = RaplReader::discover_at(&dir).unwrap();
        let before = reader.sample().unwrap();
        fs::write(dir.join("intel-rapl:0").join("energy_uj"), "2000000").unwrap();
        let after = reader.sample().unwrap();
        // 9 MJu -> wrap at 10 MJu -> 2 MJu: 3 J total.
        assert!((reader.delta_joules(&before, &after) - 3.0).abs() < 1e-9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_tree_is_not_found() {
        let dir = temp_dir("empty");
        let err = RaplReader::discover_at(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Idle-state (sleep) model for race-to-idle energy strategies.
//!
//! The paper's runtime saves energy by running approximate work at lower
//! DVFS steps (*slow-and-steady*). The classic alternative is
//! **race-to-idle**: finish the work at nominal frequency and drop the core
//! into a deep sleep state for the slack. Which strategy wins is decided by
//! the static/dynamic power split — deep sleep states gate leakage and
//! uncore power that frequency scaling cannot touch, while frequency scaling
//! cuts the `P ∝ f·V²` dynamic term that sleeping cannot. This module models
//! the sleep side of that trade-off: a [`SleepState`] describes the residency
//! power of a sleeping core, the fraction of its share of socket static
//! power the state gates off, and the latency paid to wake up.

use serde::{Deserialize, Serialize};

use crate::power::PowerModel;

/// A CPU idle (sleep) state — the modelled analogue of an ACPI C-state.
///
/// Race-to-idle accounting prices a worker's earned slack at this state's
/// power instead of the power model's (shallow-halt) idle watts, gates off a
/// fraction of the core's share of socket static power, and charges one wake
/// transition per sleep entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepState {
    /// Power drawn by a core resident in this state, in watts. Deeper states
    /// draw less than the power model's `idle_watts_per_core` (a shallow
    /// halt).
    pub watts_per_core: f64,
    /// Fraction of the sleeping core's share of socket static power
    /// (`static_watts_per_socket / cores_per_socket`) that is gated off
    /// while the core is resident. This is what lets race-to-idle beat
    /// slow-and-steady on static-heavy packages: stretched execution keeps
    /// the whole package awake, deep sleep does not.
    pub static_fraction_saved: f64,
    /// Time to return to nominal execution from this state, in seconds.
    /// Charged once per sleep entry, priced at nominal active power.
    pub wake_latency_seconds: f64,
}

impl SleepState {
    /// Build a sleep state, validating its parameters.
    ///
    /// # Panics
    ///
    /// Panics if `watts_per_core` or `wake_latency_seconds` is negative, or
    /// `static_fraction_saved` is outside `[0, 1]`.
    pub fn new(watts_per_core: f64, static_fraction_saved: f64, wake_latency_seconds: f64) -> Self {
        assert!(
            watts_per_core >= 0.0,
            "sleep power must be non-negative, got {watts_per_core}"
        );
        assert!(
            (0.0..=1.0).contains(&static_fraction_saved),
            "static fraction saved must be in [0, 1], got {static_fraction_saved}"
        );
        assert!(
            wake_latency_seconds >= 0.0,
            "wake latency must be non-negative, got {wake_latency_seconds}"
        );
        SleepState {
            watts_per_core,
            static_fraction_saved,
            wake_latency_seconds,
        }
    }

    /// A shallow halt: slightly below typical idle power, no static gating,
    /// near-instant wake — the state a core reaches between any two tasks.
    /// Racing into this state saves almost nothing over staying idle.
    pub fn shallow() -> Self {
        SleepState::new(1.0, 0.0, 2e-6)
    }

    /// A deep package sleep (C6-like): the core is power-gated (≈0.1 W),
    /// three quarters of its share of socket static power is gated with it,
    /// and waking costs ~100 µs. This is the state that makes race-to-idle
    /// pay off on static-heavy packages.
    pub fn deep() -> Self {
        SleepState::new(0.1, 0.75, 100e-6)
    }

    /// Net power saved per second of residency relative to a core sitting in
    /// the model's shallow idle: `idle_watts − sleep_watts` on the core
    /// itself plus the gated share of socket static power. Positive for any
    /// state deeper than the model's idle.
    pub fn watts_saved_vs_idle(&self, model: &PowerModel) -> f64 {
        (model.idle_watts_per_core - self.watts_per_core)
            + self.static_fraction_saved * model.static_watts_per_core()
    }

    /// Energy charged for one wake from this state, priced at the model's
    /// nominal active power (the core burns the wake latency doing no useful
    /// work).
    pub fn wake_joules(&self, model: &PowerModel) -> f64 {
        self.wake_latency_seconds * model.active_watts_per_core
    }

    /// Minimum residency for which entering this state saves energy at all:
    /// the wake cost divided by the net power saved. Residencies shorter
    /// than this are better spent in shallow idle. `f64::INFINITY` when the
    /// state saves nothing over idle.
    pub fn break_even_seconds(&self, model: &PowerModel) -> f64 {
        let saved = self.watts_saved_vs_idle(model);
        if saved <= 0.0 {
            f64::INFINITY
        } else {
            self.wake_joules(model) / saved
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_sleeps_below_shallow() {
        let deep = SleepState::deep();
        let shallow = SleepState::shallow();
        assert!(deep.watts_per_core < shallow.watts_per_core);
        assert!(deep.static_fraction_saved > shallow.static_fraction_saved);
        assert!(deep.wake_latency_seconds > shallow.wake_latency_seconds);
    }

    #[test]
    fn deep_state_saves_static_share() {
        let model = PowerModel::xeon_e5_2650_dual_socket();
        let deep = SleepState::deep();
        // 1.4 − 0.1 on the core plus 0.75 · 21/8 of socket static.
        let expected = (1.4 - 0.1) + 0.75 * 21.0 / 8.0;
        assert!((deep.watts_saved_vs_idle(&model) - expected).abs() < 1e-9);
    }

    #[test]
    fn break_even_is_wake_cost_over_savings() {
        let model = PowerModel::xeon_e5_2650_dual_socket();
        let deep = SleepState::deep();
        let expected = deep.wake_joules(&model) / deep.watts_saved_vs_idle(&model);
        assert!((deep.break_even_seconds(&model) - expected).abs() < 1e-12);
        assert!(deep.break_even_seconds(&model) > 0.0);
    }

    #[test]
    fn useless_state_never_breaks_even() {
        let model = PowerModel::xeon_e5_2650_dual_socket();
        // Draws more than idle, gates nothing: sleeping never pays.
        let hot = SleepState::new(5.0, 0.0, 1e-6);
        assert!(hot.watts_saved_vs_idle(&model) < 0.0);
        assert_eq!(hot.break_even_seconds(&model), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "static fraction")]
    fn static_fraction_above_one_rejected() {
        SleepState::new(0.1, 1.5, 1e-6);
    }

    #[test]
    #[should_panic(expected = "wake latency")]
    fn negative_wake_latency_rejected() {
        SleepState::new(0.1, 0.5, -1.0);
    }
}

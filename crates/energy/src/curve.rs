//! Node-level utilization→power curves for the cluster simulation.
//!
//! The affine [`PowerModel`] prices *cores*: static + active·busy +
//! idle·idle. Datacenter power studies (Fan et al., "Power provisioning for
//! a warehouse-sized computer") show whole-node draw is often **non-linear**
//! in utilization; dslab's `dslab-power-models` ships the same family of
//! curves for its IaaS simulator. This module provides both shapes behind
//! one enum, so the cluster's power-cap controller and its cap-violation
//! integral can price nodes with either model:
//!
//! * [`UtilizationPowerCurve::Linear`] — the affine per-core model, with
//!   busy cores weighted by their DVFS power factor (a core running at half
//!   frequency draws `active · 0.5^exponent`, exactly what the
//!   `ExecutionEnv` charges it);
//! * [`UtilizationPowerCurve::Fan`] — the Fan et al. non-linear curve
//!   `P(u) = P_idle + (P_busy − P_idle)·(2u − u^r)`, concave in utilization
//!   `u = busy_cores / cores` (the first cores are the expensive ones).
//!
//! Both curves are **monotone in the busy-core count** (enforced by
//! construction: `active ≥ idle`, `r ∈ [1, 2]`), which is what makes the
//! cluster cap controller's slot budget a sound bound: capping how many
//! workers may be busy caps the modelled node power.

use crate::power::PowerModel;

/// A node's utilization→watts curve (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UtilizationPowerCurve {
    /// Affine per-core pricing from a [`PowerModel`], DVFS-weighted.
    Linear {
        /// The per-core power model.
        model: PowerModel,
    },
    /// Fan et al. non-linear node curve:
    /// `P(u) = idle + (busy − idle)·(2u − u^r)`.
    Fan {
        /// Node draw at zero utilization, watts.
        idle_watts: f64,
        /// Node draw at full utilization, watts.
        busy_watts: f64,
        /// Curvature exponent `r`, in `[1, 2]` (2 recovers the calibration
        /// point `P(1) = busy`; values toward 1 flatten the curve; the
        /// common fit is ≈ 1.4). Kept ≤ 2 so the curve stays monotone on
        /// `[0, 1]` (`dP/du = 2 − r·u^(r−1) > 0` there).
        exponent: f64,
    },
}

impl UtilizationPowerCurve {
    /// A linear curve over `model`.
    pub fn linear(model: PowerModel) -> Self {
        assert!(
            model.active_watts_per_core >= model.idle_watts_per_core,
            "active watts must be at least idle watts for the curve to be \
             monotone in busy cores"
        );
        UtilizationPowerCurve::Linear { model }
    }

    /// A Fan-style non-linear curve.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ idle_watts ≤ busy_watts` and `exponent ∈ [1, 2]`.
    pub fn fan(idle_watts: f64, busy_watts: f64, exponent: f64) -> Self {
        assert!(
            idle_watts >= 0.0 && busy_watts >= idle_watts,
            "need 0 <= idle ({idle_watts}) <= busy ({busy_watts})"
        );
        assert!(
            (1.0..=2.0).contains(&exponent),
            "Fan exponent must be in [1, 2] for monotonicity, got {exponent}"
        );
        UtilizationPowerCurve::Fan {
            idle_watts,
            busy_watts,
            exponent,
        }
    }

    /// Modelled node draw with `busy_count` of `workers` cores busy.
    /// `busy_effective` is the power-factor-weighted busy count
    /// (`Σ ratio^exponent` over busy cores; equals `busy_count` when
    /// everything runs at nominal frequency) — the linear curve prices it,
    /// the Fan curve is utilization-shaped and uses the count alone.
    pub fn watts(&self, busy_effective: f64, busy_count: usize, workers: usize) -> f64 {
        debug_assert!(busy_count <= workers);
        debug_assert!(busy_effective <= busy_count as f64 + 1e-9);
        match self {
            UtilizationPowerCurve::Linear { model } => {
                model.static_watts_per_socket * model.sockets as f64
                    + busy_effective * model.active_watts_per_core
                    + (workers - busy_count) as f64 * model.idle_watts_per_core
            }
            UtilizationPowerCurve::Fan {
                idle_watts,
                busy_watts,
                exponent,
            } => {
                if workers == 0 {
                    return *idle_watts;
                }
                let u = busy_count as f64 / workers as f64;
                idle_watts + (busy_watts - idle_watts) * (2.0 * u - u.powf(*exponent))
            }
        }
    }

    /// Upper bound on [`UtilizationPowerCurve::watts`] with at most
    /// `busy_workers` busy (every busy core at nominal power factor). The
    /// cap controller budgets against this — monotone in `busy_workers`, so
    /// any instant with fewer busy cores draws no more.
    pub fn max_watts(&self, busy_workers: usize, workers: usize) -> f64 {
        self.watts(busy_workers as f64, busy_workers.min(workers), workers)
    }

    /// Node draw with nothing running — the floor no cap can get under
    /// while the node is up.
    pub fn idle_floor(&self, workers: usize) -> f64 {
        self.watts(0.0, 0, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel {
            sockets: 1,
            cores_per_socket: 2,
            static_watts_per_socket: 2.0,
            active_watts_per_core: 6.0,
            idle_watts_per_core: 0.5,
        }
    }

    #[test]
    fn linear_curve_prices_like_the_power_model() {
        let curve = UtilizationPowerCurve::linear(model());
        // 2 static + 1·6 active + 1·0.5 idle.
        assert!((curve.watts(1.0, 1, 2) - 8.5).abs() < 1e-12);
        // A busy core at half frequency (exponent 1): half the active draw.
        assert!((curve.watts(0.5, 1, 2) - 5.5).abs() < 1e-12);
        assert!((curve.idle_floor(2) - 3.0).abs() < 1e-12);
        assert!((curve.max_watts(2, 2) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn fan_curve_is_monotone_concave_and_hits_endpoints() {
        let curve = UtilizationPowerCurve::fan(3.0, 14.0, 1.4);
        assert!((curve.idle_floor(4) - 3.0).abs() < 1e-12);
        assert!((curve.watts(4.0, 4, 4) - 14.0).abs() < 1e-12);
        let mut last = 0.0;
        for busy in 0..=4usize {
            let w = curve.watts(busy as f64, busy, 4);
            assert!(w >= last, "monotone in busy count");
            last = w;
        }
        // Concave: the first core costs more than the last.
        let first = curve.watts(1.0, 1, 4) - curve.watts(0.0, 0, 4);
        let fourth = curve.watts(4.0, 4, 4) - curve.watts(3.0, 3, 4);
        assert!(first > fourth, "first {first} vs fourth {fourth}");
        // max_watts bounds every DVFS-weighted draw at the same count.
        assert!(curve.watts(2.3, 3, 4) <= curve.max_watts(3, 4) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "monotonicity")]
    fn fan_rejects_non_monotone_exponent() {
        UtilizationPowerCurve::fan(3.0, 14.0, 2.5);
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn fan_rejects_busy_below_idle() {
        UtilizationPowerCurve::fan(10.0, 4.0, 1.4);
    }
}

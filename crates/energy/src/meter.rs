//! RAPL-like energy meter built on the affine [`PowerModel`].
//!
//! Worker threads report the time they spend executing task bodies via
//! [`EnergyMeter::record_busy`] or the RAII [`BusyGuard`]. Reading the meter
//! integrates the power model over the elapsed wall-clock window, exactly as
//! the paper reads RAPL package counters around each benchmark run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::power::{EnergyBreakdown, PowerModel};

/// A single energy measurement window.
///
/// This is the **one reading type** every accounting source in the workspace
/// produces: the wall-clock [`EnergyMeter`], the deterministic
/// [`crate::WorkUnitMeter`], and the runtime's per-worker DVFS-aware
/// execution environment all report their results as an `EnergyReading`, so
/// harness code can aggregate and compare them without caring where the
/// joules came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReading {
    /// Wall-clock duration of the window in seconds (`0.0` for purely
    /// work-driven readings, which have no wall-clock notion).
    pub wall_seconds: f64,
    /// Total busy core-seconds reported during the window.
    pub busy_core_seconds: f64,
    /// Modelled energy in joules (sum of the breakdown components).
    pub joules: f64,
    /// Average package power over the window in watts.
    pub average_watts: f64,
    /// Static / dynamic / idle decomposition of `joules`.
    pub breakdown: EnergyBreakdown,
}

impl EnergyReading {
    /// Assemble a reading from its component terms. `joules` and
    /// `average_watts` are derived.
    pub fn from_breakdown(
        wall_seconds: f64,
        busy_core_seconds: f64,
        breakdown: EnergyBreakdown,
    ) -> Self {
        let joules = breakdown.total();
        EnergyReading {
            wall_seconds,
            busy_core_seconds,
            joules,
            average_watts: if wall_seconds > 0.0 {
                joules / wall_seconds
            } else {
                0.0
            },
            breakdown,
        }
    }

    /// A reading for work-driven accounting: all energy is dynamic, and no
    /// wall-clock window exists.
    pub fn from_work_joules(joules: f64) -> Self {
        EnergyReading::from_breakdown(
            0.0,
            0.0,
            EnergyBreakdown {
                dynamic_joules: joules,
                ..Default::default()
            },
        )
    }
}

/// Accumulates per-core busy time and converts it to energy on demand.
///
/// The meter is cheap and thread-safe: busy time is accumulated in a single
/// atomic counter of nanoseconds, so workers can report after every task with
/// negligible overhead (mirroring the "negligible compared to the granularity
/// of the task" bookkeeping argument of Section 3.4).
#[derive(Debug)]
pub struct EnergyMeter {
    model: PowerModel,
    start: Instant,
    busy_nanos: AtomicU64,
}

impl EnergyMeter {
    /// Start a new measurement window under the given power model.
    pub fn new(model: PowerModel) -> Self {
        EnergyMeter {
            model,
            start: Instant::now(),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// Start a new measurement window with the paper-testbed power model.
    pub fn with_default_model() -> Self {
        EnergyMeter::new(PowerModel::default())
    }

    /// The power model this meter integrates.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Record `duration` of busy (task-executing) time on some core.
    pub fn record_busy(&self, duration: Duration) {
        let nanos = duration.as_nanos().min(u64::MAX as u128) as u64;
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record busy time expressed in seconds.
    pub fn record_busy_secs(&self, seconds: f64) {
        assert!(seconds >= 0.0, "busy time must be non-negative");
        self.record_busy(Duration::from_secs_f64(seconds));
    }

    /// Begin a busy interval; the returned guard reports the elapsed time to
    /// the meter when dropped.
    pub fn busy_guard(&self) -> BusyGuard<'_> {
        BusyGuard {
            meter: self,
            start: Instant::now(),
        }
    }

    /// Total busy core-seconds reported so far.
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Elapsed wall-clock time since the meter was created.
    pub fn wall_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Produce an [`EnergyReading`] for the window `[creation, now]`.
    pub fn read(&self) -> EnergyReading {
        let wall = self.wall_seconds();
        self.read_at(wall)
    }

    /// Produce a reading for an explicit wall-clock duration (useful when the
    /// caller measured the makespan independently, e.g. around a barrier).
    pub fn read_at(&self, wall_seconds: f64) -> EnergyReading {
        let busy = self.busy_core_seconds();
        EnergyReading::from_breakdown(
            wall_seconds,
            busy,
            self.model.energy_breakdown(wall_seconds, busy),
        )
    }
}

/// RAII guard that reports a busy interval to its [`EnergyMeter`] on drop.
#[derive(Debug)]
pub struct BusyGuard<'a> {
    meter: &'a EnergyMeter,
    start: Instant,
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.meter.record_busy(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel {
            sockets: 1,
            cores_per_socket: 4,
            static_watts_per_socket: 10.0,
            active_watts_per_core: 5.0,
            idle_watts_per_core: 1.0,
        }
    }

    #[test]
    fn busy_time_accumulates() {
        let meter = EnergyMeter::new(model());
        meter.record_busy_secs(1.5);
        meter.record_busy_secs(0.5);
        assert!((meter.busy_core_seconds() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn read_at_integrates_power_model() {
        let meter = EnergyMeter::new(model());
        meter.record_busy_secs(2.0);
        let reading = meter.read_at(1.0);
        // static 10 + busy 2*5 + idle 2*1 = 22 J over 1 s.
        assert!((reading.joules - 22.0).abs() < 1e-9, "{:?}", reading);
        assert!((reading.average_watts - 22.0).abs() < 1e-9);
        assert!((reading.busy_core_seconds - 2.0).abs() < 1e-6);
    }

    #[test]
    fn more_busy_time_means_more_energy() {
        let light = EnergyMeter::new(model());
        light.record_busy_secs(0.5);
        let heavy = EnergyMeter::new(model());
        heavy.record_busy_secs(3.5);
        assert!(heavy.read_at(1.0).joules > light.read_at(1.0).joules);
    }

    #[test]
    fn busy_guard_reports_nonzero_time() {
        let meter = EnergyMeter::new(model());
        {
            let _guard = meter.busy_guard();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(meter.busy_core_seconds() > 0.0);
    }

    #[test]
    fn wall_clock_advances() {
        let meter = EnergyMeter::new(model());
        std::thread::sleep(Duration::from_millis(2));
        assert!(meter.wall_seconds() > 0.0);
        let r = meter.read();
        assert!(r.wall_seconds > 0.0);
        assert!(r.joules > 0.0);
    }

    #[test]
    fn zero_wall_reading_has_zero_average_power() {
        let meter = EnergyMeter::new(model());
        let r = meter.read_at(0.0);
        assert_eq!(r.average_watts, 0.0);
        assert_eq!(r.joules, 0.0);
    }

    #[test]
    fn reading_breakdown_sums_to_joules() {
        let meter = EnergyMeter::new(model());
        meter.record_busy_secs(2.0);
        let r = meter.read_at(1.0);
        assert!((r.breakdown.total() - r.joules).abs() < 1e-12);
        assert!((r.breakdown.static_joules - 10.0).abs() < 1e-9);
        assert!((r.breakdown.dynamic_joules - 10.0).abs() < 1e-9);
        assert!((r.breakdown.idle_joules - 2.0).abs() < 1e-9);
    }

    #[test]
    fn work_reading_is_all_dynamic() {
        let r = EnergyReading::from_work_joules(7.5);
        assert_eq!(r.joules, 7.5);
        assert_eq!(r.breakdown.dynamic_joules, 7.5);
        assert_eq!(r.breakdown.static_joules, 0.0);
        assert_eq!(r.wall_seconds, 0.0);
        assert_eq!(r.average_watts, 0.0);
    }

    #[test]
    fn concurrent_recording_is_summed() {
        let meter = std::sync::Arc::new(EnergyMeter::new(model()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = meter.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.record_busy(Duration::from_micros(10));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = 4.0 * 100.0 * 10e-6;
        assert!((meter.busy_core_seconds() - expected).abs() < 1e-9);
    }
}

//! Online energy-budget controller: close the loop from *observed* energy
//! readings back to the runtime's quality and frequency knobs.
//!
//! The paper's model takes a quality **ratio** as input and reports energy as
//! output. This module inverts that: given a target — a total joule budget
//! over a horizon, or a watt envelope — a [`BudgetController`] runs a
//! feedback loop over cumulative [`EnergyReading`] deltas and emits
//! [`BudgetSetpoint`]s: a multiplicative per-group significance-ratio scale,
//! a frequency cap for approximate work, and a watt cap for fleet-level
//! actuators. The controller never trusts the configured power model: an
//! embedded [`SplitEstimator`] recovers the observed static/dynamic split
//! online by exponentially-weighted least squares over reading deltas, so the
//! same loop works whether readings come from the modelled path or a real
//! RAPL backend (`rapl` feature).
//!
//! Everything here is **pure and deterministic**: the caller supplies time
//! and readings; the controller holds no clocks, no randomness and no
//! threads. Replaying the same observation sequence reproduces the same
//! setpoint sequence bit-for-bit, which is what the conformance and property
//! batteries assert.

use serde::{Deserialize, Serialize};

use crate::meter::EnergyReading;

/// What the controller steers toward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BudgetTarget {
    /// Spend at most `joules` over `horizon_seconds` of wall-clock time.
    ///
    /// The sustainable rate is re-planned every observation from what is
    /// *left*: `(joules - spent) / (horizon - elapsed)`, so overspending
    /// early automatically tightens the remainder of the run.
    TotalJoules {
        /// Total energy budget for the horizon, in joules.
        joules: f64,
        /// Wall-clock horizon over which the budget applies, in seconds.
        horizon_seconds: f64,
    },
    /// Hold average package power at or under `watts` indefinitely.
    WattEnvelope {
        /// The power envelope, in watts.
        watts: f64,
    },
}

impl BudgetTarget {
    /// The planned sustainable power at `elapsed` seconds with `spent` joules
    /// already consumed. Always positive (floored at a small epsilon so the
    /// controller saturates instead of dividing by zero when the budget is
    /// exhausted or the horizon has passed).
    pub fn planned_watts(&self, elapsed_seconds: f64, spent_joules: f64) -> f64 {
        const FLOOR: f64 = 1e-9;
        match *self {
            BudgetTarget::TotalJoules {
                joules,
                horizon_seconds,
            } => {
                let remaining_j = (joules - spent_joules).max(0.0);
                let remaining_t = (horizon_seconds - elapsed_seconds).max(FLOOR);
                (remaining_j / remaining_t).max(FLOOR)
            }
            BudgetTarget::WattEnvelope { watts } => watts.max(FLOOR),
        }
    }

    /// Total joules this target allows (`None` for an open-ended envelope).
    pub fn total_joules(&self) -> Option<f64> {
        match *self {
            BudgetTarget::TotalJoules { joules, .. } => Some(joules),
            BudgetTarget::WattEnvelope { .. } => None,
        }
    }
}

/// Tuning knobs for the [`BudgetController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetConfig {
    /// The budget being enforced.
    pub target: BudgetTarget,
    /// Fractional tolerance band around the target (e.g. `0.1` = ±10%).
    /// Spending inside `target × (1 + tolerance)` is conformant.
    pub tolerance: f64,
    /// Proportional gain on the normalised power error per observation.
    /// Higher converges faster but rings; the default is conservative.
    pub gain: f64,
    /// Floor of the significance-ratio scale at maximum austerity. The
    /// effective ratio of a group never drops below `base_ratio ×
    /// min_ratio_scale`, and critical (ratio-1.0 / accurate) work is never
    /// scaled at all.
    pub min_ratio_scale: f64,
    /// Floor of the approximate-work frequency cap at maximum austerity.
    pub cap_floor: f64,
    /// EWMA smoothing factor for the observed power rate (weight of the
    /// newest delta; `1.0` = no smoothing).
    pub power_alpha: f64,
    /// Exponential forgetting factor passed to the [`SplitEstimator`].
    pub split_forgetting: f64,
}

impl BudgetConfig {
    /// A conservative default configuration for `target`.
    pub fn new(target: BudgetTarget) -> Self {
        BudgetConfig {
            target,
            tolerance: 0.10,
            gain: 0.25,
            min_ratio_scale: 0.0,
            cap_floor: 0.4,
            power_alpha: 0.5,
            split_forgetting: 0.97,
        }
    }

    /// Set the tolerance band (fractional, e.g. `0.1` for ±10%).
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Set the proportional gain.
    pub fn gain(mut self, gain: f64) -> Self {
        self.gain = gain.clamp(0.0, 1.0);
        self
    }

    /// Set the ratio-scale floor reached at maximum austerity.
    pub fn min_ratio_scale(mut self, scale: f64) -> Self {
        self.min_ratio_scale = scale.clamp(0.0, 1.0);
        self
    }

    /// Set the frequency-cap floor reached at maximum austerity.
    pub fn cap_floor(mut self, floor: f64) -> Self {
        self.cap_floor = floor.clamp(0.05, 1.0);
        self
    }
}

/// One control output: the knob positions the runtime tiers apply.
///
/// All fields are monotone in budget headroom: more headroom never lowers
/// `ratio_scale` or `frequency_cap`, and never lowers `watt_cap` for a fixed
/// plan (the property battery asserts this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetSetpoint {
    /// Multiplier in `[min_ratio_scale, 1]` applied to per-group
    /// significance ratios (groups at ratio 1.0 are exempt — critical work
    /// is never degraded by the budget).
    pub ratio_scale: f64,
    /// Frequency cap in `[cap_floor, 1]` for approximate dispatches, fed to
    /// the execution environment's re-targetable cap hook.
    pub frequency_cap: f64,
    /// Sustainable package/fleet power for the *remaining* run, in watts —
    /// the actuator value for the cluster's global power-cap controller.
    pub watt_cap: f64,
    /// Internal austerity level in `[0, 1]` (`0` = budget slack, `1` =
    /// maximum throttling). Serving tiers compose this with their admission
    /// pressure.
    pub austerity: f64,
    /// True once the budget is fully spent (total-joule targets only):
    /// serving tiers should defer or shed deferrable work outright.
    pub exhausted: bool,
}

impl BudgetSetpoint {
    /// The no-op setpoint emitted before any observation arrives.
    pub fn unconstrained(watt_cap: f64) -> Self {
        BudgetSetpoint {
            ratio_scale: 1.0,
            frequency_cap: 1.0,
            watt_cap,
            austerity: 0.0,
            exhausted: false,
        }
    }
}

/// Exponentially-forgetting least-squares estimator of the observed
/// static/dynamic power split.
///
/// Each sample is one reading delta `(Δwall, Δbusy, ΔJ)`; the fitted model is
/// `ΔJ ≈ base_watts·Δwall + dynamic_watts·Δbusy`, i.e. the affine power
/// model's own shape with `base_watts = P_static + cores·P_idle` (power that
/// flows whenever the package is on) and `dynamic_watts = P_active − P_idle`
/// (the *extra* power of a busy core over an idle one). The normal equations
/// are kept as five decayed sums, so the estimator is O(1) per sample and
/// fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitEstimator {
    forgetting: f64,
    s_ww: f64,
    s_wb: f64,
    s_bb: f64,
    s_wj: f64,
    s_bj: f64,
    samples: u64,
}

impl SplitEstimator {
    /// New estimator with forgetting factor `forgetting` in `(0, 1]`
    /// (`1.0` = plain least squares over all history).
    pub fn new(forgetting: f64) -> Self {
        SplitEstimator {
            forgetting: forgetting.clamp(1e-3, 1.0),
            s_ww: 0.0,
            s_wb: 0.0,
            s_bb: 0.0,
            s_wj: 0.0,
            s_bj: 0.0,
            samples: 0,
        }
    }

    /// Feed one reading delta. Non-positive wall deltas are ignored (a
    /// stalled clock carries no information).
    pub fn push(&mut self, delta_wall: f64, delta_busy: f64, delta_joules: f64) {
        if delta_wall.is_nan()
            || delta_wall <= 0.0
            || !delta_busy.is_finite()
            || !delta_joules.is_finite()
        {
            return;
        }
        let l = self.forgetting;
        self.s_ww = l * self.s_ww + delta_wall * delta_wall;
        self.s_wb = l * self.s_wb + delta_wall * delta_busy;
        self.s_bb = l * self.s_bb + delta_busy * delta_busy;
        self.s_wj = l * self.s_wj + delta_wall * delta_joules;
        self.s_bj = l * self.s_bj + delta_busy * delta_joules;
        self.samples += 1;
    }

    /// Number of samples absorbed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// `(base_watts, dynamic_watts_per_busy_core)` — the fitted split, or
    /// `None` before the trace has enough rank to separate the two terms
    /// (e.g. utilisation pinned at a constant: wall and busy collinear).
    pub fn split(&self) -> Option<(f64, f64)> {
        if self.samples < 2 {
            return None;
        }
        let det = self.s_ww * self.s_bb - self.s_wb * self.s_wb;
        // Normalised rank test: collinear (Δwall, Δbusy) pairs make the
        // Gram determinant vanish relative to its diagonal product.
        if det <= 1e-9 * self.s_ww * self.s_bb || det <= 0.0 {
            return None;
        }
        let base = (self.s_bb * self.s_wj - self.s_wb * self.s_bj) / det;
        let dynamic = (self.s_ww * self.s_bj - self.s_wb * self.s_wj) / det;
        Some((base, dynamic))
    }

    /// The observed static share of power at utilisation `busy_cores`
    /// (busy core-seconds per wall second): `base / (base + dyn·busy)`.
    /// Falls back to `None` when the split is not yet identifiable.
    pub fn static_fraction_at(&self, busy_cores: f64) -> Option<f64> {
        let (base, dynamic) = self.split()?;
        let total = base + dynamic * busy_cores.max(0.0);
        if total <= 0.0 {
            return None;
        }
        Some((base / total).clamp(0.0, 1.0))
    }
}

/// Feedback controller mapping observed energy readings to setpoints.
///
/// Call [`BudgetController::observe`] with monotone time and the
/// *cumulative* reading at that time (as produced by `energy_report_at` /
/// `ExecutionEnv::report`); the controller differences consecutive readings
/// itself. State updates are pure f64 arithmetic — replays are
/// bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetController {
    config: BudgetConfig,
    estimator: SplitEstimator,
    /// Last cumulative observation `(elapsed, busy, joules)`.
    last: Option<(f64, f64, f64)>,
    /// EWMA of the observed power rate, watts.
    observed_watts: f64,
    /// Austerity in `[0, 1]`; the single internal control state.
    austerity: f64,
    /// Last emitted setpoint (re-emitted on degenerate observations).
    setpoint: BudgetSetpoint,
}

impl BudgetController {
    /// New controller for `config`, starting unconstrained.
    pub fn new(config: BudgetConfig) -> Self {
        let initial_cap = config.target.planned_watts(0.0, 0.0);
        BudgetController {
            config,
            estimator: SplitEstimator::new(config.split_forgetting),
            last: None,
            observed_watts: 0.0,
            austerity: 0.0,
            setpoint: BudgetSetpoint::unconstrained(initial_cap),
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &BudgetConfig {
        &self.config
    }

    /// The online split estimator (for inspection/tests).
    pub fn estimator(&self) -> &SplitEstimator {
        &self.estimator
    }

    /// Cumulative joules observed so far.
    pub fn spent_joules(&self) -> f64 {
        self.last.map_or(0.0, |(_, _, j)| j)
    }

    /// The last cumulative observation as `(elapsed_seconds,
    /// busy_core_seconds, joules)`, or `None` before the first one. This is
    /// the anchor for cross-tier accounting checks: `joules` must equal the
    /// meter/ledger sum re-read at `elapsed_seconds`, bit for bit.
    pub fn last_observation(&self) -> Option<(f64, f64, f64)> {
        self.last
    }

    /// The most recent setpoint without feeding a new observation.
    pub fn setpoint(&self) -> BudgetSetpoint {
        self.setpoint
    }

    /// Feed the cumulative reading at `elapsed_seconds` and get the next
    /// setpoint. Observations with non-increasing time re-emit the previous
    /// setpoint unchanged (time must advance for a rate to exist).
    pub fn observe(&mut self, elapsed_seconds: f64, cumulative: &EnergyReading) -> BudgetSetpoint {
        let joules = cumulative.joules;
        let busy = cumulative.busy_core_seconds;
        let (prev_t, prev_b, prev_j) = self.last.unwrap_or((0.0, 0.0, 0.0));
        if elapsed_seconds.is_nan() || elapsed_seconds <= prev_t || !joules.is_finite() {
            return self.setpoint;
        }
        let dt = elapsed_seconds - prev_t;
        let dj = (joules - prev_j).max(0.0);
        let db = (busy - prev_b).max(0.0);
        self.last = Some((elapsed_seconds, busy, joules));
        self.estimator.push(dt, db, dj);

        let rate = dj / dt;
        let alpha = self.config.power_alpha.clamp(1e-3, 1.0);
        self.observed_watts = if prev_t == 0.0 && prev_j == 0.0 && self.observed_watts == 0.0 {
            rate
        } else {
            alpha * rate + (1.0 - alpha) * self.observed_watts
        };

        let planned = self.config.target.planned_watts(elapsed_seconds, joules);
        // Normalised headroom: +1 = a full planned-rate of slack, negative =
        // overspending. Austerity integrates the error with proportional
        // gain, so persistent overspend ratchets the knobs down and
        // persistent slack releases them — monotone in headroom each step.
        let headroom = ((planned - self.observed_watts) / planned).clamp(-1.0, 1.0);
        self.austerity = (self.austerity - self.config.gain * headroom).clamp(0.0, 1.0);

        let exhausted = self
            .config
            .target
            .total_joules()
            .is_some_and(|budget| joules >= budget);
        let austerity = if exhausted { 1.0 } else { self.austerity };
        self.setpoint = BudgetSetpoint {
            ratio_scale: 1.0 - austerity * (1.0 - self.config.min_ratio_scale),
            frequency_cap: 1.0 - austerity * (1.0 - self.config.cap_floor),
            watt_cap: planned,
            austerity,
            exhausted,
        };
        self.setpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::EnergyBreakdown;

    fn reading(wall: f64, busy: f64, joules: f64) -> EnergyReading {
        EnergyReading {
            wall_seconds: wall,
            busy_core_seconds: busy,
            joules,
            average_watts: if wall > 0.0 { joules / wall } else { 0.0 },
            breakdown: EnergyBreakdown {
                dynamic_joules: joules,
                ..Default::default()
            },
        }
    }

    fn joule_config(joules: f64, horizon: f64) -> BudgetConfig {
        BudgetConfig::new(BudgetTarget::TotalJoules {
            joules,
            horizon_seconds: horizon,
        })
    }

    #[test]
    fn on_plan_spending_stays_unconstrained() {
        let mut c = BudgetController::new(joule_config(100.0, 10.0));
        for step in 1..=9 {
            let t = step as f64;
            // Exactly the planned 10 W.
            let sp = c.observe(t, &reading(t, t, 10.0 * t));
            assert!(
                sp.ratio_scale > 0.95,
                "on-plan spending must not throttle: {sp:?}"
            );
        }
        // The final step lands exactly on the budget: exhaustion saturates.
        assert!(c.observe(10.0, &reading(10.0, 10.0, 100.0)).exhausted);
    }

    #[test]
    fn overspend_raises_austerity_and_lowers_setpoints() {
        let mut c = BudgetController::new(joule_config(100.0, 10.0));
        // Spend at 3x the plan.
        let sp1 = c.observe(1.0, &reading(1.0, 2.0, 30.0));
        let sp2 = c.observe(2.0, &reading(2.0, 4.0, 60.0));
        assert!(sp1.austerity > 0.0);
        assert!(sp2.austerity >= sp1.austerity);
        assert!(sp2.ratio_scale < 1.0);
        assert!(sp2.frequency_cap < 1.0);
        // Watt cap tightens as the remaining budget shrinks faster than time.
        assert!(sp2.watt_cap < 100.0 / 10.0);
    }

    #[test]
    fn exhausted_budget_saturates() {
        let mut c = BudgetController::new(joule_config(50.0, 10.0));
        let sp = c.observe(1.0, &reading(1.0, 1.0, 60.0));
        assert!(sp.exhausted);
        assert_eq!(sp.austerity, 1.0);
        assert!((sp.ratio_scale - c.config().min_ratio_scale).abs() < 1e-12);
    }

    #[test]
    fn underspend_releases_austerity() {
        let mut c = BudgetController::new(joule_config(100.0, 10.0));
        // Overspend first...
        c.observe(1.0, &reading(1.0, 2.0, 30.0));
        let tight = c.setpoint();
        // ...then coast far below the plan.
        let mut last = tight;
        for step in 2..=6 {
            let t = step as f64;
            last = c.observe(t, &reading(t, 2.0, 30.0 + 0.1 * (t - 1.0)));
        }
        assert!(
            last.ratio_scale > tight.ratio_scale,
            "slack must release the throttle: {last:?} vs {tight:?}"
        );
    }

    #[test]
    fn watt_envelope_tracks_constant_plan() {
        let mut c = BudgetController::new(BudgetConfig::new(BudgetTarget::WattEnvelope {
            watts: 20.0,
        }));
        let sp = c.observe(1.0, &reading(1.0, 1.0, 40.0));
        assert_eq!(sp.watt_cap, 20.0);
        assert!(sp.austerity > 0.0, "40 W under a 20 W envelope throttles");
    }

    #[test]
    fn controller_replay_is_bit_deterministic() {
        let run = || {
            let mut c = BudgetController::new(joule_config(80.0, 8.0));
            let mut out = Vec::new();
            for step in 1..=20 {
                let t = step as f64 * 0.4;
                let j = 9.0 * t + (step % 3) as f64;
                out.push(c.observe(t, &reading(t, 1.5 * t, j)));
            }
            out
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ratio_scale.to_bits(), y.ratio_scale.to_bits());
            assert_eq!(x.frequency_cap.to_bits(), y.frequency_cap.to_bits());
            assert_eq!(x.watt_cap.to_bits(), y.watt_cap.to_bits());
        }
    }

    #[test]
    fn split_estimator_recovers_affine_model() {
        // Synthetic trace from E = 12 W·wall + 5.6 W·busy with varying
        // utilisation so the Gram matrix has rank 2.
        let mut est = SplitEstimator::new(0.99);
        for k in 0..200 {
            let dw = 0.1;
            let db = 0.1 * ((k % 7) as f64) / 6.0 * 4.0; // 0..0.4 busy core-s
            let dj = 12.0 * dw + 5.6 * db;
            est.push(dw, db, dj);
        }
        let (base, dynamic) = est.split().expect("identifiable");
        assert!((base - 12.0).abs() < 1e-6, "base {base}");
        assert!((dynamic - 5.6).abs() < 1e-6, "dynamic {dynamic}");
    }

    #[test]
    fn split_estimator_rejects_collinear_traces() {
        let mut est = SplitEstimator::new(0.99);
        for _ in 0..50 {
            est.push(0.1, 0.2, 3.0); // utilisation pinned: rank 1
        }
        assert!(est.split().is_none());
    }

    #[test]
    fn static_fraction_matches_model() {
        let mut est = SplitEstimator::new(1.0);
        for k in 0..100 {
            let dw = 0.05;
            let db = dw * (k % 5) as f64; // 0..4 busy cores
            est.push(dw, db, 10.0 * dw + 2.0 * db);
        }
        let f = est.static_fraction_at(2.0).expect("identifiable");
        assert!((f - 10.0 / 14.0).abs() < 1e-6, "{f}");
    }
}

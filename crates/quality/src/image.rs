//! Minimal grayscale image container with deterministic synthetic inputs and
//! a PGM writer.
//!
//! The paper uses real images for Sobel/DCT and shows visual quadrant
//! comparisons (Figures 1 and 3). Real inputs are not required to reproduce
//! the *behaviour* being evaluated (task counts, per-task cost, quality
//! trends), so this module generates a deterministic procedural image with
//! edges, gradients and texture — features that exercise the Sobel and DCT
//! kernels the same way a photograph would.

use std::io::{self, Write};
use std::path::Path;

/// An 8-bit grayscale image stored in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl GrayImage {
    /// Create a black image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        GrayImage {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wrap an existing pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            width * height,
            "pixel buffer length must equal width * height"
        );
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Deterministic synthetic test image combining smooth gradients, hard
    /// edges (a grid of rectangles), and a high-frequency texture region.
    ///
    /// The same `(width, height)` always produces the same image, making
    /// experiments repeatable without shipping binary assets.
    pub fn synthetic(width: usize, height: usize) -> Self {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let fx = x as f64 / width as f64;
                let fy = y as f64 / height as f64;
                // Smooth diagonal gradient.
                let mut v = 96.0 * (fx + fy) / 2.0;
                // Rectangular grid: hard edges every 1/8 of the image.
                if (x / (width / 8).max(1)) % 2 == (y / (height / 8).max(1)) % 2 {
                    v += 64.0;
                }
                // Concentric rings for curved edges.
                let cx = fx - 0.5;
                let cy = fy - 0.5;
                let r = (cx * cx + cy * cy).sqrt();
                v += 48.0 * (r * 40.0).sin().abs();
                // High-frequency texture in the lower-right quadrant.
                if fx > 0.5 && fy > 0.5 {
                    v += 24.0 * (((x * 7 + y * 13) % 17) as f64 / 17.0);
                }
                img.data[y * width + x] = v.clamp(0.0, 255.0) as u8;
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow the raw row-major pixel buffer.
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrow the raw row-major pixel buffer.
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consume the image and return its pixel buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    /// Read the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Write the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = value;
    }

    /// Pixel values as `f64` samples (for PSNR computation).
    pub fn to_f64(&self) -> Vec<f64> {
        self.data.iter().map(|&p| p as f64).collect()
    }

    /// Compose a "quadrant comparison" image in the style of the paper's
    /// Figure 1 / Figure 3: upper-left from `a`, upper-right from `b`,
    /// lower-left from `c`, lower-right from `d`.
    ///
    /// # Panics
    ///
    /// Panics if the four images do not share identical dimensions.
    pub fn quadrants(a: &GrayImage, b: &GrayImage, c: &GrayImage, d: &GrayImage) -> GrayImage {
        for img in [b, c, d] {
            assert_eq!(
                (a.width, a.height),
                (img.width, img.height),
                "quadrant images must share dimensions"
            );
        }
        let mut out = GrayImage::new(a.width, a.height);
        let half_w = a.width / 2;
        let half_h = a.height / 2;
        for y in 0..a.height {
            for x in 0..a.width {
                let src = match (x < half_w, y < half_h) {
                    (true, true) => a,
                    (false, true) => b,
                    (true, false) => c,
                    (false, false) => d,
                };
                out.data[y * a.width + x] = src.data[y * a.width + x];
            }
        }
        out
    }

    /// Serialise as binary PGM (P5) into an arbitrary writer.
    pub fn write_pgm<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "P5")?;
        writeln!(writer, "{} {}", self.width, self.height)?;
        writeln!(writer, "255")?;
        writer.write_all(&self.data)
    }

    /// Write the image as a binary PGM file at `path`.
    pub fn save_pgm<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_pgm(io::BufWriter::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_black() {
        let img = GrayImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        GrayImage::new(0, 10);
    }

    #[test]
    fn from_raw_roundtrip() {
        let img = GrayImage::from_raw(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(1, 1), 4);
        assert_eq!(img.into_raw(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "width * height")]
    fn from_raw_wrong_length_panics() {
        GrayImage::from_raw(2, 2, vec![0; 3]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = GrayImage::new(8, 8);
        img.set(3, 5, 200);
        assert_eq!(img.get(3, 5), 200);
        assert_eq!(img.pixels()[5 * 8 + 3], 200);
    }

    #[test]
    fn synthetic_is_deterministic_and_nontrivial() {
        let a = GrayImage::synthetic(64, 64);
        let b = GrayImage::synthetic(64, 64);
        assert_eq!(a, b);
        // The image must contain actual structure (more than one value).
        let min = *a.pixels().iter().min().unwrap();
        let max = *a.pixels().iter().max().unwrap();
        assert!(max > min + 50, "synthetic image should have contrast");
    }

    #[test]
    fn quadrants_compose_correct_regions() {
        let mk = |v: u8| GrayImage::from_raw(4, 4, vec![v; 16]);
        let q = GrayImage::quadrants(&mk(10), &mk(20), &mk(30), &mk(40));
        assert_eq!(q.get(0, 0), 10); // upper-left
        assert_eq!(q.get(3, 0), 20); // upper-right
        assert_eq!(q.get(0, 3), 30); // lower-left
        assert_eq!(q.get(3, 3), 40); // lower-right
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn quadrants_dimension_mismatch_panics() {
        let a = GrayImage::new(4, 4);
        let b = GrayImage::new(8, 8);
        GrayImage::quadrants(&a, &b, &a, &a);
    }

    #[test]
    fn pgm_output_has_header_and_payload() {
        let img = GrayImage::from_raw(2, 2, vec![9, 8, 7, 6]);
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..10]);
        assert!(text.starts_with("P5\n2 2\n255"));
        assert_eq!(&buf[buf.len() - 4..], &[9, 8, 7, 6]);
    }

    #[test]
    fn to_f64_matches_pixels() {
        let img = GrayImage::from_raw(1, 3, vec![0, 100, 255]);
        assert_eq!(img.to_f64(), vec![0.0, 100.0, 255.0]);
    }
}

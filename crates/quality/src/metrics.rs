//! Scalar quality metrics: MSE, PSNR, PSNR⁻¹ and relative-error variants.
//!
//! All metrics compare an *approximate* output against a *reference*
//! (fully-accurate) output, matching the paper's methodology: "The quality of
//! the final result is evaluated by comparing it to the output produced by a
//! fully accurate execution of the respective code" (Section 4.1).

use serde::{Deserialize, Serialize};

/// Which metric a benchmark uses to report output quality (Table 1, "Quality"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityMetric {
    /// Peak signal-to-noise ratio, reported as `PSNR⁻¹` so lower is better
    /// (used by Sobel and DCT).
    PsnrInverse,
    /// Relative error in percent (used by MC, K-means, Jacobi, Fluidanimate).
    RelativeError,
}

impl QualityMetric {
    /// Human-readable label matching the figure axes in the paper.
    pub fn label(self) -> &'static str {
        match self {
            QualityMetric::PsnrInverse => "PSNR^-1",
            QualityMetric::RelativeError => "Rel. Error (%)",
        }
    }
}

/// A quality measurement produced by one experiment run.
///
/// The value is always "lower is better", mirroring the quality column of
/// Figure 2 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityScore {
    /// Which metric `value` is expressed in.
    pub metric: QualityMetric,
    /// The metric value (PSNR⁻¹ or relative error in percent).
    pub value: f64,
}

impl QualityScore {
    /// A perfect score (zero error / infinite PSNR) for the given metric.
    pub fn perfect(metric: QualityMetric) -> Self {
        QualityScore { metric, value: 0.0 }
    }

    /// Build a PSNR-based score from a raw PSNR value (dB).
    pub fn from_psnr(psnr_db: f64) -> Self {
        QualityScore {
            metric: QualityMetric::PsnrInverse,
            value: if psnr_db.is_infinite() {
                0.0
            } else {
                1.0 / psnr_db
            },
        }
    }

    /// Build a relative-error-based score from a fractional error
    /// (e.g. `0.004` becomes `0.4%`).
    pub fn from_relative_error(fraction: f64) -> Self {
        QualityScore {
            metric: QualityMetric::RelativeError,
            value: fraction * 100.0,
        }
    }
}

/// Mean squared error between two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        approx.len(),
        "mse: slices must have equal length"
    );
    assert!(!reference.is_empty(), "mse: slices must be non-empty");
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| {
            let d = r - a;
            d * d
        })
        .sum();
    sum / reference.len() as f64
}

/// Peak signal-to-noise ratio in decibels for signals with the given peak
/// value (255 for 8-bit images).
///
/// Returns `f64::INFINITY` when the two signals are identical.
pub fn psnr(reference: &[f64], approx: &[f64], peak: f64) -> f64 {
    let err = mse(reference, approx);
    if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((peak * peak) / err).log10()
    }
}

/// `PSNR⁻¹` — the quantity actually plotted in Figure 2 of the paper
/// ("Note that PSNR is a logarithmic metric"); identical outputs map to `0`.
pub fn psnr_inverse(reference: &[f64], approx: &[f64], peak: f64) -> f64 {
    let p = psnr(reference, approx, peak);
    if p.is_infinite() {
        0.0
    } else {
        1.0 / p
    }
}

/// Relative error of `approx` w.r.t. `reference` using the L1 norm:
/// `Σ|rᵢ − aᵢ| / Σ|rᵢ|`.
///
/// Falls back to the absolute L1 error when the reference norm is zero.
pub fn relative_error(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        approx.len(),
        "relative_error: slices must have equal length"
    );
    let num: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a).abs())
        .sum();
    let den: f64 = reference.iter().map(|r| r.abs()).sum();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Relative error using the L2 norm: `‖r − a‖₂ / ‖r‖₂`.
///
/// Falls back to the absolute L2 error when the reference norm is zero.
pub fn relative_error_l2(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        approx.len(),
        "relative_error_l2: slices must have equal length"
    );
    let num: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a) * (r - a))
        .sum::<f64>()
        .sqrt();
    let den: f64 = reference.iter().map(|r| r * r).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Mean of the element-wise relative errors, ignoring elements whose
/// reference value is exactly zero (those contribute their absolute error).
pub fn mean_relative_error(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        approx.len(),
        "mean_relative_error: slices must have equal length"
    );
    assert!(!reference.is_empty(), "mean_relative_error: empty slices");
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| {
            if *r == 0.0 {
                (r - a).abs()
            } else {
                (r - a).abs() / r.abs()
            }
        })
        .sum();
    sum / reference.len() as f64
}

/// Maximum absolute element-wise difference.
pub fn max_abs_error(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        approx.len(),
        "max_abs_error: slices must have equal length"
    );
    reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a).abs())
        .fold(0.0, f64::max)
}

/// Convert a slice of `u8` pixels into `f64` samples (helper for PSNR over
/// image buffers).
pub fn to_f64(pixels: &[u8]) -> Vec<f64> {
    pixels.iter().map(|&p| p as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_identical_is_zero() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let r = vec![0.0, 0.0];
        let a = vec![3.0, 4.0];
        assert!((mse(&r, &a) - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = vec![10.0, 20.0, 30.0];
        assert!(psnr(&a, &a, 255.0).is_infinite());
        assert_eq!(psnr_inverse(&a, &a, 255.0), 0.0);
    }

    #[test]
    fn psnr_decreases_with_more_noise() {
        let r = vec![100.0; 64];
        let small: Vec<f64> = r.iter().map(|v| v + 1.0).collect();
        let large: Vec<f64> = r.iter().map(|v| v + 10.0).collect();
        assert!(psnr(&r, &small, 255.0) > psnr(&r, &large, 255.0));
        assert!(psnr_inverse(&r, &small, 255.0) < psnr_inverse(&r, &large, 255.0));
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 1, peak = 255 => PSNR = 10*log10(255^2) ≈ 48.13 dB
        let r = vec![0.0; 16];
        let a = vec![1.0; 16];
        let p = psnr(&r, &a, 255.0);
        assert!((p - 48.1308).abs() < 1e-3, "psnr = {p}");
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let a = vec![5.0, -3.0, 8.0];
        assert_eq!(relative_error(&a, &a), 0.0);
        assert_eq!(relative_error_l2(&a, &a), 0.0);
        assert_eq!(mean_relative_error(&a, &a), 0.0);
        assert_eq!(max_abs_error(&a, &a), 0.0);
    }

    #[test]
    fn relative_error_known_value() {
        let r = vec![10.0, 10.0];
        let a = vec![9.0, 11.0];
        // |1| + |1| over |10| + |10| = 0.1
        assert!((relative_error(&r, &a) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_error_zero_reference_falls_back_to_absolute() {
        let r = vec![0.0, 0.0];
        let a = vec![1.0, 2.0];
        assert!((relative_error(&r, &a) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn l2_relative_error_known_value() {
        let r = vec![3.0, 4.0]; // norm 5
        let a = vec![3.0, 3.0]; // diff norm 1
        assert!((relative_error_l2(&r, &a) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mean_relative_error_mixes_zero_and_nonzero() {
        let r = vec![0.0, 2.0];
        let a = vec![1.0, 1.0];
        // element 0: abs err 1.0; element 1: 0.5 => mean 0.75
        assert!((mean_relative_error(&r, &a) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn max_abs_error_picks_largest() {
        let r = vec![1.0, 2.0, 3.0];
        let a = vec![1.5, 0.0, 3.25];
        assert!((max_abs_error(&r, &a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quality_score_constructors() {
        let s = QualityScore::from_psnr(50.0);
        assert_eq!(s.metric, QualityMetric::PsnrInverse);
        assert!((s.value - 0.02).abs() < 1e-12);

        let s = QualityScore::from_psnr(f64::INFINITY);
        assert_eq!(s.value, 0.0);

        let s = QualityScore::from_relative_error(0.004);
        assert_eq!(s.metric, QualityMetric::RelativeError);
        assert!((s.value - 0.4).abs() < 1e-12);

        assert_eq!(
            QualityScore::perfect(QualityMetric::RelativeError).value,
            0.0
        );
    }

    #[test]
    fn metric_labels() {
        assert_eq!(QualityMetric::PsnrInverse.label(), "PSNR^-1");
        assert_eq!(QualityMetric::RelativeError.label(), "Rel. Error (%)");
    }

    #[test]
    fn to_f64_converts_pixels() {
        assert_eq!(to_f64(&[0u8, 128, 255]), vec![0.0, 128.0, 255.0]);
    }
}

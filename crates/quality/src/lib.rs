//! # sig-quality
//!
//! Output-quality metrics and small image utilities used throughout the
//! reproduction of *"A Programming Model and Runtime System for
//! Significance-Aware Energy-Efficient Computing"* (PPoPP 2015).
//!
//! The paper evaluates result quality with two families of metrics
//! (Section 4.1):
//!
//! * **PSNR** (peak signal-to-noise ratio) for image-processing benchmarks
//!   (Sobel, DCT). Figure 2 plots `PSNR⁻¹` so that "lower is better" holds
//!   for every quality column; [`psnr_inverse`] mirrors that convention.
//! * **Relative error** for the numeric benchmarks (MC, K-means, Jacobi,
//!   Fluidanimate).
//!
//! The [`image`] module provides a minimal grayscale image container,
//! deterministic synthetic test images, and a PGM writer — enough to
//! regenerate Figure 1 / Figure 3 style visual comparisons without any
//! external image dependency.

#![warn(missing_docs)]

pub mod image;
pub mod metrics;

pub use image::GrayImage;
pub use metrics::{
    max_abs_error, mean_relative_error, mse, psnr, psnr_inverse, relative_error, relative_error_l2,
    QualityMetric, QualityScore,
};

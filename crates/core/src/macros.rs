//! Declarative macros mirroring the paper's pragma syntax.
//!
//! The paper expresses the programming model as `#pragma omp task` /
//! `#pragma omp taskwait` directives that a source-to-source compiler lowers
//! to runtime calls (Section 3.1). Rust has no pragmas; the closest
//! non-invasive spelling is a declarative macro whose clauses match the
//! pragma clauses one-to-one and expand to exactly those runtime calls:
//!
//! ```
//! use sig_core::{task, taskwait, Runtime, Policy};
//!
//! let rt = Runtime::builder().workers(2).policy(Policy::GtbMaxBuffer).build();
//! let sobel = rt.create_group("sobel", 1.0);
//!
//! for i in 0..8u32 {
//!     task!(rt,
//!         significant((f64::from(i % 9) + 1.0) / 10.0),
//!         approxfun(move || { /* cheaper stencil */ }),
//!         label(&sobel),
//!         body(move || { /* accurate stencil for row i */ })
//!     );
//! }
//! taskwait!(rt, label(&sobel), ratio(0.35));
//! ```

/// Spawn a task: the macro equivalent of
/// `#pragma omp task significant(...) approxfun(...) label(...) in(...) out(...)`.
///
/// Clauses (any order, `body` required):
///
/// * `body(closure)` — the accurate task body,
/// * `significant(expr)` — significance in `[0.0, 1.0]`,
/// * `approxfun(closure)` — approximate body,
/// * `label(&group)` — a [`TaskGroup`](crate::TaskGroup) handle,
/// * `in(iter)` / `out(iter)` — dependence keys,
/// * `deadline(duration)` — relative deadline from now,
/// * `cancel(&token)` — a cooperative [`CancelToken`](crate::CancelToken).
///
/// Expands to a [`TaskBuilder`](crate::runtime::TaskBuilder) chain and
/// returns the spawned [`TaskId`](crate::TaskId).
#[macro_export]
macro_rules! task {
    ($rt:expr, $($clause:ident ( $($arg:tt)* )),+ $(,)?) => {{
        let builder = $crate::task!(@find_body $rt, $($clause ( $($arg)* )),+);
        $( let builder = $crate::task!(@clause builder, $clause ( $($arg)* )); )+
        builder.spawn()
    }};

    // Locate the mandatory body(...) clause and start the builder from it.
    (@find_body $rt:expr, body($body:expr) $(, $($rest:tt)*)?) => {
        $rt.task($body)
    };
    (@find_body $rt:expr, $other:ident ( $($arg:tt)* ) $(, $($rest:tt)*)?) => {
        $crate::task!(@find_body $rt, $($($rest)*)?)
    };
    (@find_body $rt:expr $(,)?) => {
        compile_error!("task! requires a body(...) clause")
    };

    // Per-clause builder transformations. body() was already consumed above.
    (@clause $builder:expr, body($body:expr)) => { $builder };
    (@clause $builder:expr, significant($sig:expr)) => { $builder.significance($sig) };
    (@clause $builder:expr, approxfun($body:expr)) => { $builder.approx($body) };
    (@clause $builder:expr, label($group:expr)) => { $builder.group($group) };
    (@clause $builder:expr, in($keys:expr)) => { $builder.reads($keys) };
    (@clause $builder:expr, out($keys:expr)) => { $builder.writes($keys) };
    (@clause $builder:expr, deadline($deadline:expr)) => { $builder.deadline($deadline) };
    (@clause $builder:expr, cancel($token:expr)) => { $builder.cancel_token($token) };
}

/// Spawn a whole batch of tasks through the amortised injection pipeline —
/// the batched counterpart of [`task!`](crate::task).
///
/// Forms (clauses in any order; `tasks(...)` takes any
/// `IntoIterator<Item = BatchTask>`):
///
/// * `spawn_batch!(rt, tasks(items))` — batch into the implicit global
///   group,
/// * `spawn_batch!(rt, label(&group), tasks(items))` — batch into a group.
///
/// Expands to a [`BatchBuilder`](crate::runtime::BatchBuilder) submission
/// and returns the issued [`TaskIdRange`](crate::runtime::TaskIdRange).
///
/// ```
/// use sig_core::{spawn_batch, taskwait, BatchTask, Runtime};
///
/// let rt = Runtime::builder().workers(2).build();
/// let rows = rt.create_group("rows", 1.0);
/// let ids = spawn_batch!(rt, label(&rows), tasks((0..8u32).map(|i| {
///     BatchTask::new(move || { let _ = i; }).significance(0.5)
/// })));
/// assert_eq!(ids.len(), 8);
/// taskwait!(rt, label(&rows));
/// ```
#[macro_export]
macro_rules! spawn_batch {
    ($rt:expr, tasks($items:expr) $(,)?) => {
        $rt.spawn_batch($items)
    };
    ($rt:expr, label($group:expr), tasks($items:expr) $(,)?) => {
        $rt.batch().group($group).spawn_tasks($items)
    };
    ($rt:expr, tasks($items:expr), label($group:expr) $(,)?) => {
        $rt.batch().group($group).spawn_tasks($items)
    };
}

/// Barrier: the macro equivalent of
/// `#pragma omp taskwait [label(...)] [ratio(...)] [on(...)]`.
///
/// Forms:
///
/// * `taskwait!(rt)` — global barrier,
/// * `taskwait!(rt, ratio(0.5))` — global barrier applying a ratio to the
///   implicit global group,
/// * `taskwait!(rt, label(&group))` — group barrier,
/// * `taskwait!(rt, label(&group), ratio(0.35))` — group barrier with ratio,
/// * `taskwait!(rt, on(key))` — wait for all writers of a dependence key.
#[macro_export]
macro_rules! taskwait {
    ($rt:expr) => {
        $rt.wait_all()
    };
    ($rt:expr, ratio($ratio:expr) $(,)?) => {
        $rt.wait_all_with_ratio($ratio)
    };
    ($rt:expr, label($group:expr) $(,)?) => {
        $rt.wait_group($group)
    };
    ($rt:expr, label($group:expr), ratio($ratio:expr) $(,)?) => {
        $rt.wait_group_with_ratio($group, $ratio)
    };
    ($rt:expr, ratio($ratio:expr), label($group:expr) $(,)?) => {
        $rt.wait_group_with_ratio($group, $ratio)
    };
    ($rt:expr, on($key:expr) $(,)?) => {
        $rt.wait_on($key)
    };
}

#[cfg(test)]
mod tests {
    use crate::{DepKey, Policy, Runtime};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn task_macro_minimal_form() {
        let rt = Runtime::builder().workers(2).build();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        task!(
            rt,
            body(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
        );
        taskwait!(rt);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn task_macro_full_clause_set() {
        let rt = Runtime::builder()
            .workers(2)
            .policy(Policy::GtbMaxBuffer)
            .build();
        let group = rt.create_group("macro", 0.0);
        let accurate = Arc::new(AtomicUsize::new(0));
        let approx = Arc::new(AtomicUsize::new(0));
        let key = DepKey::named("buffer");
        for _ in 0..10 {
            let a = accurate.clone();
            let x = approx.clone();
            task!(
                rt,
                significant(0.5),
                approxfun(move || {
                    x.fetch_add(1, Ordering::Relaxed);
                }),
                label(&group),
                out([key]),
                body(move || {
                    a.fetch_add(1, Ordering::Relaxed);
                })
            );
        }
        taskwait!(rt, label(&group), ratio(0.0));
        assert_eq!(accurate.load(Ordering::Relaxed), 0);
        assert_eq!(approx.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn taskwait_macro_on_key() {
        let rt = Runtime::builder().workers(2).build();
        let key = DepKey::named("x");
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        task!(
            rt,
            out([key]),
            body(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                d.store(1, Ordering::SeqCst);
            })
        );
        taskwait!(rt, on(key));
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn task_macro_deadline_and_cancel_clauses() {
        let rt = Runtime::builder().workers(2).build();
        let token = crate::CancelToken::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        task!(
            rt,
            deadline(std::time::Duration::from_secs(3600)),
            cancel(&token),
            body(move || {
                r.fetch_add(1, Ordering::Relaxed);
            })
        );
        let summary = taskwait!(rt);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert!(summary.is_clean());
        assert_eq!(summary.deadline_misses, 0);
    }

    #[test]
    fn taskwait_macro_global_ratio() {
        let rt = Runtime::builder()
            .workers(2)
            .policy(Policy::GtbMaxBuffer)
            .build();
        for i in 0..10u32 {
            task!(
                rt,
                significant(f64::from(i % 9 + 1) / 10.0),
                approxfun(|| {}),
                body(|| {})
            );
        }
        taskwait!(rt, ratio(0.5));
        assert_eq!(rt.stats().accurate(), 5);
    }
}

//! Future-based spawn handles: per-task completion observation without
//! barriers.
//!
//! A serving layer cannot afford a [`Runtime::wait_all`] barrier per
//! request — it needs to learn, request by request, *how* a task ended:
//! completed (in which mode), panicked, cancelled, or shed by the brownout
//! controller. [`SpawnHandle`] is that observation channel, resolved exactly
//! once by the worker that retires the task:
//!
//! * **polling** — [`SpawnHandle::try_outcome`] is one mutex-protected load,
//!   suited to a driver loop sweeping thousands of in-flight requests;
//! * **blocking** — [`SpawnHandle::wait`] parks on a condvar until the task
//!   retires;
//! * **async** — `SpawnHandle` implements [`Future`], registering the
//!   caller's [`Waker`] so any executor can await the terminal
//!   [`TaskOutcome`].
//!
//! Handles are attached at spawn through
//! [`Runtime::submit`](crate::runtime::Runtime::submit), whose builder
//! wraps value-returning bodies so the result of the executed body (accurate
//! *or* approximate) is retrievable with [`SpawnHandle::take_value`] after a
//! successful resolution.
//!
//! [`Runtime::wait_all`]: crate::runtime::Runtime::wait_all

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use crate::task::{ExecutionMode, TaskId};

/// How a handled task terminated. Every spawned task resolves to exactly one
/// of these, mirroring the exactly-once accounting of
/// [`OutcomeSummary`](crate::stats::OutcomeSummary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskOutcome {
    /// A body ran to completion in the given mode (accurate, approximate,
    /// or dropped-by-policy).
    Completed(ExecutionMode),
    /// The executed body panicked; outputs were poisoned.
    Panicked,
    /// The task was skipped by cooperative cancellation before it ran.
    Cancelled,
    /// The task was shed by the brownout overload controller.
    Shed,
}

impl TaskOutcome {
    /// Whether the task produced a result (ran some body to completion).
    pub fn is_success(&self) -> bool {
        matches!(self, TaskOutcome::Completed(_))
    }

    /// Whether a serving layer may treat the failure as *transient* and
    /// retry the request: panics (e.g. injected faults) and cancellations
    /// are per-attempt accidents, while [`TaskOutcome::Shed`] is a
    /// deliberate load-control decision that a retry would only amplify.
    pub fn is_transient_failure(&self) -> bool {
        matches!(self, TaskOutcome::Panicked | TaskOutcome::Cancelled)
    }
}

/// Type-erased notification target a [`Task`](crate::task::Task) carries to
/// its terminal transition. Implemented by [`HandleCore<T>`]; the runtime
/// only ever calls [`HandleNotify::notify`] once, from the single worker
/// retiring the task.
pub(crate) trait HandleNotify: Send + Sync {
    fn notify(&self, outcome: TaskOutcome);
}

struct HandleState<T> {
    outcome: Option<TaskOutcome>,
    finished_at: Option<Instant>,
    value: Option<T>,
    wakers: Vec<Waker>,
}

/// Shared core between a [`SpawnHandle`] and the task that resolves it.
pub(crate) struct HandleCore<T> {
    state: Mutex<HandleState<T>>,
    cond: Condvar,
}

impl<T> HandleCore<T> {
    pub(crate) fn new() -> Self {
        HandleCore {
            state: Mutex::new(HandleState {
                outcome: None,
                finished_at: None,
                value: None,
                wakers: Vec::new(),
            }),
            cond: Condvar::new(),
        }
    }

    /// Store the value produced by the executed body. Called from inside the
    /// body wrapper, strictly before the runtime's terminal notification.
    pub(crate) fn put_value(&self, value: T) {
        self.state.lock().unwrap().value = Some(value);
    }
}

impl<T: Send> HandleNotify for HandleCore<T> {
    fn notify(&self, outcome: TaskOutcome) {
        let mut state = self.state.lock().unwrap();
        if state.outcome.is_some() {
            return;
        }
        state.outcome = Some(outcome);
        state.finished_at = Some(Instant::now());
        let wakers = std::mem::take(&mut state.wakers);
        drop(state);
        self.cond.notify_all();
        for waker in wakers {
            waker.wake();
        }
    }
}

/// An owned observation handle for one spawned task, created by
/// [`Runtime::submit`](crate::runtime::Runtime::submit).
///
/// Resolves exactly once to the task's terminal [`TaskOutcome`]; the value
/// returned by the executed body is retrievable afterwards with
/// [`SpawnHandle::take_value`]. Dropping the handle never blocks and never
/// affects the task.
pub struct SpawnHandle<T> {
    core: Arc<HandleCore<T>>,
    id: TaskId,
}

impl<T> SpawnHandle<T> {
    pub(crate) fn new(core: Arc<HandleCore<T>>, id: TaskId) -> Self {
        SpawnHandle { core, id }
    }

    /// The spawned task's id (spawn order) — the key under which a serving
    /// layer indexes attempts for range cancellation.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Whether the task has reached a terminal outcome.
    pub fn is_finished(&self) -> bool {
        self.core.state.lock().unwrap().outcome.is_some()
    }

    /// The terminal outcome, if the task already resolved. Non-blocking.
    pub fn try_outcome(&self) -> Option<TaskOutcome> {
        self.core.state.lock().unwrap().outcome
    }

    /// The instant the worker retired the task, if it already resolved —
    /// precise completion timestamps independent of the observer's polling
    /// cadence.
    pub fn finished_at(&self) -> Option<Instant> {
        self.core.state.lock().unwrap().finished_at
    }

    /// Block until the task resolves and return its outcome.
    pub fn wait(&self) -> TaskOutcome {
        let mut state = self.core.state.lock().unwrap();
        while state.outcome.is_none() {
            state = self.core.cond.wait(state).unwrap();
        }
        state.outcome.expect("loop exits only once resolved")
    }

    /// Block until the task resolves or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<TaskOutcome> {
        let deadline = Instant::now() + timeout;
        let mut state = self.core.state.lock().unwrap();
        loop {
            if let Some(outcome) = state.outcome {
                return Some(outcome);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, result) = self.core.cond.wait_timeout(state, remaining).unwrap();
            state = next;
            if result.timed_out() && state.outcome.is_none() {
                return None;
            }
        }
    }

    /// Take the value produced by the executed body. `Some` at most once,
    /// and only after the task resolved with
    /// [`TaskOutcome::Completed`] in a mode that actually ran a body.
    pub fn take_value(&self) -> Option<T> {
        let mut state = self.core.state.lock().unwrap();
        if state.outcome.is_some() {
            state.value.take()
        } else {
            None
        }
    }
}

impl<T> Future for SpawnHandle<T> {
    type Output = TaskOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<TaskOutcome> {
        let mut state = self.core.state.lock().unwrap();
        if let Some(outcome) = state.outcome {
            return Poll::Ready(outcome);
        }
        if !state.wakers.iter().any(|w| w.will_wake(cx.waker())) {
            state.wakers.push(cx.waker().clone());
        }
        Poll::Pending
    }
}

impl<T> std::fmt::Debug for SpawnHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpawnHandle")
            .field("id", &self.id)
            .field("outcome", &self.try_outcome())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    fn resolved<T>(outcome: TaskOutcome) -> SpawnHandle<T>
    where
        T: Send,
    {
        let core = Arc::new(HandleCore::new());
        (core.as_ref() as &dyn HandleNotify).notify(outcome);
        SpawnHandle::new(core, TaskId(0))
    }

    #[test]
    fn try_outcome_before_and_after_resolution() {
        let core: Arc<HandleCore<u32>> = Arc::new(HandleCore::new());
        let handle = SpawnHandle::new(core.clone(), TaskId(7));
        assert_eq!(handle.try_outcome(), None);
        assert!(!handle.is_finished());
        assert_eq!(handle.id(), TaskId(7));
        core.put_value(42);
        assert_eq!(
            handle.take_value(),
            None,
            "value is withheld until resolution"
        );
        (core.as_ref() as &dyn HandleNotify)
            .notify(TaskOutcome::Completed(ExecutionMode::Accurate));
        assert!(handle.is_finished());
        assert!(handle.try_outcome().unwrap().is_success());
        assert!(handle.finished_at().is_some());
        assert_eq!(handle.take_value(), Some(42));
        assert_eq!(handle.take_value(), None, "value is take-once");
    }

    #[test]
    fn first_notification_wins() {
        let core: Arc<HandleCore<()>> = Arc::new(HandleCore::new());
        let handle = SpawnHandle::new(core.clone(), TaskId(0));
        (core.as_ref() as &dyn HandleNotify).notify(TaskOutcome::Panicked);
        (core.as_ref() as &dyn HandleNotify)
            .notify(TaskOutcome::Completed(ExecutionMode::Accurate));
        assert_eq!(handle.try_outcome(), Some(TaskOutcome::Panicked));
    }

    #[test]
    fn wait_blocks_until_cross_thread_resolution() {
        let core: Arc<HandleCore<()>> = Arc::new(HandleCore::new());
        let handle = SpawnHandle::new(core.clone(), TaskId(0));
        let notifier = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            (core.as_ref() as &dyn HandleNotify).notify(TaskOutcome::Shed);
        });
        assert_eq!(handle.wait(), TaskOutcome::Shed);
        notifier.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires_on_unresolved_handle() {
        let core: Arc<HandleCore<()>> = Arc::new(HandleCore::new());
        let handle = SpawnHandle::new(core, TaskId(0));
        assert_eq!(handle.wait_timeout(Duration::from_millis(5)), None);
        assert_eq!(
            resolved::<()>(TaskOutcome::Cancelled).wait_timeout(Duration::ZERO),
            Some(TaskOutcome::Cancelled)
        );
    }

    #[test]
    fn outcome_classification() {
        assert!(TaskOutcome::Completed(ExecutionMode::Dropped).is_success());
        assert!(!TaskOutcome::Panicked.is_success());
        assert!(TaskOutcome::Panicked.is_transient_failure());
        assert!(TaskOutcome::Cancelled.is_transient_failure());
        assert!(!TaskOutcome::Shed.is_transient_failure());
        assert!(!TaskOutcome::Completed(ExecutionMode::Accurate).is_transient_failure());
    }

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn future_registers_waker_and_resolves() {
        let core: Arc<HandleCore<()>> = Arc::new(HandleCore::new());
        let mut handle = SpawnHandle::new(core.clone(), TaskId(0));
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(counter.clone());
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut handle).poll(&mut cx).is_pending());
        // Re-polling with the same waker must not register it twice.
        assert!(Pin::new(&mut handle).poll(&mut cx).is_pending());
        (core.as_ref() as &dyn HandleNotify).notify(TaskOutcome::Panicked);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "woken exactly once");
        assert_eq!(
            Pin::new(&mut handle).poll(&mut cx),
            Poll::Ready(TaskOutcome::Panicked)
        );
    }
}

//! Per-worker task queues.
//!
//! The paper's runtime "is organized as a master/slave work-sharing
//! scheduler. ... For every task call encountered, the task is enqueued in a
//! per-worker task queue. Tasks are distributed across workers in round-robin
//! fashion. Workers select the oldest tasks from their queues for execution.
//! When a worker's queue runs empty, the worker may steal tasks from other
//! worker's queues." (Section 3)
//!
//! Tasks in this system are coarse-grained (whole image rows, matrix blocks,
//! chunks of observations), so a mutex-protected `VecDeque` per worker is
//! both simple and entirely sufficient; the lock is uncontended except during
//! stealing.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::task::Task;

/// A single worker's FIFO queue.
#[derive(Default)]
pub(crate) struct WorkerQueue {
    deque: Mutex<VecDeque<Arc<Task>>>,
}

impl WorkerQueue {
    pub(crate) fn new() -> Self {
        WorkerQueue::default()
    }

    /// Enqueue a task (called by the master or by a completing task's
    /// successor-release path).
    pub(crate) fn push(&self, task: Arc<Task>) {
        self.deque.lock().push_back(task);
    }

    /// Dequeue the oldest task (owner path).
    pub(crate) fn pop_oldest(&self) -> Option<Arc<Task>> {
        self.deque.lock().pop_front()
    }

    /// Steal the newest task (thief path). Stealing from the opposite end of
    /// the owner reduces contention and keeps the owner working on the oldest
    /// tasks as the paper prescribes.
    pub(crate) fn steal_newest(&self) -> Option<Arc<Task>> {
        self.deque.lock().pop_back()
    }

    /// Number of queued tasks.
    pub(crate) fn len(&self) -> usize {
        self.deque.lock().len()
    }

    /// Whether the queue is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.deque.lock().is_empty()
    }
}

/// The set of all worker queues plus the round-robin cursor used by the
/// master to distribute tasks.
pub(crate) struct QueueSet {
    queues: Vec<WorkerQueue>,
    next: std::sync::atomic::AtomicUsize,
}

impl QueueSet {
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers > 0, "at least one worker queue is required");
        QueueSet {
            queues: (0..workers).map(|_| WorkerQueue::new()).collect(),
            next: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of worker queues.
    pub(crate) fn len(&self) -> usize {
        self.queues.len()
    }

    /// Push a task to the next queue in round-robin order.
    pub(crate) fn push_round_robin(&self, task: Arc<Task>) {
        let slot = self
            .next
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            % self.queues.len();
        self.queues[slot].push(task);
    }

    /// The queue owned by worker `index`.
    pub(crate) fn queue(&self, index: usize) -> &WorkerQueue {
        &self.queues[index]
    }

    /// Attempt to steal a task on behalf of worker `thief`, scanning the
    /// other workers' queues.
    pub(crate) fn steal(&self, thief: usize) -> Option<Arc<Task>> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            if let Some(task) = self.queues[victim].steal_newest() {
                return Some(task);
            }
        }
        None
    }

    /// Total number of queued (issued but not yet started) tasks.
    pub(crate) fn total_queued(&self) -> usize {
        self.queues.iter().map(WorkerQueue::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use crate::significance::Significance;
    use crate::task::TaskId;

    fn task(id: u64) -> Arc<Task> {
        Arc::new(Task::new(
            TaskId(id),
            GroupId::GLOBAL,
            Significance::CRITICAL,
            Box::new(|| {}),
            None,
            Vec::new(),
        ))
    }

    #[test]
    fn queue_is_fifo_for_owner() {
        let q = WorkerQueue::new();
        q.push(task(1));
        q.push(task(2));
        q.push(task(3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_oldest().unwrap().id, TaskId(1));
        assert_eq!(q.pop_oldest().unwrap().id, TaskId(2));
        assert_eq!(q.pop_oldest().unwrap().id, TaskId(3));
        assert!(q.pop_oldest().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn thief_takes_newest() {
        let q = WorkerQueue::new();
        q.push(task(1));
        q.push(task(2));
        assert_eq!(q.steal_newest().unwrap().id, TaskId(2));
        assert_eq!(q.pop_oldest().unwrap().id, TaskId(1));
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let set = QueueSet::new(4);
        for i in 0..8 {
            set.push_round_robin(task(i));
        }
        for w in 0..4 {
            assert_eq!(set.queue(w).len(), 2, "worker {w} should hold 2 tasks");
        }
        assert_eq!(set.total_queued(), 8);
    }

    #[test]
    fn steal_scans_other_queues() {
        let set = QueueSet::new(3);
        // Put work only on worker 2's queue.
        set.queue(2).push(task(7));
        let stolen = set.steal(0).expect("worker 0 should steal from worker 2");
        assert_eq!(stolen.id, TaskId(7));
        assert!(set.steal(0).is_none());
    }

    #[test]
    fn steal_never_takes_from_own_queue() {
        let set = QueueSet::new(2);
        set.queue(1).push(task(9));
        assert!(set.steal(1).is_none(), "a worker must not steal from itself");
        assert_eq!(set.queue(1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        QueueSet::new(0);
    }

    #[test]
    fn single_worker_set() {
        let set = QueueSet::new(1);
        set.push_round_robin(task(1));
        set.push_round_robin(task(2));
        assert_eq!(set.queue(0).len(), 2);
        assert!(set.steal(0).is_none());
    }
}

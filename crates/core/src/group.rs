//! Task groups.
//!
//! The `label(...)` clause of the paper's `#pragma omp task` groups tasks
//! under a common identifier. Groups are the unit at which
//!
//! * the accurate-execution **ratio** `R_g` is specified (via
//!   `tpc_init_group()` or the `ratio(...)` clause of `taskwait`),
//! * **barrier synchronisation** happens (`tpc_wait_group()`), and
//! * the GTB policy keeps its **task buffer** and the statistics of Table 2
//!   are collected.

use std::collections::HashMap;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::stats::GroupStats;
use crate::task::Task;

/// Identifier of a task group.
///
/// Group `0` is the implicit *global* group that unlabeled tasks belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub(crate) u32);

impl GroupId {
    /// The implicit group of tasks spawned without a `label(...)` clause.
    pub const GLOBAL: GroupId = GroupId(0);

    /// Raw index of this group.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A cheaply clonable handle to a task group, returned by
/// [`Runtime::group`](crate::runtime::Runtime::group).
#[derive(Debug, Clone)]
pub struct TaskGroup {
    pub(crate) id: GroupId,
    pub(crate) name: Arc<str>,
}

impl TaskGroup {
    /// The group identifier.
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// The group label supplied by the programmer.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Internal per-group state shared by the master and the workers.
pub(crate) struct GroupState {
    pub(crate) id: GroupId,
    pub(crate) name: Arc<str>,
    /// Target ratio of accurately executed tasks, `R_g ∈ [0, 1]`.
    ratio: Mutex<f64>,
    /// Tasks spawned into this group and not yet completed.
    pub(crate) outstanding: AtomicUsize,
    /// GTB: tasks buffered by the master, awaiting a flush.
    pub(crate) buffer: Mutex<Vec<Arc<Task>>>,
    /// Execution statistics (Table 2 inputs).
    pub(crate) stats: GroupStats,
}

impl GroupState {
    pub(crate) fn new(id: GroupId, name: Arc<str>, ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "accurate-task ratio must be in [0, 1], got {ratio}"
        );
        GroupState {
            id,
            name,
            ratio: Mutex::new(ratio),
            outstanding: AtomicUsize::new(0),
            buffer: Mutex::new(Vec::new()),
            stats: GroupStats::default(),
        }
    }

    /// Current target accurate-task ratio.
    pub(crate) fn ratio(&self) -> f64 {
        *self.ratio.lock()
    }

    /// Update the target ratio (the `ratio(...)` clause of `taskwait`).
    pub(crate) fn set_ratio(&self, ratio: f64) {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "accurate-task ratio must be in [0, 1], got {ratio}"
        );
        *self.ratio.lock() = ratio;
    }
}

/// Registry mapping group labels to group state.
#[derive(Default)]
pub(crate) struct GroupRegistry {
    groups: RwLock<Vec<Arc<GroupState>>>,
    by_name: Mutex<HashMap<Arc<str>, GroupId>>,
}

impl GroupRegistry {
    /// Create a registry containing only the global group (full accuracy by
    /// default: unannotated programs behave exactly like the original code).
    pub(crate) fn new() -> Self {
        let registry = GroupRegistry::default();
        let name: Arc<str> = Arc::from("<global>");
        registry
            .groups
            .write()
            .push(Arc::new(GroupState::new(GroupId::GLOBAL, name.clone(), 1.0)));
        registry.by_name.lock().insert(name, GroupId::GLOBAL);
        registry
    }

    /// Get or create the group with the given label. The ratio is applied to
    /// newly created groups; for existing groups it is left untouched unless
    /// `ratio` is `Some`.
    pub(crate) fn get_or_create(&self, name: &str, ratio: Option<f64>) -> Arc<GroupState> {
        if let Some(&id) = self.by_name.lock().get(name) {
            let group = self.get(id);
            if let Some(r) = ratio {
                group.set_ratio(r);
            }
            return group;
        }
        let mut groups = self.groups.write();
        // Re-check under the write lock to avoid duplicate creation races.
        if let Some(&id) = self.by_name.lock().get(name) {
            return groups[id.index()].clone();
        }
        let id = GroupId(groups.len() as u32);
        let name: Arc<str> = Arc::from(name);
        let state = Arc::new(GroupState::new(id, name.clone(), ratio.unwrap_or(1.0)));
        groups.push(state.clone());
        self.by_name.lock().insert(name, id);
        state
    }

    /// Look up a group by id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this registry.
    pub(crate) fn get(&self, id: GroupId) -> Arc<GroupState> {
        self.groups.read()[id.index()].clone()
    }

    /// Look up a group by label.
    pub(crate) fn find(&self, name: &str) -> Option<Arc<GroupState>> {
        let id = *self.by_name.lock().get(name)?;
        Some(self.get(id))
    }

    /// Snapshot of all groups (used by whole-runtime barriers and flushes).
    pub(crate) fn all(&self) -> Vec<Arc<GroupState>> {
        self.groups.read().clone()
    }

    /// Number of groups, including the global one.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.groups.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_starts_with_global_group() {
        let reg = GroupRegistry::new();
        assert_eq!(reg.len(), 1);
        let global = reg.get(GroupId::GLOBAL);
        assert_eq!(global.id, GroupId::GLOBAL);
        assert_eq!(global.ratio(), 1.0);
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let reg = GroupRegistry::new();
        let a = reg.get_or_create("sobel", Some(0.35));
        let b = reg.get_or_create("sobel", None);
        assert_eq!(a.id, b.id);
        assert_eq!(reg.len(), 2);
        assert_eq!(b.ratio(), 0.35);
    }

    #[test]
    fn get_or_create_updates_ratio_when_given() {
        let reg = GroupRegistry::new();
        let a = reg.get_or_create("g", Some(0.5));
        assert_eq!(a.ratio(), 0.5);
        reg.get_or_create("g", Some(0.8));
        assert_eq!(a.ratio(), 0.8);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let reg = GroupRegistry::new();
        let a = reg.get_or_create("a", None);
        let b = reg.get_or_create("b", None);
        assert_ne!(a.id, b.id);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn find_by_name() {
        let reg = GroupRegistry::new();
        reg.get_or_create("dct", Some(0.4));
        assert!(reg.find("dct").is_some());
        assert!(reg.find("missing").is_none());
    }

    #[test]
    fn new_group_defaults_to_fully_accurate() {
        let reg = GroupRegistry::new();
        let g = reg.get_or_create("plain", None);
        assert_eq!(g.ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn invalid_ratio_panics() {
        let reg = GroupRegistry::new();
        reg.get_or_create("bad", Some(1.5));
    }

    #[test]
    fn set_ratio_roundtrip() {
        let reg = GroupRegistry::new();
        let g = reg.get_or_create("g", None);
        g.set_ratio(0.25);
        assert_eq!(g.ratio(), 0.25);
    }

    #[test]
    fn global_id_index() {
        assert_eq!(GroupId::GLOBAL.index(), 0);
    }
}

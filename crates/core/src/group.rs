//! Task groups.
//!
//! The `label(...)` clause of the paper's `#pragma omp task` groups tasks
//! under a common identifier. Groups are the unit at which
//!
//! * the accurate-execution **ratio** `R_g` is specified (via
//!   `tpc_init_group()` or the `ratio(...)` clause of `taskwait`),
//! * **barrier synchronisation** happens (`tpc_wait_group()`), and
//! * the GTB policy keeps its **task buffer** and the statistics of Table 2
//!   are collected.
//!
//! Execution-hot state (the ratio, the outstanding counter, the statistics)
//! is atomic or sharded; locks remain only on master-side cold paths (group
//! creation, the GTB spawn buffer).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::stats::GroupStats;
use crate::sync::EventCount;
use crate::task::Task;

/// Identifier of a task group.
///
/// Group `0` is the implicit *global* group that unlabeled tasks belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub(crate) u32);

impl GroupId {
    /// The implicit group of tasks spawned without a `label(...)` clause.
    pub const GLOBAL: GroupId = GroupId(0);

    /// Raw index of this group.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A cheaply clonable handle to a task group, returned by
/// [`Runtime::create_group`](crate::runtime::Runtime::create_group).
#[derive(Debug, Clone)]
pub struct TaskGroup {
    pub(crate) id: GroupId,
    pub(crate) name: Arc<str>,
}

impl TaskGroup {
    /// The group identifier.
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// The group label supplied by the programmer.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Internal per-group state shared by the master and the workers.
pub(crate) struct GroupState {
    pub(crate) id: GroupId,
    pub(crate) name: Arc<str>,
    /// Target ratio of accurately executed tasks, `R_g ∈ [0, 1]`, stored as
    /// `f64` bits so the execution hot path reads it without a lock.
    ratio_bits: AtomicU64,
    /// Multiplicative throttle in `[0, 1]` applied by the energy-budget
    /// controller on top of the programmer's ratio (1.0 = no budget
    /// engaged). Stored separately so releasing the budget restores the
    /// programmer's exact ratio bits.
    budget_scale_bits: AtomicU64,
    /// Tasks spawned into this group and not yet completed.
    pub(crate) outstanding: AtomicUsize,
    /// Barrier waiters for `taskwait label(...)`; notified only when
    /// `outstanding` drops to zero, so per-completion cost is one atomic
    /// load when nobody waits.
    pub(crate) barrier: EventCount,
    /// GTB: tasks buffered by the master, awaiting a flush. Master-side only.
    pub(crate) buffer: Mutex<Vec<Arc<Task>>>,
    /// Execution statistics (Table 2 inputs), sharded per worker.
    pub(crate) stats: GroupStats,
    /// Cooperative group-wide cancellation: once set, every not-yet-executed
    /// task of the group is skipped at dequeue time.
    cancelled: AtomicBool,
}

impl GroupState {
    pub(crate) fn new(id: GroupId, name: Arc<str>, ratio: f64, stat_shards: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "accurate-task ratio must be in [0, 1], got {ratio}"
        );
        GroupState {
            id,
            name,
            ratio_bits: AtomicU64::new(ratio.to_bits()),
            budget_scale_bits: AtomicU64::new(1.0f64.to_bits()),
            outstanding: AtomicUsize::new(0),
            barrier: EventCount::default(),
            buffer: Mutex::new(Vec::new()),
            stats: GroupStats::new(stat_shards),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Request cooperative cancellation of every outstanding task.
    pub(crate) fn request_cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether group-wide cancellation has been requested.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Current target accurate-task ratio.
    pub(crate) fn ratio(&self) -> f64 {
        f64::from_bits(self.ratio_bits.load(Ordering::Acquire))
    }

    /// Update the target ratio (the `ratio(...)` clause of `taskwait`).
    pub(crate) fn set_ratio(&self, ratio: f64) {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "accurate-task ratio must be in [0, 1], got {ratio}"
        );
        self.ratio_bits.store(ratio.to_bits(), Ordering::Release);
    }

    /// Current budget throttle (1.0 when no budget is engaged).
    pub(crate) fn budget_scale(&self) -> f64 {
        f64::from_bits(self.budget_scale_bits.load(Ordering::Acquire))
    }

    /// Re-target the budget throttle (clamped to `[0, 1]`). Called by the
    /// energy-budget controller, never by application code.
    pub(crate) fn set_budget_scale(&self, scale: f64) {
        let scale = scale.clamp(0.0, 1.0);
        self.budget_scale_bits
            .store(scale.to_bits(), Ordering::Release);
    }

    /// The ratio classification actually uses: the programmer's ratio scaled
    /// by the budget throttle. Groups pinned at ratio 1.0 are **exempt** —
    /// the budget never degrades work the programmer declared critical — and
    /// with no budget engaged this returns the exact bits of [`Self::ratio`]
    /// (the unbudgeted trace reproduces bit-for-bit).
    pub(crate) fn effective_ratio(&self) -> f64 {
        let base = self.ratio();
        if base >= 1.0 {
            return base;
        }
        let scale = self.budget_scale();
        if scale >= 1.0 {
            base
        } else {
            base * scale
        }
    }

    /// Append a whole batch to the GTB buffer with **one** lock
    /// acquisition. When the append reaches `capacity`, the buffered tasks
    /// are taken out and returned for the caller to flush — a batched spawn
    /// therefore classifies in windows at least as informed as the
    /// per-task path's.
    pub(crate) fn append_buffered(
        &self,
        tasks: Vec<Arc<Task>>,
        capacity: usize,
    ) -> Option<Vec<Arc<Task>>> {
        let mut buffer = self.buffer.lock().unwrap();
        if buffer.is_empty() {
            if tasks.len() >= capacity {
                return Some(tasks);
            }
            *buffer = tasks;
        } else {
            buffer.extend(tasks);
            if buffer.len() >= capacity {
                return Some(std::mem::take(&mut *buffer));
            }
        }
        None
    }
}

/// Registry mapping group labels to group state.
pub(crate) struct GroupRegistry {
    groups: RwLock<Vec<Arc<GroupState>>>,
    by_name: Mutex<HashMap<Arc<str>, GroupId>>,
    /// Shard count handed to each new group's statistics (workers + 1).
    stat_shards: usize,
}

impl GroupRegistry {
    /// Create a registry containing only the global group (full accuracy by
    /// default: unannotated programs behave exactly like the original code).
    pub(crate) fn new(stat_shards: usize) -> Self {
        let registry = GroupRegistry {
            groups: RwLock::new(Vec::new()),
            by_name: Mutex::new(HashMap::new()),
            stat_shards,
        };
        let name: Arc<str> = Arc::from("<global>");
        registry
            .groups
            .write()
            .unwrap()
            .push(Arc::new(GroupState::new(
                GroupId::GLOBAL,
                name.clone(),
                1.0,
                stat_shards,
            )));
        registry
            .by_name
            .lock()
            .unwrap()
            .insert(name, GroupId::GLOBAL);
        registry
    }

    /// Get or create the group with the given label. The ratio is applied to
    /// newly created groups; for existing groups it is left untouched unless
    /// `ratio` is `Some`.
    pub(crate) fn get_or_create(&self, name: &str, ratio: Option<f64>) -> Arc<GroupState> {
        if let Some(r) = ratio {
            // Validated before any lock is taken: an invalid ratio must
            // panic without poisoning the registry (the runtime's Drop
            // still walks it to flush GTB buffers during unwinding).
            assert!(
                (0.0..=1.0).contains(&r),
                "accurate-task ratio must be in [0, 1], got {r}"
            );
        }
        if let Some(&id) = self.by_name.lock().unwrap().get(name) {
            let group = self.get(id);
            if let Some(r) = ratio {
                group.set_ratio(r);
            }
            return group;
        }
        let mut groups = self.groups.write().unwrap();
        // Re-check under the write lock to avoid duplicate creation races.
        if let Some(&id) = self.by_name.lock().unwrap().get(name) {
            return groups[id.index()].clone();
        }
        let id = GroupId(groups.len() as u32);
        let name: Arc<str> = Arc::from(name);
        let state = Arc::new(GroupState::new(
            id,
            name.clone(),
            ratio.unwrap_or(1.0),
            self.stat_shards,
        ));
        groups.push(state.clone());
        self.by_name.lock().unwrap().insert(name, id);
        state
    }

    /// Look up a group by id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this registry.
    pub(crate) fn get(&self, id: GroupId) -> Arc<GroupState> {
        self.groups.read().unwrap()[id.index()].clone()
    }

    /// Look up a group by label.
    pub(crate) fn find(&self, name: &str) -> Option<Arc<GroupState>> {
        let id = *self.by_name.lock().unwrap().get(name)?;
        Some(self.get(id))
    }

    /// Snapshot of all groups (used by whole-runtime barriers and flushes).
    pub(crate) fn all(&self) -> Vec<Arc<GroupState>> {
        self.groups.read().unwrap().clone()
    }

    /// Number of groups, including the global one.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.groups.read().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> GroupRegistry {
        GroupRegistry::new(2)
    }

    #[test]
    fn registry_starts_with_global_group() {
        let reg = registry();
        assert_eq!(reg.len(), 1);
        let global = reg.get(GroupId::GLOBAL);
        assert_eq!(global.id, GroupId::GLOBAL);
        assert_eq!(global.ratio(), 1.0);
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let reg = registry();
        let a = reg.get_or_create("sobel", Some(0.35));
        let b = reg.get_or_create("sobel", None);
        assert_eq!(a.id, b.id);
        assert_eq!(reg.len(), 2);
        assert_eq!(b.ratio(), 0.35);
    }

    #[test]
    fn get_or_create_updates_ratio_when_given() {
        let reg = registry();
        let a = reg.get_or_create("g", Some(0.5));
        assert_eq!(a.ratio(), 0.5);
        reg.get_or_create("g", Some(0.8));
        assert_eq!(a.ratio(), 0.8);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let reg = registry();
        let a = reg.get_or_create("a", None);
        let b = reg.get_or_create("b", None);
        assert_ne!(a.id, b.id);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn find_by_name() {
        let reg = registry();
        reg.get_or_create("dct", Some(0.4));
        assert!(reg.find("dct").is_some());
        assert!(reg.find("missing").is_none());
    }

    #[test]
    fn new_group_defaults_to_fully_accurate() {
        let reg = registry();
        let g = reg.get_or_create("plain", None);
        assert_eq!(g.ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn invalid_ratio_panics() {
        let reg = registry();
        reg.get_or_create("bad", Some(1.5));
    }

    #[test]
    fn set_ratio_roundtrip() {
        let reg = registry();
        let g = reg.get_or_create("g", None);
        g.set_ratio(0.25);
        assert_eq!(g.ratio(), 0.25);
    }

    #[test]
    fn global_id_index() {
        assert_eq!(GroupId::GLOBAL.index(), 0);
    }
}

//! Execution environment: per-worker DVFS frequency domains, idle-state
//! (race-to-idle) modelling and energy accounting.
//!
//! Section 6 of the paper names "DVFS in conjunction with suitable runtime
//! policies for executing approximate (and more light-weight) task versions
//! on the slower but also less power-hungry CPUs" as the natural next step
//! for significance-aware execution. This module is that step, in modelled
//! form — and it models **both** classic energy strategies, not just one:
//!
//! * **slow-and-steady** — stretch approximate work over a lower frequency
//!   step; dynamic energy drops by `dynamic_energy_factor`, the makespan
//!   dilates;
//! * **race-to-idle** — run at nominal frequency and drop the core into a
//!   deep [`SleepState`] for the slack the stretched schedule would have
//!   burned executing slowly; static and idle power drop instead.
//!
//! Which one wins is a property of the power model's static/dynamic split
//! and the depth of the available sleep state; the [`AdaptiveGovernor`]
//! computes the crossover per frequency rung and picks sides, with
//! hysteresis so frequency domains do not thrash (every switch now carries a
//! modelled [`TransitionCost`]).
//!
//! Every worker owns a **frequency domain** and an energy-accounting shard,
//! and a pluggable [`Governor`] maps each task's significance/policy
//! decision to a [`DispatchDecision`] at dispatch time.
//!
//! # Hot-path discipline
//!
//! Executing a ready task must stay **mutex-free**, so all accounting here is
//! per-worker atomics on worker-private cache lines ([`CachePadded`]), folded
//! only when [`EnergyReport`] is built. The governor itself is an immutable
//! `Arc<dyn Governor>`; the default [`NominalGovernor`] short-circuits before
//! the virtual call. Scaled dispatches cache the last
//! `(frequency ratio → active watts)` pair per worker so the `powf` of the
//! power model is paid once per frequency *change*, not once per task.
//! Each shard carries a sequence counter (seqlock): [`ExecutionEnv::report`]
//! retries a shard whose owner is mid-record, so a report sampled during
//! execution can never pair this task's dilated busy time with the previous
//! task's dynamic energy (or vice versa).
//!
//! # Accounting model
//!
//! Per executed task the environment records the measured busy time, the
//! *modelled* busy time (measured × time dilation of the chosen frequency)
//! and the modelled dynamic energy (modelled busy × frequency-scaled active
//! watts). A race-to-idle dispatch instead executes at nominal and banks the
//! slack against its reference step as **sleep residency**. [`EnergyReport::reading`]
//! combines these with the static and idle terms of the [`PowerModel`],
//! prices sleep residency at the configured [`SleepState`] (gating part of
//! the sleeping core's share of socket static power), charges wakeups and
//! DVFS switches through the [`TransitionCost`], and integrates over a
//! modelled makespan that assumes dilation, residency and transition stalls
//! are load-balanced across workers.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sig_energy::{
    EnergyBreakdown, EnergyReading, FrequencyScale, PowerModel, SleepState, TransitionCost,
};

use crate::policy::Policy;
use crate::significance::Significance;
use crate::sync::CachePadded;
use crate::task::ExecutionMode;

/// Everything a [`Governor`] may consult when choosing the frequency step
/// for a task that is about to execute.
#[derive(Debug, Clone, Copy)]
pub struct DispatchContext {
    /// Index of the worker the task is about to execute on. Lets stateful
    /// governors (hysteresis) keep per-domain state without sharing a cache
    /// line across workers.
    pub worker: usize,
    /// The task's significance.
    pub significance: Significance,
    /// The accuracy decision the policy made for this task: `true` means the
    /// accurate body will run, `false` means the approximate body (or a drop,
    /// if the task has no `approxfun`).
    pub accurate: bool,
    /// The runtime's execution policy.
    pub policy: Policy,
    /// The current accurate-task ratio of the task's group.
    pub group_ratio: f64,
    /// Whether the task's deadline is endangered (already missed, or the
    /// runtime is overloaded while the task carries a deadline). The
    /// environment overrides any scaling decision with a race to nominal —
    /// "finish fast" beats the governor's energy preference.
    pub deadline_pressure: bool,
}

/// A governor's verdict for one dispatch: which frequency the task executes
/// at, and whether the slack against a reference step is raced into sleep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchDecision {
    scale: FrequencyScale,
    race_reference: Option<FrequencyScale>,
}

impl DispatchDecision {
    /// Slow-and-steady: execute at `scale`, stretching the work.
    pub fn stretch(scale: FrequencyScale) -> Self {
        DispatchDecision {
            scale,
            race_reference: None,
        }
    }

    /// Execute at nominal frequency with no race: the null decision.
    pub fn nominal() -> Self {
        DispatchDecision::stretch(FrequencyScale::nominal())
    }

    /// Race-to-idle: execute at nominal frequency, then bank the slack
    /// against `reference` — the step a slow-and-steady schedule would have
    /// stretched this task over — as sleep residency.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is above nominal (there is no slack to race
    /// for).
    pub fn race(reference: FrequencyScale) -> Self {
        assert!(
            reference.ratio() <= 1.0,
            "race reference must be at or below nominal, got {}",
            reference.ratio()
        );
        DispatchDecision {
            scale: FrequencyScale::nominal(),
            race_reference: Some(reference),
        }
    }

    /// The frequency the task actually executes at.
    pub fn scale(&self) -> FrequencyScale {
        self.scale
    }

    /// The reference step a race-to-idle dispatch banks slack against.
    pub fn race_reference(&self) -> Option<FrequencyScale> {
        self.race_reference
    }

    /// Whether this dispatch races to idle.
    pub fn is_race(&self) -> bool {
        self.race_reference.is_some()
    }

    /// Sleep residency earned per second of measured busy time:
    /// `reference dilation − executed dilation` (zero for stretch
    /// decisions).
    pub fn slack_factor(&self) -> f64 {
        match self.race_reference {
            Some(reference) => (reference.time_dilation() - self.scale.time_dilation()).max(0.0),
            None => 0.0,
        }
    }

    /// Clamp the decision so it never *executes* above `cap`.
    ///
    /// A stretch at or below the cap is unchanged. A stretch above it is
    /// pulled down to the cap. A race-to-idle decision executes at nominal
    /// by construction, which a cap below nominal forbids — it falls back to
    /// slow-and-steady at its reference rung (itself clamped), the schedule
    /// the race was banking slack against.
    pub fn clamp_to(&self, cap: FrequencyScale) -> DispatchDecision {
        if self.scale.ratio() <= cap.ratio() {
            return *self;
        }
        match self.race_reference {
            Some(reference) if reference.ratio() <= cap.ratio() => {
                DispatchDecision::stretch(reference)
            }
            _ => DispatchDecision::stretch(cap),
        }
    }
}

/// Maps a task's significance/policy decision to an energy strategy at
/// dispatch time.
///
/// Implementations must be cheap and `Sync`: the methods are called on the
/// worker hot path, once per executed task. A governor that only ever
/// stretches can implement [`Governor::frequency_for`] alone; strategies
/// that race to idle override [`Governor::decide`].
pub trait Governor: Send + Sync {
    /// The frequency the dispatched task should (modelled-)execute at.
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale;

    /// Full decision for the dispatched task. The default wraps
    /// [`Governor::frequency_for`] in a slow-and-steady stretch.
    fn decide(&self, ctx: &DispatchContext) -> DispatchDecision {
        DispatchDecision::stretch(self.frequency_for(ctx))
    }

    /// Short name used in reports.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Whether this governor always answers nominal frequency. The
    /// environment uses this to skip dispatch bookkeeping entirely.
    fn is_passthrough(&self) -> bool {
        false
    }
}

/// The default governor: every task runs at nominal frequency. Equivalent to
/// the pre-DVFS runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct NominalGovernor;

impl Governor for NominalGovernor {
    fn frequency_for(&self, _ctx: &DispatchContext) -> FrequencyScale {
        FrequencyScale::nominal()
    }

    fn name(&self) -> &'static str {
        "nominal"
    }

    fn is_passthrough(&self) -> bool {
        true
    }
}

/// Two-rail governor: accurate tasks at nominal frequency, approximate (and
/// dropped) tasks at one fixed lower step — the paper's future-work scenario
/// in its simplest form.
#[derive(Debug, Clone, Copy)]
pub struct ApproxGovernor {
    approximate: FrequencyScale,
}

impl ApproxGovernor {
    /// Run approximate tasks at the given frequency ratio.
    ///
    /// # Panics
    ///
    /// Panics (via [`FrequencyScale::new`]) if `ratio` is outside `(0, 1.5]`.
    pub fn new(ratio: f64) -> Self {
        ApproxGovernor {
            approximate: FrequencyScale::new(ratio),
        }
    }

    /// The frequency applied to approximate tasks.
    pub fn approximate_scale(&self) -> FrequencyScale {
        self.approximate
    }
}

impl Governor for ApproxGovernor {
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale {
        if ctx.accurate {
            FrequencyScale::nominal()
        } else {
            self.approximate
        }
    }

    fn name(&self) -> &'static str {
        "approx-step"
    }
}

/// Rung of `steps` (highest frequency first) selected for a significance:
/// the least significant work lands on the lowest step.
fn ladder_rung(steps: &[FrequencyScale], significance: Significance) -> usize {
    let last = steps.len() - 1;
    let rung = ((1.0 - significance.value()) * last as f64).round() as usize;
    rung.min(last)
}

/// Ladder governor: accurate tasks at nominal frequency; approximate tasks
/// descend a P-state-style frequency ladder with falling significance, so
/// the least significant work runs at the lowest modelled frequency.
#[derive(Debug, Clone)]
pub struct SignificanceLadderGovernor {
    steps: Vec<FrequencyScale>,
}

impl SignificanceLadderGovernor {
    /// Build from an explicit ladder, highest frequency first.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(steps: Vec<FrequencyScale>) -> Self {
        assert!(
            !steps.is_empty(),
            "a ladder governor needs at least one step"
        );
        SignificanceLadderGovernor { steps }
    }

    /// Build from an evenly spaced ladder of `steps` settings down to
    /// `floor` (see [`FrequencyScale::ladder`]).
    pub fn with_ladder(steps: usize, floor: f64) -> Self {
        SignificanceLadderGovernor::new(FrequencyScale::ladder(steps, floor))
    }
}

impl Governor for SignificanceLadderGovernor {
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale {
        if ctx.accurate {
            return FrequencyScale::nominal();
        }
        self.steps[ladder_rung(&self.steps, ctx.significance)]
    }

    fn name(&self) -> &'static str {
        "significance-ladder"
    }
}

/// Race-to-idle governor: every task executes at nominal frequency;
/// approximate tasks bank the slack a [`SignificanceLadderGovernor`] would
/// have stretched them over as deep-sleep residency instead. The pure
/// "finish fast, sleep deep" end of the strategy spectrum — it never changes
/// the frequency domain, so it pays zero DVFS transition costs by
/// construction.
#[derive(Debug, Clone)]
pub struct RaceToIdleGovernor {
    steps: Vec<FrequencyScale>,
}

impl RaceToIdleGovernor {
    /// Build from an explicit reference ladder, highest frequency first
    /// (the rungs a slow-and-steady schedule would use; slack is banked
    /// against them).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or any step is above nominal.
    pub fn new(steps: Vec<FrequencyScale>) -> Self {
        assert!(
            !steps.is_empty(),
            "a race-to-idle governor needs at least one reference step"
        );
        assert!(
            steps.iter().all(|s| s.ratio() <= 1.0),
            "race-to-idle reference steps must be at or below nominal"
        );
        RaceToIdleGovernor { steps }
    }

    /// Build from an evenly spaced reference ladder of `steps` settings down
    /// to `floor` (see [`FrequencyScale::ladder`]).
    pub fn with_ladder(steps: usize, floor: f64) -> Self {
        RaceToIdleGovernor::new(FrequencyScale::ladder(steps, floor))
    }
}

impl Governor for RaceToIdleGovernor {
    fn frequency_for(&self, _ctx: &DispatchContext) -> FrequencyScale {
        FrequencyScale::nominal()
    }

    fn decide(&self, ctx: &DispatchContext) -> DispatchDecision {
        if ctx.accurate {
            return DispatchDecision::nominal();
        }
        let reference = self.steps[ladder_rung(&self.steps, ctx.significance)];
        if reference.is_nominal() {
            // No slack at the top rung: a race would only charge a wakeup.
            return DispatchDecision::nominal();
        }
        DispatchDecision::race(reference)
    }

    fn name(&self) -> &'static str {
        "race-to-idle"
    }
}

/// Per-worker hysteresis state of the [`AdaptiveGovernor`]: the frequency
/// ratio the domain currently holds and how many dispatches it has served
/// since it last re-targeted. Single-writer (the owning worker).
struct DomainState {
    ratio_bits: AtomicU64,
    exponent_bits: AtomicU64,
    since_switch: AtomicU32,
}

impl DomainState {
    fn new(hysteresis: u32) -> Self {
        DomainState {
            ratio_bits: AtomicU64::new(1.0f64.to_bits()),
            exponent_bits: AtomicU64::new(2.4f64.to_bits()),
            // A fresh domain may re-target immediately (no cold-start hold).
            since_switch: AtomicU32::new(hysteresis),
        }
    }
}

/// Number of per-worker hysteresis slots. Workers beyond this share slots
/// (hysteresis quality degrades gracefully; correctness is unaffected).
const ADAPTIVE_DOMAIN_SLOTS: usize = 64;

/// Adaptive energy-strategy governor: per frequency rung, compares the
/// modelled cost of **slow-and-steady** (stretch at the rung) against
/// **race-to-idle** (run at nominal, deep-sleep the slack) and picks the
/// cheaper side. The crossover is decided by the power model's
/// static/dynamic split:
///
/// * dynamic-dominated packages (high power exponent, low static share) —
///   stretching wins: dynamic energy scales superlinearly down with
///   frequency while sleeping saves only the small idle/static share;
/// * static-heavy packages (large `static_watts_per_socket`, shallow power
///   exponent, deep sleep states) — racing wins: the stretched schedule
///   keeps the package awake, the race gates leakage off.
///
/// Frequency changes carry a [`TransitionCost`], so the governor applies
/// **hysteresis** as a minimum residency: once a worker's domain re-targets,
/// it holds that step for at least `hysteresis` dispatches before it may
/// re-target again. Under any input sequence (of non-accurate tasks) the
/// governor's step changes are bounded by `dispatches / hysteresis + 1` per
/// domain — oscillating significance cannot thrash the frequency domain —
/// while a stable demand is followed immediately. (Accurate tasks always
/// execute at nominal, bypassing the filter without touching it:
/// correctness outranks thrash avoidance.)
pub struct AdaptiveGovernor {
    steps: Vec<FrequencyScale>,
    /// Per rung: `true` if race-to-idle is modelled cheaper than stretching.
    race_rung: Vec<bool>,
    hysteresis: u32,
    domains: Box<[CachePadded<DomainState>]>,
}

impl AdaptiveGovernor {
    /// Build an adaptive governor.
    ///
    /// * `model`, `sleep` — the power model and sleep state the runtime
    ///   accounts with (the governor's cost comparison must price the same
    ///   physics the report does);
    /// * `steps` — the frequency ladder (highest first) used both as
    ///   stretch targets and race references;
    /// * `hysteresis` — minimum dispatches a worker's frequency domain
    ///   holds a step before it may re-target (`1` disables hysteresis);
    /// * `typical_task_seconds` — expected nominal busy time per task, used
    ///   to amortise the per-wakeup cost into the race side of the
    ///   comparison.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or contains a step above nominal,
    /// `hysteresis` is zero, or `typical_task_seconds` is not positive.
    pub fn new(
        model: &PowerModel,
        sleep: SleepState,
        steps: Vec<FrequencyScale>,
        hysteresis: u32,
        typical_task_seconds: f64,
    ) -> Self {
        assert!(!steps.is_empty(), "an adaptive governor needs steps");
        assert!(
            steps.iter().all(|s| s.ratio() <= 1.0),
            "adaptive governor steps must be at or below nominal"
        );
        assert!(hysteresis >= 1, "hysteresis must be at least 1");
        assert!(
            typical_task_seconds > 0.0,
            "typical task time must be positive"
        );
        let race_rung = steps
            .iter()
            .map(|step| {
                Self::race_watts(step, model, &sleep, typical_task_seconds)
                    < Self::stretch_watts(step, model)
            })
            .collect();
        AdaptiveGovernor {
            steps,
            race_rung,
            hysteresis,
            domains: (0..ADAPTIVE_DOMAIN_SLOTS)
                .map(|_| CachePadded::new(DomainState::new(hysteresis)))
                .collect(),
        }
    }

    /// [`AdaptiveGovernor::new`] over an evenly spaced ladder, with a
    /// hysteresis of 4 dispatches and 1 ms typical tasks.
    pub fn with_ladder(model: &PowerModel, sleep: SleepState, steps: usize, floor: f64) -> Self {
        AdaptiveGovernor::new(model, sleep, FrequencyScale::ladder(steps, floor), 4, 1e-3)
    }

    /// Modelled watts per second of *nominal* busy time when the work is
    /// stretched over `step`: `dynamic_energy_factor · active watts` (the
    /// core is busy for the whole stretched window, so it contributes no
    /// idle term).
    fn stretch_watts(step: &FrequencyScale, model: &PowerModel) -> f64 {
        step.dynamic_energy_factor() * model.active_watts_per_core
    }

    /// Modelled watts per second of nominal busy time when the work races
    /// and sleeps the slack against `step`: nominal active watts, plus the
    /// slack priced at sleep power net of the gated static share, plus the
    /// wake cost amortised over a typical task.
    fn race_watts(
        step: &FrequencyScale,
        model: &PowerModel,
        sleep: &SleepState,
        typical_task_seconds: f64,
    ) -> f64 {
        let slack = step.time_dilation() - 1.0;
        // Net draw per slack second: sleep power minus the static power the
        // state gates off. Negative when gating outweighs residency draw —
        // the static-heavy regime where racing deeper rungs saves *more*.
        // Same terms [`EnergyReport::reading`] prices residency with.
        let slack_watts =
            sleep.watts_per_core - sleep.static_fraction_saved * model.static_watts_per_core();
        model.active_watts_per_core
            + slack * slack_watts
            + sleep.wake_joules(model) / typical_task_seconds
    }

    /// Whether the governor would race (rather than stretch) work landing on
    /// rung `index` of its ladder. Exposed for conformance tests and
    /// benchmarks.
    pub fn prefers_race(&self, index: usize) -> bool {
        self.race_rung.get(index).copied().unwrap_or(false)
    }

    /// The governor's frequency ladder.
    pub fn steps(&self) -> &[FrequencyScale] {
        &self.steps
    }

    /// The configured hysteresis depth.
    pub fn hysteresis(&self) -> u32 {
        self.hysteresis
    }

    fn domain(&self, worker: usize) -> &DomainState {
        &self.domains[worker % ADAPTIVE_DOMAIN_SLOTS]
    }

    /// Run `desired` through the worker's hysteresis filter: once the
    /// domain re-targets it must serve at least `hysteresis` dispatches at
    /// that step before it may re-target again (a minimum residency — the
    /// rate limit that bounds transitions under oscillating inputs).
    fn filtered(&self, worker: usize, desired: DispatchDecision) -> DispatchDecision {
        let domain = self.domain(worker);
        let current_bits = domain.ratio_bits.load(Ordering::Relaxed);
        let desired_bits = desired.scale().ratio().to_bits();
        let since = domain
            .since_switch
            .load(Ordering::Relaxed)
            .saturating_add(1);
        if desired_bits == current_bits {
            domain.since_switch.store(since, Ordering::Relaxed);
            return desired;
        }
        if since >= self.hysteresis {
            domain.ratio_bits.store(desired_bits, Ordering::Relaxed);
            domain.exponent_bits.store(
                desired.scale().power_exponent().to_bits(),
                Ordering::Relaxed,
            );
            domain.since_switch.store(0, Ordering::Relaxed);
            return desired;
        }
        domain.since_switch.store(since, Ordering::Relaxed);
        // Hold the domain at its current step (same ratio *and* exponent, so
        // held dispatches price dynamic energy exactly like the step they
        // hold).
        DispatchDecision::stretch(FrequencyScale::with_exponent(
            f64::from_bits(current_bits),
            f64::from_bits(domain.exponent_bits.load(Ordering::Relaxed)),
        ))
    }
}

impl std::fmt::Debug for AdaptiveGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveGovernor")
            .field("steps", &self.steps.len())
            .field("race_rung", &self.race_rung)
            .field("hysteresis", &self.hysteresis)
            .finish()
    }
}

impl Governor for AdaptiveGovernor {
    /// Stateless preview of the step the governor targets for `ctx`,
    /// ignoring hysteresis (race rungs preview as nominal — that is where
    /// they execute). Only [`AdaptiveGovernor::decide`] commits hysteresis
    /// state; calling this does not advance any domain.
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale {
        if ctx.accurate {
            return FrequencyScale::nominal();
        }
        let rung = ladder_rung(&self.steps, ctx.significance);
        if self.race_rung[rung] {
            FrequencyScale::nominal()
        } else {
            self.steps[rung]
        }
    }

    fn decide(&self, ctx: &DispatchContext) -> DispatchDecision {
        if ctx.accurate {
            // Critical/accurate work always executes at nominal, bypassing
            // hysteresis (a held lower step would scale a critical task).
            return DispatchDecision::nominal();
        }
        let rung = ladder_rung(&self.steps, ctx.significance);
        let reference = self.steps[rung];
        if self.race_rung[rung] && !reference.is_nominal() {
            // Racing executes at nominal: that is a domain change like any
            // other, so it goes through the same hysteresis filter.
            let filtered = self.filtered(ctx.worker, DispatchDecision::race(reference));
            return filtered;
        }
        self.filtered(ctx.worker, DispatchDecision::stretch(reference))
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// A governor wrapper enforcing an externally re-targetable frequency cap —
/// the per-node dispatch hook a cluster-level power-cap controller drives.
///
/// The wrapped governor makes its decision as usual; if the decision would
/// *execute* above the cap it is clamped (see [`DispatchDecision::clamp_to`]).
/// Two properties are load-bearing for the conformance invariants:
///
/// * **accurate dispatches are never clamped** — critical work runs wherever
///   the inner governor puts it (nominal, for every governor in this
///   workspace); the cap only restricts approximate work, so "critical is
///   never scaled" survives arbitrary cap pressure;
/// * the clamp happens **inside** the governor, before the environment's
///   domain bookkeeping — transition counts and domain ratios stay coherent
///   with what actually executes.
///
/// `set_cap` is lock-free (a single atomic store of the ratio bits), so a
/// controller may re-target caps from outside the dispatch path.
pub struct FrequencyCapGovernor {
    inner: Arc<dyn Governor>,
    cap_bits: AtomicU64,
}

impl FrequencyCapGovernor {
    /// Wrap `inner` with no cap engaged (ratio 1.0).
    pub fn new(inner: Arc<dyn Governor>) -> Self {
        FrequencyCapGovernor {
            inner,
            cap_bits: AtomicU64::new(1.0f64.to_bits()),
        }
    }

    /// Wrap `inner` with an initial cap ratio.
    pub fn with_cap(inner: Arc<dyn Governor>, cap: f64) -> Self {
        let governor = FrequencyCapGovernor::new(inner);
        governor.set_cap(cap);
        governor
    }

    /// Re-target the cap ratio, in `(0, 1]` (1.0 disengages the cap).
    pub fn set_cap(&self, cap: f64) {
        assert!(
            cap > 0.0 && cap <= 1.0,
            "frequency cap ratio must be in (0, 1], got {cap}"
        );
        self.cap_bits.store(cap.to_bits(), Ordering::Relaxed);
    }

    /// The current cap ratio.
    pub fn cap(&self) -> f64 {
        f64::from_bits(self.cap_bits.load(Ordering::Relaxed))
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &Arc<dyn Governor> {
        &self.inner
    }
}

impl std::fmt::Debug for FrequencyCapGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrequencyCapGovernor")
            .field("inner", &self.inner.name())
            .field("cap", &self.cap())
            .finish()
    }
}

impl Governor for FrequencyCapGovernor {
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale {
        self.decide(ctx).scale()
    }

    fn decide(&self, ctx: &DispatchContext) -> DispatchDecision {
        let decision = self.inner.decide(ctx);
        if ctx.accurate {
            return decision;
        }
        let cap = self.cap();
        if cap >= 1.0 {
            return decision;
        }
        // Clamp on the same exponent family the inner decision priced with,
        // so held/clamped dispatches stay on one dynamic-energy curve.
        decision.clamp_to(FrequencyScale::with_exponent(
            cap,
            decision.scale().power_exponent(),
        ))
    }

    fn name(&self) -> &'static str {
        "frequency-cap"
    }
}

/// Consistent fold of every shard's counters — the cheap snapshot a polling
/// controller (the cluster power-cap loop) reads every tick without building
/// a full [`EnergyReport`] (no allocation, no `String`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnvTotals {
    /// Measured busy nanoseconds across workers.
    pub busy_nanos: u64,
    /// Modelled (dilated) busy nanoseconds across workers.
    pub modelled_busy_nanos: u64,
    /// Modelled busy nanoseconds spent in accurate bodies.
    pub accurate_busy_nanos: u64,
    /// Modelled dynamic energy in nanojoules.
    pub dynamic_nanojoules: u64,
    /// Tasks dispatched below nominal frequency.
    pub scaled_tasks: u64,
    /// Frequency-domain switches.
    pub frequency_transitions: u64,
}

const MODES: usize = 3;

fn mode_index(mode: ExecutionMode) -> usize {
    match mode {
        ExecutionMode::Accurate => 0,
        ExecutionMode::Approximate => 1,
        ExecutionMode::Dropped => 2,
    }
}

/// One worker's frequency domain and energy counters.
struct EnvShard {
    /// Seqlock: odd while the owning worker is mid-record. Readers retry, so
    /// a report never pairs this task's busy time with the previous task's
    /// joules.
    seq: AtomicU64,
    /// Measured busy nanoseconds (wall-clock spent in task bodies).
    real_busy_nanos: AtomicU64,
    /// Modelled busy nanoseconds (measured × time dilation), per mode.
    modelled_busy_nanos: [AtomicU64; MODES],
    /// Modelled dynamic energy in nanojoules.
    dynamic_nanojoules: AtomicU64,
    /// Modelled deep-sleep residency earned by race-to-idle dispatches, in
    /// nanoseconds.
    sleep_nanos: AtomicU64,
    /// Sleep entries (each charges one wake transition).
    sleep_entries: AtomicU64,
    /// Tasks dispatched below nominal frequency.
    scaled_tasks: AtomicU64,
    /// Frequency-domain switches (each charges the configured
    /// [`TransitionCost`]).
    transitions: AtomicU64,
    /// Current frequency ratio of this worker's domain, as `f64` bits.
    domain_bits: AtomicU64,
    /// Cache of the last non-nominal `(ratio bits, active watts bits)` so
    /// the `powf` in the power model runs per frequency change, not per task.
    cached_ratio_bits: AtomicU64,
    cached_watts_bits: AtomicU64,
}

impl EnvShard {
    fn new() -> Self {
        EnvShard {
            seq: AtomicU64::new(0),
            real_busy_nanos: AtomicU64::new(0),
            modelled_busy_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            dynamic_nanojoules: AtomicU64::new(0),
            sleep_nanos: AtomicU64::new(0),
            sleep_entries: AtomicU64::new(0),
            scaled_tasks: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            domain_bits: AtomicU64::new(1.0f64.to_bits()),
            cached_ratio_bits: AtomicU64::new(1.0f64.to_bits()),
            cached_watts_bits: AtomicU64::new(0),
        }
    }
}

/// Consistent field snapshot of one shard (see [`EnvShard::seq`]).
struct ShardSnapshot {
    real_busy_nanos: u64,
    modelled_busy_nanos: [u64; MODES],
    dynamic_nanojoules: u64,
    sleep_nanos: u64,
    sleep_entries: u64,
    scaled_tasks: u64,
    transitions: u64,
    domain_bits: u64,
}

/// The runtime's execution environment: power model, governor, transition
/// and sleep models, and the per-worker frequency/energy shards.
///
/// Public so governor implementations can be driven **standalone** — the
/// governor conformance kit (`tests/governor_conformance.rs`) scripts
/// dispatch/record sequences with synthetic durations against an
/// `ExecutionEnv` and checks the shared invariants deterministically,
/// without a live scheduler underneath.
pub struct ExecutionEnv {
    model: PowerModel,
    governor: Arc<dyn Governor>,
    /// `true` iff the governor always answers nominal — lets dispatch skip
    /// the virtual call and all domain bookkeeping.
    passthrough: bool,
    nominal_watts: f64,
    sleep: Option<SleepState>,
    transition_cost: TransitionCost,
    /// Re-targetable budget frequency cap (ratio as `f64` bits; 1.0 =
    /// disengaged). Unlike [`FrequencyCapGovernor`] this lives in the
    /// environment itself, so an energy-budget controller can throttle
    /// approximate work under **any** configured governor — including the
    /// passthrough fast path — without re-wrapping it.
    budget_cap_bits: AtomicU64,
    shards: Box<[CachePadded<EnvShard>]>,
}

impl ExecutionEnv {
    /// `shards` should be the worker count: dispatch/record only ever run on
    /// worker threads (the spawn path never executes bodies), and each
    /// shard's counters assume a **single writer** — its owning worker.
    /// Out-of-range worker indices panic: silently clamping would let two
    /// writers share the last shard, and a second writer breaks the
    /// single-writer seqlock (two entries leave the sequence even while
    /// both are mid-record, so a concurrent report could accept a torn
    /// snapshot).
    ///
    /// `sleep` is the state race-to-idle residency is priced at (`None`
    /// prices residency like ordinary shallow idle, with no static gating
    /// and free wakeups); `transition_cost` is charged per frequency-domain
    /// switch.
    pub fn new(
        model: PowerModel,
        governor: Arc<dyn Governor>,
        sleep: Option<SleepState>,
        transition_cost: TransitionCost,
        shards: usize,
    ) -> Self {
        ExecutionEnv {
            nominal_watts: model.active_watts_per_core,
            passthrough: governor.is_passthrough(),
            model,
            governor,
            sleep,
            transition_cost,
            budget_cap_bits: AtomicU64::new(1.0f64.to_bits()),
            shards: (0..shards.max(1))
                .map(|_| CachePadded::new(EnvShard::new()))
                .collect(),
        }
    }

    fn shard(&self, worker: usize) -> &EnvShard {
        assert!(
            worker < self.shards.len(),
            "worker index {worker} out of range for {} shards (each shard is single-writer: \
             sharing one would break its snapshot seqlock)",
            self.shards.len()
        );
        &self.shards[worker]
    }

    /// Re-target the budget frequency cap for approximate dispatches, in
    /// `(0, 1]` (1.0 disengages the cap and restores the exact unbudgeted
    /// dispatch path). Lock-free: a single atomic store, so an energy-budget
    /// controller re-targets from outside the dispatch path.
    pub fn set_dispatch_cap(&self, cap: f64) {
        assert!(
            cap > 0.0 && cap <= 1.0,
            "dispatch cap ratio must be in (0, 1], got {cap}"
        );
        self.budget_cap_bits.store(cap.to_bits(), Ordering::Relaxed);
    }

    /// The current budget frequency cap (1.0 when disengaged).
    pub fn dispatch_cap(&self) -> f64 {
        f64::from_bits(self.budget_cap_bits.load(Ordering::Relaxed))
    }

    /// Choose the energy strategy for a task about to execute on `worker`
    /// and update the worker's frequency domain. Lock-free; one relaxed
    /// load/store pair when the frequency is unchanged.
    pub fn dispatch(&self, worker: usize, ctx: &DispatchContext) -> DispatchDecision {
        let cap = self.dispatch_cap();
        if self.passthrough && cap >= 1.0 {
            return DispatchDecision::nominal();
        }
        let decision = if ctx.deadline_pressure {
            // Deadline-endangered tasks race to nominal regardless of the
            // governor: meeting the deadline dominates the energy policy.
            DispatchDecision::nominal()
        } else {
            let decision = if self.passthrough {
                DispatchDecision::nominal()
            } else {
                self.governor.decide(ctx)
            };
            if cap < 1.0 && !ctx.accurate {
                // The budget cap mirrors FrequencyCapGovernor's two
                // load-bearing properties: accurate work is never clamped,
                // and the clamp lands before domain bookkeeping.
                decision.clamp_to(FrequencyScale::with_exponent(
                    cap,
                    decision.scale().power_exponent(),
                ))
            } else {
                decision
            }
        };
        let shard = self.shard(worker);
        let bits = decision.scale().ratio().to_bits();
        if shard.domain_bits.load(Ordering::Relaxed) != bits {
            shard.domain_bits.store(bits, Ordering::Relaxed);
            shard.transitions.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    /// Active watts at `scale`, served from the shard-local cache (single
    /// writer: the owning worker).
    fn scaled_watts(&self, shard: &EnvShard, scale: FrequencyScale) -> f64 {
        let bits = scale.ratio().to_bits();
        if shard.cached_ratio_bits.load(Ordering::Relaxed) == bits {
            let cached = shard.cached_watts_bits.load(Ordering::Relaxed);
            if cached != 0 {
                return f64::from_bits(cached);
            }
        }
        let watts = scale.scaled_active_watts(&self.model);
        shard.cached_ratio_bits.store(bits, Ordering::Relaxed);
        shard
            .cached_watts_bits
            .store(watts.to_bits(), Ordering::Relaxed);
        watts
    }

    /// Account one executed task: `busy` measured wall-time in the body,
    /// dilated and priced at the strategy chosen at dispatch. Must be called
    /// from the shard's owning worker (single-writer seqlock).
    pub fn record(
        &self,
        worker: usize,
        mode: ExecutionMode,
        busy: Duration,
        decision: DispatchDecision,
    ) {
        let shard = self.shard(worker);
        let real_nanos = busy.as_nanos().min(u64::MAX as u128) as u64;
        let scale = decision.scale();
        let (modelled_nanos, joules) = if scale.is_nominal() {
            (real_nanos, real_nanos as f64 * 1e-9 * self.nominal_watts)
        } else {
            let modelled = (real_nanos as f64 * scale.time_dilation()) as u64;
            let watts = self.scaled_watts(shard, scale);
            (modelled, modelled as f64 * 1e-9 * watts)
        };
        let sleep_nanos = (real_nanos as f64 * decision.slack_factor()) as u64;

        // Seqlock write section: readers observing an odd sequence (or a
        // sequence that moved) retry, so all counters below land atomically
        // from a report's point of view.
        let seq = shard.seq.load(Ordering::Relaxed);
        shard.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);

        shard
            .real_busy_nanos
            .fetch_add(real_nanos, Ordering::Relaxed);
        shard.modelled_busy_nanos[mode_index(mode)].fetch_add(modelled_nanos, Ordering::Relaxed);
        shard
            .dynamic_nanojoules
            .fetch_add((joules * 1e9) as u64, Ordering::Relaxed);
        if !scale.is_nominal() {
            shard.scaled_tasks.fetch_add(1, Ordering::Relaxed);
        }
        if sleep_nanos > 0 {
            shard.sleep_nanos.fetch_add(sleep_nanos, Ordering::Relaxed);
            shard.sleep_entries.fetch_add(1, Ordering::Relaxed);
        }

        shard.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Read one shard's counters consistently: retry while the owning
    /// worker is inside a record.
    fn snapshot(shard: &EnvShard) -> ShardSnapshot {
        loop {
            let before = shard.seq.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snapshot = ShardSnapshot {
                real_busy_nanos: shard.real_busy_nanos.load(Ordering::Relaxed),
                modelled_busy_nanos: std::array::from_fn(|m| {
                    shard.modelled_busy_nanos[m].load(Ordering::Relaxed)
                }),
                dynamic_nanojoules: shard.dynamic_nanojoules.load(Ordering::Relaxed),
                sleep_nanos: shard.sleep_nanos.load(Ordering::Relaxed),
                sleep_entries: shard.sleep_entries.load(Ordering::Relaxed),
                scaled_tasks: shard.scaled_tasks.load(Ordering::Relaxed),
                transitions: shard.transitions.load(Ordering::Relaxed),
                domain_bits: shard.domain_bits.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            if shard.seq.load(Ordering::Relaxed) == before {
                return snapshot;
            }
        }
    }

    /// The power model the environment prices energy with.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Fold the shards into an [`EnvTotals`] snapshot (each shard read
    /// consistently through its seqlock).
    pub fn totals(&self) -> EnvTotals {
        let mut totals = EnvTotals::default();
        for shard in self.shards.iter() {
            let snap = Self::snapshot(shard);
            totals.busy_nanos += snap.real_busy_nanos;
            totals.modelled_busy_nanos += snap.modelled_busy_nanos.iter().sum::<u64>();
            totals.accurate_busy_nanos += snap.modelled_busy_nanos[0];
            totals.dynamic_nanojoules += snap.dynamic_nanojoules;
            totals.scaled_tasks += snap.scaled_tasks;
            totals.frequency_transitions += snap.transitions;
        }
        totals
    }

    /// Fold the shards into an immutable report. `wall_seconds` is the
    /// measured makespan; `workers` the worker-thread count the dilation is
    /// spread over.
    pub fn report(&self, wall_seconds: f64, workers: usize) -> EnergyReport {
        let per_worker: Vec<WorkerEnergy> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let snap = Self::snapshot(shard);
                let modelled: [f64; MODES] =
                    std::array::from_fn(|m| snap.modelled_busy_nanos[m] as f64 * 1e-9);
                WorkerEnergy {
                    worker: index,
                    busy_seconds: snap.real_busy_nanos as f64 * 1e-9,
                    modelled_busy_seconds: modelled.iter().sum(),
                    accurate_busy_seconds: modelled[0],
                    approximate_busy_seconds: modelled[1],
                    dynamic_joules: snap.dynamic_nanojoules as f64 * 1e-9,
                    sleep_seconds: snap.sleep_nanos as f64 * 1e-9,
                    sleep_entries: snap.sleep_entries,
                    scaled_tasks: snap.scaled_tasks,
                    frequency_transitions: snap.transitions,
                    frequency_ratio: f64::from_bits(snap.domain_bits),
                }
            })
            .collect();
        EnergyReport {
            model: self.model,
            governor: self.governor.name().to_string(),
            sleep_state: self.sleep,
            transition_cost: self.transition_cost,
            wall_seconds,
            worker_count: workers.max(1),
            workers: per_worker,
        }
    }
}

impl std::fmt::Debug for ExecutionEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionEnv")
            .field("governor", &self.governor.name())
            .field("shards", &self.shards.len())
            .field("sleep", &self.sleep)
            .field("transition_cost", &self.transition_cost)
            .finish()
    }
}

/// One worker's contribution to an [`EnergyReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerEnergy {
    /// Worker index.
    pub worker: usize,
    /// Measured wall-clock seconds spent executing task bodies.
    pub busy_seconds: f64,
    /// Busy seconds after DVFS time dilation (equals `busy_seconds` for
    /// tasks dispatched at nominal frequency).
    pub modelled_busy_seconds: f64,
    /// Modelled busy seconds spent in accurate bodies.
    pub accurate_busy_seconds: f64,
    /// Modelled busy seconds spent in approximate bodies.
    pub approximate_busy_seconds: f64,
    /// Modelled dynamic (active-core) energy in joules.
    pub dynamic_joules: f64,
    /// Modelled deep-sleep residency earned by race-to-idle dispatches.
    pub sleep_seconds: f64,
    /// Number of sleep entries (wake transitions charged).
    pub sleep_entries: u64,
    /// Tasks dispatched below nominal frequency.
    pub scaled_tasks: u64,
    /// Number of frequency-domain switches.
    pub frequency_transitions: u64,
    /// Current frequency ratio of the worker's domain.
    pub frequency_ratio: f64,
}

/// Immutable snapshot of the runtime's energy accounting, built from the
/// per-worker shards by [`crate::Runtime::energy_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// The power model the dynamic joules were priced with.
    pub model: PowerModel,
    /// Name of the governor that made the frequency decisions.
    pub governor: String,
    /// Sleep state race-to-idle residency is priced at (`None`: residency
    /// is priced like ordinary idle).
    pub sleep_state: Option<SleepState>,
    /// Cost charged per frequency-domain switch.
    pub transition_cost: TransitionCost,
    /// Measured wall-clock seconds since the runtime started.
    pub wall_seconds: f64,
    /// Worker threads the dilation is assumed to spread over.
    pub worker_count: usize,
    /// Per-worker accounting shards, one per worker thread.
    pub workers: Vec<WorkerEnergy>,
}

impl EnergyReport {
    /// Total measured busy core-seconds across workers.
    pub fn busy_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_seconds).sum()
    }

    /// Total modelled (dilated) busy core-seconds across workers.
    pub fn modelled_busy_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.modelled_busy_seconds).sum()
    }

    /// Total modelled dynamic energy in joules.
    pub fn dynamic_joules(&self) -> f64 {
        self.workers.iter().map(|w| w.dynamic_joules).sum()
    }

    /// Total tasks dispatched below nominal frequency.
    pub fn scaled_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.scaled_tasks).sum()
    }

    /// Total modelled deep-sleep residency across workers, in core-seconds.
    pub fn sleep_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.sleep_seconds).sum()
    }

    /// Total sleep entries (wake transitions charged) across workers.
    pub fn sleep_entries(&self) -> u64 {
        self.workers.iter().map(|w| w.sleep_entries).sum()
    }

    /// Total frequency-domain switches across workers.
    pub fn frequency_transitions(&self) -> u64 {
        self.workers.iter().map(|w| w.frequency_transitions).sum()
    }

    /// Wall-clock stall charged for frequency switches:
    /// `switches × transition latency` (in core-seconds, spread over the
    /// workers by [`EnergyReport::modelled_wall_seconds`]).
    pub fn transition_stall_seconds(&self) -> f64 {
        self.frequency_transitions() as f64 * self.transition_cost.latency_seconds
    }

    /// Energy charged for state transitions: DVFS switches at the configured
    /// [`TransitionCost`] plus sleep wakeups priced at nominal active power.
    pub fn transition_joules(&self) -> f64 {
        let switches = self.frequency_transitions() as f64 * self.transition_cost.energy_joules;
        let wakes = match &self.sleep_state {
            Some(sleep) => self.sleep_entries() as f64 * sleep.wake_joules(&self.model),
            None => 0.0,
        };
        switches + wakes
    }

    /// The makespan the model integrates static power over: the measured
    /// wall time plus the DVFS dilation, the banked sleep residency and the
    /// transition stalls, assumed load-balanced across the workers. Never
    /// smaller than the measured wall time.
    ///
    /// Stretch and race thereby price static power over the **same**
    /// deadline for the same work — the classic framing of the
    /// race-to-idle trade-off.
    pub fn modelled_wall_seconds(&self) -> f64 {
        let dilation = (self.modelled_busy_seconds() - self.busy_seconds()).max(0.0);
        let extra = dilation + self.sleep_seconds() + self.transition_stall_seconds();
        self.wall_seconds + extra / self.worker_count as f64
    }

    /// Collapse the report into the workspace-wide [`EnergyReading`] type:
    /// dynamic joules from the per-task accounting; static and idle joules
    /// from the power model integrated over the modelled makespan, with
    /// sleep residency priced at the configured [`SleepState`] (gating its
    /// share of socket static power); transition joules from DVFS switches
    /// and wakeups.
    pub fn reading(&self) -> EnergyReading {
        let wall = self.modelled_wall_seconds();
        let busy = self.modelled_busy_seconds();
        let capacity = self.model.total_cores() as f64 * wall;
        let clamped_busy = busy.min(capacity);
        let sleep = self.sleep_seconds().min(capacity - clamped_busy);
        let base = self.model.energy_breakdown(wall, clamped_busy);
        let (sleep_watts, static_saved_watts) = match &self.sleep_state {
            Some(state) => (
                state.watts_per_core,
                state.static_fraction_saved * self.model.static_watts_per_core(),
            ),
            // Without a sleep state, residency is ordinary idle.
            None => (self.model.idle_watts_per_core, 0.0),
        };
        let breakdown = EnergyBreakdown {
            static_joules: (base.static_joules - sleep * static_saved_watts).max(0.0),
            dynamic_joules: self.dynamic_joules(),
            // The base idle term priced ALL non-busy capacity at idle watts;
            // re-price the sleeping share at the sleep state's power.
            idle_joules: (base.idle_joules
                - sleep * (self.model.idle_watts_per_core - sleep_watts))
                .max(0.0),
            transition_joules: self.transition_joules(),
        };
        EnergyReading::from_breakdown(wall, clamped_busy, breakdown)
    }

    /// Total modelled joules divided by a unit-of-work count — the serving
    /// metric "joules per completed request". `f64::INFINITY` when nothing
    /// completed: energy was spent, no work was delivered.
    pub fn joules_per(&self, completed: usize) -> f64 {
        let joules = self.reading().joules;
        if completed == 0 {
            if joules == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            joules / completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(significance: f64, accurate: bool) -> DispatchContext {
        ctx_on(0, significance, accurate)
    }

    fn ctx_on(worker: usize, significance: f64, accurate: bool) -> DispatchContext {
        DispatchContext {
            worker,
            significance: Significance::new(significance),
            accurate,
            policy: Policy::GtbMaxBuffer,
            group_ratio: 0.5,
            deadline_pressure: false,
        }
    }

    fn env(governor: Arc<dyn Governor>) -> ExecutionEnv {
        ExecutionEnv::new(
            PowerModel::for_host(),
            governor,
            None,
            TransitionCost::free(),
            3,
        )
    }

    #[test]
    fn deadline_pressure_overrides_scaling_governor() {
        let e = env(Arc::new(ApproxGovernor::new(0.5)));
        let mut pressured = ctx(0.2, false);
        pressured.deadline_pressure = true;
        let decision = e.dispatch(0, &pressured);
        assert!(decision.scale().is_nominal());
        assert!(!decision.is_race());
        // The same context without pressure is scaled.
        assert!(!e.dispatch(0, &ctx(0.2, false)).scale().is_nominal());
    }

    #[test]
    fn nominal_governor_is_passthrough() {
        let e = env(Arc::new(NominalGovernor));
        let decision = e.dispatch(0, &ctx(0.2, false));
        assert!(decision.scale().is_nominal());
        assert!(!decision.is_race());
        let report = e.report(1.0, 2);
        assert_eq!(report.scaled_tasks(), 0);
        assert_eq!(report.governor, "nominal");
    }

    #[test]
    fn approx_governor_scales_only_approximate_tasks() {
        let g = ApproxGovernor::new(0.5);
        assert!(g.frequency_for(&ctx(0.9, true)).is_nominal());
        assert_eq!(g.frequency_for(&ctx(0.9, false)).ratio(), 0.5);
        assert_eq!(g.approximate_scale().ratio(), 0.5);
    }

    #[test]
    fn ladder_governor_descends_with_significance() {
        let g = SignificanceLadderGovernor::with_ladder(5, 0.5);
        assert!(g.frequency_for(&ctx(0.3, true)).is_nominal());
        let high = g.frequency_for(&ctx(0.9, false)).ratio();
        let low = g.frequency_for(&ctx(0.1, false)).ratio();
        assert!(high > low, "high-significance {high} vs low {low}");
        assert_eq!(g.frequency_for(&ctx(0.0, false)).ratio(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_ladder_rejected() {
        SignificanceLadderGovernor::new(Vec::new());
    }

    #[test]
    fn race_governor_always_executes_at_nominal() {
        let g = RaceToIdleGovernor::with_ladder(4, 0.4);
        let accurate = g.decide(&ctx(0.9, true));
        assert!(accurate.scale().is_nominal());
        assert!(!accurate.is_race());
        let approx = g.decide(&ctx(0.1, false));
        assert!(approx.scale().is_nominal());
        assert!(approx.is_race());
        // Low significance races against a deep reference rung: lots of
        // slack.
        assert!(approx.slack_factor() > 1.0);
        // Top-rung approximate work has no slack: no race, no wake charge.
        let top = g.decide(&ctx(1.0, false));
        assert!(!top.is_race());
    }

    #[test]
    #[should_panic(expected = "at or below nominal")]
    fn race_above_nominal_rejected() {
        let _ = DispatchDecision::race(FrequencyScale::new(1.2));
    }

    #[test]
    fn record_accumulates_and_dilates() {
        let e = env(Arc::new(ApproxGovernor::new(0.5)));
        let decision = e.dispatch(0, &ctx(0.2, false));
        e.record(
            0,
            ExecutionMode::Approximate,
            Duration::from_secs(1),
            decision,
        );
        let nominal = e.dispatch(1, &ctx(0.9, true));
        e.record(1, ExecutionMode::Accurate, Duration::from_secs(1), nominal);
        let report = e.report(2.0, 2);
        assert!((report.busy_seconds() - 2.0).abs() < 1e-9);
        // Worker 0 ran at half frequency: its busy second dilates to two.
        assert!((report.modelled_busy_seconds() - 3.0).abs() < 1e-6);
        assert!((report.workers[0].modelled_busy_seconds - 2.0).abs() < 1e-6);
        assert!((report.workers[0].approximate_busy_seconds - 2.0).abs() < 1e-6);
        assert_eq!(report.workers[0].scaled_tasks, 1);
        assert_eq!(report.workers[1].scaled_tasks, 0);
        // Dilation spreads over 2 workers: modelled wall grows by half the
        // extra second.
        assert!((report.modelled_wall_seconds() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn race_dispatch_banks_sleep_residency_instead_of_dilating() {
        let sleep = SleepState::deep();
        let e = ExecutionEnv::new(
            PowerModel::for_host(),
            Arc::new(RaceToIdleGovernor::new(vec![FrequencyScale::new(0.5)])),
            Some(sleep),
            TransitionCost::free(),
            2,
        );
        let decision = e.dispatch(0, &ctx(0.2, false));
        assert!(decision.is_race());
        e.record(
            0,
            ExecutionMode::Approximate,
            Duration::from_secs(1),
            decision,
        );
        let report = e.report(1.0, 2);
        // Executed at nominal: no dilation, no scaled task, no transition.
        assert!((report.modelled_busy_seconds() - 1.0).abs() < 1e-9);
        assert_eq!(report.scaled_tasks(), 0);
        assert_eq!(report.frequency_transitions(), 0);
        // Slack vs the 0.5 reference: one extra second of sleep residency,
        // spread over the 2 workers in the modelled wall.
        assert!((report.sleep_seconds() - 1.0).abs() < 1e-6);
        assert_eq!(report.sleep_entries(), 1);
        assert!((report.modelled_wall_seconds() - 1.5).abs() < 1e-6);
        // One wake is charged in the transition column.
        let wake = sleep.wake_joules(&PowerModel::for_host());
        assert!((report.transition_joules() - wake).abs() < 1e-12);
        let reading = report.reading();
        assert!((reading.breakdown.transition_joules - wake).abs() < 1e-12);
    }

    #[test]
    fn racing_into_deep_sleep_beats_plain_idle_residency() {
        let model = PowerModel {
            sockets: 1,
            cores_per_socket: 2,
            static_watts_per_socket: 20.0,
            active_watts_per_core: 4.0,
            idle_watts_per_core: 1.5,
        };
        let governor = || Arc::new(RaceToIdleGovernor::new(vec![FrequencyScale::new(0.5)]));
        let run = |sleep: Option<SleepState>| {
            let e = ExecutionEnv::new(model, governor(), sleep, TransitionCost::free(), 1);
            let d = e.dispatch(0, &ctx(0.2, false));
            e.record(0, ExecutionMode::Approximate, Duration::from_secs(1), d);
            e.report(1.0, 1).reading()
        };
        let deep = run(Some(SleepState::deep()));
        let shallow = run(None);
        // Same work, same modelled wall; the deep state gates static power
        // and sleeps below idle watts, so total energy is lower despite the
        // wake charge.
        assert!((deep.wall_seconds - shallow.wall_seconds).abs() < 1e-9);
        assert!(
            deep.joules < shallow.joules,
            "deep {} J vs shallow-idle {} J",
            deep.joules,
            shallow.joules
        );
        assert!(deep.breakdown.static_joules < shallow.breakdown.static_joules);
        assert!(deep.breakdown.idle_joules < shallow.breakdown.idle_joules);
    }

    #[test]
    fn transition_costs_extend_wall_and_charge_energy() {
        let cost = TransitionCost::new(0.25, 0.125);
        let e = ExecutionEnv::new(
            PowerModel::for_host(),
            Arc::new(ApproxGovernor::new(0.5)),
            None,
            cost,
            1,
        );
        // nominal→0.5, 0.5→nominal, nominal→0.5: three switches.
        for accurate in [false, true, false] {
            let d = e.dispatch(0, &ctx(0.2, accurate));
            e.record(0, ExecutionMode::Accurate, Duration::from_millis(10), d);
        }
        let report = e.report(1.0, 1);
        assert_eq!(report.frequency_transitions(), 3);
        assert!((report.transition_stall_seconds() - 0.75).abs() < 1e-12);
        assert!((report.transition_joules() - 0.375).abs() < 1e-12);
        // The stall extends the modelled wall.
        assert!(report.modelled_wall_seconds() > 1.74);
        let reading = report.reading();
        assert!((reading.breakdown.transition_joules - 0.375).abs() < 1e-12);
    }

    #[test]
    fn adaptive_governor_races_on_static_heavy_models() {
        // Static-heavy: huge socket static share, shallow (near-linear)
        // power exponent, deep sleep. Stretching saves almost no dynamic
        // energy; racing gates static power off.
        let static_heavy = PowerModel {
            sockets: 1,
            cores_per_socket: 4,
            static_watts_per_socket: 40.0,
            active_watts_per_core: 6.6,
            idle_watts_per_core: 2.0,
        };
        let steps: Vec<FrequencyScale> = FrequencyScale::ladder(4, 0.4)
            .into_iter()
            .map(|s| FrequencyScale::with_exponent(s.ratio(), 1.2))
            .collect();
        let g = AdaptiveGovernor::new(&static_heavy, SleepState::deep(), steps, 1, 1e-3);
        // Deep rungs must prefer racing on this model.
        assert!(g.prefers_race(3), "{g:?}");
        let d = g.decide(&ctx(0.0, false));
        assert!(d.is_race());
        assert!(d.scale().is_nominal());
    }

    #[test]
    fn adaptive_governor_stretches_on_dynamic_heavy_models() {
        // Dynamic-heavy: the default cubic-ish exponent and modest static
        // share; stretching wins on every rung.
        let dynamic_heavy = PowerModel {
            sockets: 1,
            cores_per_socket: 4,
            static_watts_per_socket: 4.0,
            active_watts_per_core: 6.6,
            idle_watts_per_core: 0.5,
        };
        let g = AdaptiveGovernor::with_ladder(&dynamic_heavy, SleepState::shallow(), 4, 0.4);
        for rung in 0..4 {
            assert!(!g.prefers_race(rung), "rung {rung} should stretch: {g:?}");
        }
        // The default hysteresis (4) holds the domain at nominal for the
        // first dissenting dispatches; a steady stream settles on the rung.
        let d = (0..4).fold(DispatchDecision::nominal(), |_, _| {
            g.decide(&ctx(0.0, false))
        });
        assert!(!d.is_race());
        assert!((d.scale().ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn adaptive_governor_never_scales_critical_tasks() {
        let g = AdaptiveGovernor::with_ladder(&PowerModel::for_host(), SleepState::deep(), 4, 0.4);
        // Prime the worker's domain onto a low step.
        for _ in 0..8 {
            let _ = g.decide(&ctx(0.0, false));
        }
        let d = g.decide(&ctx(1.0, true));
        assert!(d.scale().is_nominal());
        assert!(!d.is_race());
    }

    #[test]
    fn adaptive_hysteresis_bounds_transitions_under_oscillation() {
        let model = PowerModel {
            sockets: 1,
            cores_per_socket: 4,
            static_watts_per_socket: 4.0,
            active_watts_per_core: 6.6,
            idle_watts_per_core: 0.5,
        };
        let count_changes = |hysteresis: u32| {
            let g = AdaptiveGovernor::new(
                &model,
                SleepState::shallow(),
                FrequencyScale::ladder(4, 0.4),
                hysteresis,
                1e-3,
            );
            let mut last = f64::NAN;
            let mut changes = 0usize;
            for i in 0..120 {
                // Oscillating significance: alternate extreme rungs.
                let sig = if i % 2 == 0 { 0.95 } else { 0.05 };
                let ratio = g.decide(&ctx_on(0, sig, false)).scale().ratio();
                if ratio != last {
                    changes += 1;
                    last = ratio;
                }
            }
            changes
        };
        let thrash = count_changes(1);
        let damped = count_changes(8);
        assert!(
            thrash > 100,
            "without hysteresis the oscillation thrashes ({thrash} changes)"
        );
        assert!(
            damped <= 120 / 8 + 1,
            "hysteresis 8 must bound changes to n/8 + 1, got {damped}"
        );
    }

    #[test]
    fn clamp_to_caps_stretch_and_downgrades_race() {
        let cap = FrequencyScale::new(0.5);
        // At or below the cap: unchanged.
        let low = DispatchDecision::stretch(FrequencyScale::new(0.4));
        assert_eq!(low.clamp_to(cap), low);
        // Above the cap: pulled down to it.
        let high = DispatchDecision::stretch(FrequencyScale::new(0.8));
        assert_eq!(high.clamp_to(cap).scale().ratio(), 0.5);
        // A race executes at nominal — forbidden under the cap — and falls
        // back to slow-and-steady at its reference rung.
        let race = DispatchDecision::race(FrequencyScale::new(0.4));
        let clamped = race.clamp_to(cap);
        assert!(!clamped.is_race());
        assert_eq!(clamped.scale().ratio(), 0.4);
        // A reference above the cap is clamped too.
        let race_high = DispatchDecision::race(FrequencyScale::new(0.8));
        assert_eq!(race_high.clamp_to(cap).scale().ratio(), 0.5);
    }

    #[test]
    fn frequency_cap_governor_clamps_only_approximate_work() {
        let g =
            FrequencyCapGovernor::new(Arc::new(SignificanceLadderGovernor::with_ladder(4, 0.4)));
        // Uncapped: transparent.
        let free = g.decide(&ctx(0.1, false));
        assert!((free.scale().ratio() - 0.4).abs() < 1e-12);
        g.set_cap(0.25);
        assert_eq!(g.cap(), 0.25);
        // Approximate work is clamped to the cap...
        assert!((g.decide(&ctx(0.1, false)).scale().ratio() - 0.25).abs() < 1e-12);
        // ...accurate work is never clamped, no matter the cap.
        let accurate = g.decide(&ctx(1.0, true));
        assert!(accurate.scale().is_nominal());
        assert!(!accurate.is_race());
        // Re-targeting back to 1.0 disengages the cap.
        g.set_cap(1.0);
        assert!((g.decide(&ctx(0.1, false)).scale().ratio() - 0.4).abs() < 1e-12);
        assert_eq!(g.name(), "frequency-cap");
        assert_eq!(g.inner().name(), "significance-ladder");
    }

    #[test]
    #[should_panic(expected = "frequency cap ratio")]
    fn frequency_cap_rejects_zero() {
        FrequencyCapGovernor::new(Arc::new(NominalGovernor)).set_cap(0.0);
    }

    #[test]
    fn capped_race_governor_falls_back_to_stretching() {
        let g = FrequencyCapGovernor::with_cap(
            Arc::new(RaceToIdleGovernor::new(vec![FrequencyScale::new(0.5)])),
            0.8,
        );
        let d = g.decide(&ctx(0.2, false));
        assert!(!d.is_race(), "nominal execution is forbidden under the cap");
        assert!((d.scale().ratio() - 0.5).abs() < 1e-12, "{d:?}");
    }

    #[test]
    fn totals_fold_matches_report() {
        let e = env(Arc::new(ApproxGovernor::new(0.5)));
        let d = e.dispatch(0, &ctx(0.2, false));
        e.record(0, ExecutionMode::Approximate, Duration::from_millis(4), d);
        let nominal = e.dispatch(1, &ctx(0.9, true));
        e.record(
            1,
            ExecutionMode::Accurate,
            Duration::from_millis(2),
            nominal,
        );
        let totals = e.totals();
        let report = e.report(1.0, 3);
        assert_eq!(totals.busy_nanos, 6_000_000);
        assert_eq!(totals.modelled_busy_nanos, 10_000_000);
        assert_eq!(totals.accurate_busy_nanos, 2_000_000);
        assert_eq!(totals.scaled_tasks, report.scaled_tasks());
        assert_eq!(totals.frequency_transitions, report.frequency_transitions());
        assert!((totals.dynamic_nanojoules as f64 * 1e-9 - report.dynamic_joules()).abs() < 1e-9);
    }

    #[test]
    fn scaled_dynamic_energy_is_cheaper_per_work_unit() {
        let slow = env(Arc::new(ApproxGovernor::new(0.5)));
        let decision = slow.dispatch(0, &ctx(0.2, false));
        slow.record(
            0,
            ExecutionMode::Approximate,
            Duration::from_secs(1),
            decision,
        );
        let fast = env(Arc::new(NominalGovernor));
        fast.record(
            0,
            ExecutionMode::Accurate,
            Duration::from_secs(1),
            DispatchDecision::nominal(),
        );
        // Same measured work: the scaled run's dynamic energy must be lower
        // (dynamic_energy_factor < 1 for the default exponent).
        let e_slow = slow.report(1.0, 1).dynamic_joules();
        let e_fast = fast.report(1.0, 1).dynamic_joules();
        assert!(e_slow < e_fast, "scaled {e_slow} J vs nominal {e_fast} J");
    }

    #[test]
    fn domain_transitions_are_counted_per_change() {
        let e = env(Arc::new(ApproxGovernor::new(0.6)));
        for _ in 0..3 {
            e.dispatch(0, &ctx(0.2, false));
        }
        e.dispatch(0, &ctx(0.9, true));
        e.dispatch(0, &ctx(0.2, false));
        let report = e.report(1.0, 1);
        // nominal→0.6, 0.6→nominal, nominal→0.6: three switches.
        assert_eq!(report.workers[0].frequency_transitions, 3);
        assert_eq!(report.workers[0].frequency_ratio, 0.6);
    }

    #[test]
    fn reading_combines_static_idle_and_scaled_dynamic() {
        let model = PowerModel {
            sockets: 1,
            cores_per_socket: 2,
            static_watts_per_socket: 10.0,
            active_watts_per_core: 4.0,
            idle_watts_per_core: 1.0,
        };
        let e = ExecutionEnv::new(
            model,
            Arc::new(NominalGovernor),
            None,
            TransitionCost::free(),
            2,
        );
        e.record(
            0,
            ExecutionMode::Accurate,
            Duration::from_secs(1),
            DispatchDecision::nominal(),
        );
        let report = e.report(1.0, 2);
        let reading = report.reading();
        // static 10 + dynamic 1*4 + idle (2-1)*1 = 15 J over 1 s.
        assert!((reading.joules - 15.0).abs() < 1e-6, "{reading:?}");
        assert!((reading.breakdown.dynamic_joules - 4.0).abs() < 1e-6);
        assert!((reading.average_watts - 15.0).abs() < 1e-6);
        assert_eq!(reading.breakdown.transition_joules, 0.0);
    }

    /// Satellite regression: a report sampled while a worker is mid-record
    /// must never observe a half-applied record — dilated busy time and
    /// dynamic nanojoules always move together (same seqlock epoch).
    #[test]
    fn report_sampled_during_execution_is_consistent() {
        use std::sync::atomic::AtomicBool;

        let model = PowerModel {
            sockets: 1,
            cores_per_socket: 2,
            static_watts_per_socket: 10.0,
            active_watts_per_core: 4.0,
            idle_watts_per_core: 1.0,
        };
        // Linear power exponent: scaled watts are exactly 4.0 · 0.5 = 2.0,
        // so every record adds bit-exact integer nanojoules and the
        // assertions below tolerate no rounding slack a torn read could
        // hide in.
        let step = FrequencyScale::with_exponent(0.5, 1.0);
        let e = Arc::new(ExecutionEnv::new(
            model,
            Arc::new(SignificanceLadderGovernor::new(vec![step])),
            None,
            TransitionCost::free(),
            1,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let e = e.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let decision = e.dispatch(0, &ctx(0.2, false));
                assert_eq!(decision.scale().ratio(), 0.5);
                while !stop.load(Ordering::Relaxed) {
                    // Every record adds exactly 1 µs real, 2 µs modelled and
                    // 2 µs × scaled watts of dynamic energy.
                    e.record(
                        0,
                        ExecutionMode::Approximate,
                        Duration::from_micros(1),
                        decision,
                    );
                }
            })
        };
        let watts = step.scaled_active_watts(&model);
        for _ in 0..20_000 {
            let w = &e.report(1.0, 1).workers[0];
            // Consistent snapshot: the modelled time is exactly twice the
            // real time, and the dynamic energy prices exactly the modelled
            // time — in every sample, including mid-execution ones.
            assert!(
                (w.modelled_busy_seconds - 2.0 * w.busy_seconds).abs() < 1e-12,
                "torn busy snapshot: real {} vs modelled {}",
                w.busy_seconds,
                w.modelled_busy_seconds
            );
            assert!(
                (w.dynamic_joules - w.modelled_busy_seconds * watts).abs() < 1e-9,
                "torn energy snapshot: {} J for {} modelled seconds",
                w.dynamic_joules,
                w.modelled_busy_seconds
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}

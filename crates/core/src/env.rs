//! Execution environment: per-worker DVFS frequency domains and energy
//! accounting.
//!
//! Section 6 of the paper names "DVFS in conjunction with suitable runtime
//! policies for executing approximate (and more light-weight) task versions
//! on the slower but also less power-hungry CPUs" as the natural next step
//! for significance-aware execution. This module is that step, in modelled
//! form: every worker owns a **frequency domain** (a
//! [`FrequencyScale`]) and an energy-accounting shard, and a pluggable
//! [`Governor`] maps each task's significance/policy decision to a frequency
//! step at dispatch time. Approximate tasks can thus execute under a lower
//! modelled frequency; their measured runtime is dilated and their dynamic
//! energy scaled through the `P ∝ f·V²` model of
//! [`FrequencyScale::apply`].
//!
//! # Hot-path discipline
//!
//! Executing a ready task must stay **mutex-free**, so all accounting here is
//! per-worker atomics on worker-private cache lines ([`CachePadded`]), folded
//! only when [`EnergyReport`] is built. The governor itself is an immutable
//! `Arc<dyn Governor>`; the default [`NominalGovernor`] short-circuits before
//! the virtual call. Scaled dispatches cache the last
//! `(frequency ratio → active watts)` pair per worker so the `powf` of the
//! power model is paid once per frequency *change*, not once per task.
//!
//! # Accounting model
//!
//! Per executed task the environment records the measured busy time, the
//! *modelled* busy time (measured × time dilation of the chosen frequency)
//! and the modelled dynamic energy (modelled busy × frequency-scaled active
//! watts). [`EnergyReport::reading`] combines these with the static and idle
//! terms of the [`PowerModel`], integrating them over a modelled makespan
//! that assumes the dilation is load-balanced across workers:
//! `wall + (modelled busy − measured busy) / workers`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sig_energy::{EnergyBreakdown, EnergyReading, FrequencyScale, PowerModel};

use crate::policy::Policy;
use crate::significance::Significance;
use crate::sync::CachePadded;
use crate::task::ExecutionMode;

/// Everything a [`Governor`] may consult when choosing the frequency step
/// for a task that is about to execute.
#[derive(Debug, Clone, Copy)]
pub struct DispatchContext {
    /// The task's significance.
    pub significance: Significance,
    /// The accuracy decision the policy made for this task: `true` means the
    /// accurate body will run, `false` means the approximate body (or a drop,
    /// if the task has no `approxfun`).
    pub accurate: bool,
    /// The runtime's execution policy.
    pub policy: Policy,
    /// The current accurate-task ratio of the task's group.
    pub group_ratio: f64,
}

/// Maps a task's significance/policy decision to a frequency step at
/// dispatch time.
///
/// Implementations must be cheap and side-effect free: the method is called
/// on the worker hot path, once per executed task.
pub trait Governor: Send + Sync {
    /// The frequency the dispatched task should (modelled-)execute at.
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale;

    /// Short name used in reports.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Whether this governor always answers nominal frequency. The
    /// environment uses this to skip dispatch bookkeeping entirely.
    fn is_passthrough(&self) -> bool {
        false
    }
}

/// The default governor: every task runs at nominal frequency. Equivalent to
/// the pre-DVFS runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct NominalGovernor;

impl Governor for NominalGovernor {
    fn frequency_for(&self, _ctx: &DispatchContext) -> FrequencyScale {
        FrequencyScale::nominal()
    }

    fn name(&self) -> &'static str {
        "nominal"
    }

    fn is_passthrough(&self) -> bool {
        true
    }
}

/// Two-rail governor: accurate tasks at nominal frequency, approximate (and
/// dropped) tasks at one fixed lower step — the paper's future-work scenario
/// in its simplest form.
#[derive(Debug, Clone, Copy)]
pub struct ApproxGovernor {
    approximate: FrequencyScale,
}

impl ApproxGovernor {
    /// Run approximate tasks at the given frequency ratio.
    ///
    /// # Panics
    ///
    /// Panics (via [`FrequencyScale::new`]) if `ratio` is outside `(0, 1.5]`.
    pub fn new(ratio: f64) -> Self {
        ApproxGovernor {
            approximate: FrequencyScale::new(ratio),
        }
    }

    /// The frequency applied to approximate tasks.
    pub fn approximate_scale(&self) -> FrequencyScale {
        self.approximate
    }
}

impl Governor for ApproxGovernor {
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale {
        if ctx.accurate {
            FrequencyScale::nominal()
        } else {
            self.approximate
        }
    }

    fn name(&self) -> &'static str {
        "approx-step"
    }
}

/// Ladder governor: accurate tasks at nominal frequency; approximate tasks
/// descend a P-state-style frequency ladder with falling significance, so
/// the least significant work runs at the lowest modelled frequency.
#[derive(Debug, Clone)]
pub struct SignificanceLadderGovernor {
    steps: Vec<FrequencyScale>,
}

impl SignificanceLadderGovernor {
    /// Build from an explicit ladder, highest frequency first.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(steps: Vec<FrequencyScale>) -> Self {
        assert!(
            !steps.is_empty(),
            "a ladder governor needs at least one step"
        );
        SignificanceLadderGovernor { steps }
    }

    /// Build from an evenly spaced ladder of `steps` settings down to
    /// `floor` (see [`FrequencyScale::ladder`]).
    pub fn with_ladder(steps: usize, floor: f64) -> Self {
        SignificanceLadderGovernor::new(FrequencyScale::ladder(steps, floor))
    }
}

impl Governor for SignificanceLadderGovernor {
    fn frequency_for(&self, ctx: &DispatchContext) -> FrequencyScale {
        if ctx.accurate {
            return FrequencyScale::nominal();
        }
        let last = self.steps.len() - 1;
        let rung = ((1.0 - ctx.significance.value()) * last as f64).round() as usize;
        self.steps[rung.min(last)]
    }

    fn name(&self) -> &'static str {
        "significance-ladder"
    }
}

const MODES: usize = 3;

fn mode_index(mode: ExecutionMode) -> usize {
    match mode {
        ExecutionMode::Accurate => 0,
        ExecutionMode::Approximate => 1,
        ExecutionMode::Dropped => 2,
    }
}

/// One worker's frequency domain and energy counters.
struct EnvShard {
    /// Measured busy nanoseconds (wall-clock spent in task bodies).
    real_busy_nanos: AtomicU64,
    /// Modelled busy nanoseconds (measured × time dilation), per mode.
    modelled_busy_nanos: [AtomicU64; MODES],
    /// Modelled dynamic energy in nanojoules.
    dynamic_nanojoules: AtomicU64,
    /// Tasks dispatched below nominal frequency.
    scaled_tasks: AtomicU64,
    /// Frequency-domain switches (a real DVFS implementation would pay a
    /// transition latency here).
    transitions: AtomicU64,
    /// Current frequency ratio of this worker's domain, as `f64` bits.
    domain_bits: AtomicU64,
    /// Cache of the last non-nominal `(ratio bits, active watts bits)` so
    /// the `powf` in the power model runs per frequency change, not per task.
    cached_ratio_bits: AtomicU64,
    cached_watts_bits: AtomicU64,
}

impl EnvShard {
    fn new() -> Self {
        EnvShard {
            real_busy_nanos: AtomicU64::new(0),
            modelled_busy_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            dynamic_nanojoules: AtomicU64::new(0),
            scaled_tasks: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            domain_bits: AtomicU64::new(1.0f64.to_bits()),
            cached_ratio_bits: AtomicU64::new(1.0f64.to_bits()),
            cached_watts_bits: AtomicU64::new(0),
        }
    }
}

/// The runtime's execution environment: power model, governor and the
/// per-worker frequency/energy shards.
pub(crate) struct ExecutionEnv {
    model: PowerModel,
    governor: Arc<dyn Governor>,
    /// `true` iff the governor always answers nominal — lets dispatch skip
    /// the virtual call and all domain bookkeeping.
    passthrough: bool,
    nominal_watts: f64,
    shards: Box<[CachePadded<EnvShard>]>,
}

impl ExecutionEnv {
    /// `shards` should be the worker count: dispatch/record only ever run on
    /// worker threads (the spawn path never executes bodies). Out-of-range
    /// worker indices clamp to the last shard defensively.
    pub(crate) fn new(model: PowerModel, governor: Arc<dyn Governor>, shards: usize) -> Self {
        ExecutionEnv {
            nominal_watts: model.active_watts_per_core,
            passthrough: governor.is_passthrough(),
            model,
            governor,
            shards: (0..shards.max(1))
                .map(|_| CachePadded::new(EnvShard::new()))
                .collect(),
        }
    }

    fn shard(&self, worker: usize) -> &EnvShard {
        &self.shards[worker.min(self.shards.len() - 1)]
    }

    /// Choose the frequency for a task about to execute on `worker` and
    /// update the worker's frequency domain. Lock-free; one relaxed
    /// load/store pair when the frequency is unchanged.
    pub(crate) fn dispatch(&self, worker: usize, ctx: &DispatchContext) -> FrequencyScale {
        if self.passthrough {
            return FrequencyScale::nominal();
        }
        let scale = self.governor.frequency_for(ctx);
        let shard = self.shard(worker);
        let bits = scale.ratio().to_bits();
        if shard.domain_bits.load(Ordering::Relaxed) != bits {
            shard.domain_bits.store(bits, Ordering::Relaxed);
            shard.transitions.fetch_add(1, Ordering::Relaxed);
        }
        scale
    }

    /// Active watts at `scale`, served from the shard-local cache (single
    /// writer: the owning worker).
    fn scaled_watts(&self, shard: &EnvShard, scale: FrequencyScale) -> f64 {
        let bits = scale.ratio().to_bits();
        if shard.cached_ratio_bits.load(Ordering::Relaxed) == bits {
            let cached = shard.cached_watts_bits.load(Ordering::Relaxed);
            if cached != 0 {
                return f64::from_bits(cached);
            }
        }
        let watts = scale.scaled_active_watts(&self.model);
        shard.cached_ratio_bits.store(bits, Ordering::Relaxed);
        shard
            .cached_watts_bits
            .store(watts.to_bits(), Ordering::Relaxed);
        watts
    }

    /// Account one executed task: `busy` measured wall-time in the body,
    /// dilated and priced at the frequency chosen at dispatch.
    pub(crate) fn record(
        &self,
        worker: usize,
        mode: ExecutionMode,
        busy: Duration,
        scale: FrequencyScale,
    ) {
        let shard = self.shard(worker);
        let real_nanos = busy.as_nanos().min(u64::MAX as u128) as u64;
        shard
            .real_busy_nanos
            .fetch_add(real_nanos, Ordering::Relaxed);
        let (modelled_nanos, joules) = if scale.is_nominal() {
            (real_nanos, real_nanos as f64 * 1e-9 * self.nominal_watts)
        } else {
            shard.scaled_tasks.fetch_add(1, Ordering::Relaxed);
            let modelled = (real_nanos as f64 * scale.time_dilation()) as u64;
            let watts = self.scaled_watts(shard, scale);
            (modelled, modelled as f64 * 1e-9 * watts)
        };
        shard.modelled_busy_nanos[mode_index(mode)].fetch_add(modelled_nanos, Ordering::Relaxed);
        shard
            .dynamic_nanojoules
            .fetch_add((joules * 1e9) as u64, Ordering::Relaxed);
    }

    /// The power model the environment prices energy with.
    pub(crate) fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Fold the shards into an immutable report. `wall_seconds` is the
    /// measured makespan; `workers` the worker-thread count the dilation is
    /// spread over.
    pub(crate) fn report(&self, wall_seconds: f64, workers: usize) -> EnergyReport {
        let per_worker: Vec<WorkerEnergy> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let modelled: [f64; MODES] = std::array::from_fn(|m| {
                    shard.modelled_busy_nanos[m].load(Ordering::Relaxed) as f64 * 1e-9
                });
                WorkerEnergy {
                    worker: index,
                    busy_seconds: shard.real_busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                    modelled_busy_seconds: modelled.iter().sum(),
                    accurate_busy_seconds: modelled[0],
                    approximate_busy_seconds: modelled[1],
                    dynamic_joules: shard.dynamic_nanojoules.load(Ordering::Relaxed) as f64 * 1e-9,
                    scaled_tasks: shard.scaled_tasks.load(Ordering::Relaxed),
                    frequency_transitions: shard.transitions.load(Ordering::Relaxed),
                    frequency_ratio: f64::from_bits(shard.domain_bits.load(Ordering::Relaxed)),
                }
            })
            .collect();
        EnergyReport {
            model: self.model,
            governor: self.governor.name().to_string(),
            wall_seconds,
            worker_count: workers.max(1),
            workers: per_worker,
        }
    }
}

impl std::fmt::Debug for ExecutionEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionEnv")
            .field("governor", &self.governor.name())
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// One worker's contribution to an [`EnergyReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerEnergy {
    /// Worker index.
    pub worker: usize,
    /// Measured wall-clock seconds spent executing task bodies.
    pub busy_seconds: f64,
    /// Busy seconds after DVFS time dilation (equals `busy_seconds` for
    /// tasks dispatched at nominal frequency).
    pub modelled_busy_seconds: f64,
    /// Modelled busy seconds spent in accurate bodies.
    pub accurate_busy_seconds: f64,
    /// Modelled busy seconds spent in approximate bodies.
    pub approximate_busy_seconds: f64,
    /// Modelled dynamic (active-core) energy in joules.
    pub dynamic_joules: f64,
    /// Tasks dispatched below nominal frequency.
    pub scaled_tasks: u64,
    /// Number of frequency-domain switches.
    pub frequency_transitions: u64,
    /// Current frequency ratio of the worker's domain.
    pub frequency_ratio: f64,
}

/// Immutable snapshot of the runtime's energy accounting, built from the
/// per-worker shards by [`crate::Runtime::energy_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// The power model the dynamic joules were priced with.
    pub model: PowerModel,
    /// Name of the governor that made the frequency decisions.
    pub governor: String,
    /// Measured wall-clock seconds since the runtime started.
    pub wall_seconds: f64,
    /// Worker threads the dilation is assumed to spread over.
    pub worker_count: usize,
    /// Per-worker accounting shards, one per worker thread.
    pub workers: Vec<WorkerEnergy>,
}

impl EnergyReport {
    /// Total measured busy core-seconds across workers.
    pub fn busy_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_seconds).sum()
    }

    /// Total modelled (dilated) busy core-seconds across workers.
    pub fn modelled_busy_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.modelled_busy_seconds).sum()
    }

    /// Total modelled dynamic energy in joules.
    pub fn dynamic_joules(&self) -> f64 {
        self.workers.iter().map(|w| w.dynamic_joules).sum()
    }

    /// Total tasks dispatched below nominal frequency.
    pub fn scaled_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.scaled_tasks).sum()
    }

    /// The makespan the model integrates static power over: the measured
    /// wall time plus the DVFS dilation, assumed load-balanced across the
    /// workers. Never smaller than the measured wall time.
    pub fn modelled_wall_seconds(&self) -> f64 {
        let extra = (self.modelled_busy_seconds() - self.busy_seconds()).max(0.0);
        self.wall_seconds + extra / self.worker_count as f64
    }

    /// Collapse the report into the workspace-wide [`EnergyReading`] type:
    /// dynamic joules from the per-task accounting, static and idle joules
    /// from the power model integrated over the modelled makespan.
    pub fn reading(&self) -> EnergyReading {
        let wall = self.modelled_wall_seconds();
        let busy = self.modelled_busy_seconds();
        let capacity = self.model.total_cores() as f64 * wall;
        let clamped_busy = busy.min(capacity);
        let base = self.model.energy_breakdown(wall, clamped_busy);
        let breakdown = EnergyBreakdown {
            dynamic_joules: self.dynamic_joules(),
            ..base
        };
        EnergyReading::from_breakdown(wall, clamped_busy, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(significance: f64, accurate: bool) -> DispatchContext {
        DispatchContext {
            significance: Significance::new(significance),
            accurate,
            policy: Policy::GtbMaxBuffer,
            group_ratio: 0.5,
        }
    }

    fn env(governor: Arc<dyn Governor>) -> ExecutionEnv {
        ExecutionEnv::new(PowerModel::for_host(), governor, 3)
    }

    #[test]
    fn nominal_governor_is_passthrough() {
        let e = env(Arc::new(NominalGovernor));
        let scale = e.dispatch(0, &ctx(0.2, false));
        assert!(scale.is_nominal());
        let report = e.report(1.0, 2);
        assert_eq!(report.scaled_tasks(), 0);
        assert_eq!(report.governor, "nominal");
    }

    #[test]
    fn approx_governor_scales_only_approximate_tasks() {
        let g = ApproxGovernor::new(0.5);
        assert!(g.frequency_for(&ctx(0.9, true)).is_nominal());
        assert_eq!(g.frequency_for(&ctx(0.9, false)).ratio(), 0.5);
        assert_eq!(g.approximate_scale().ratio(), 0.5);
    }

    #[test]
    fn ladder_governor_descends_with_significance() {
        let g = SignificanceLadderGovernor::with_ladder(5, 0.5);
        assert!(g.frequency_for(&ctx(0.3, true)).is_nominal());
        let high = g.frequency_for(&ctx(0.9, false)).ratio();
        let low = g.frequency_for(&ctx(0.1, false)).ratio();
        assert!(high > low, "high-significance {high} vs low {low}");
        assert_eq!(g.frequency_for(&ctx(0.0, false)).ratio(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_ladder_rejected() {
        SignificanceLadderGovernor::new(Vec::new());
    }

    #[test]
    fn record_accumulates_and_dilates() {
        let e = env(Arc::new(ApproxGovernor::new(0.5)));
        let scale = e.dispatch(0, &ctx(0.2, false));
        e.record(0, ExecutionMode::Approximate, Duration::from_secs(1), scale);
        let nominal = e.dispatch(1, &ctx(0.9, true));
        e.record(1, ExecutionMode::Accurate, Duration::from_secs(1), nominal);
        let report = e.report(2.0, 2);
        assert!((report.busy_seconds() - 2.0).abs() < 1e-9);
        // Worker 0 ran at half frequency: its busy second dilates to two.
        assert!((report.modelled_busy_seconds() - 3.0).abs() < 1e-6);
        assert!((report.workers[0].modelled_busy_seconds - 2.0).abs() < 1e-6);
        assert!((report.workers[0].approximate_busy_seconds - 2.0).abs() < 1e-6);
        assert_eq!(report.workers[0].scaled_tasks, 1);
        assert_eq!(report.workers[1].scaled_tasks, 0);
        // Dilation spreads over 2 workers: modelled wall grows by half the
        // extra second.
        assert!((report.modelled_wall_seconds() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn scaled_dynamic_energy_is_cheaper_per_work_unit() {
        let slow = env(Arc::new(ApproxGovernor::new(0.5)));
        let scale = slow.dispatch(0, &ctx(0.2, false));
        slow.record(0, ExecutionMode::Approximate, Duration::from_secs(1), scale);
        let fast = env(Arc::new(NominalGovernor));
        fast.record(
            0,
            ExecutionMode::Accurate,
            Duration::from_secs(1),
            FrequencyScale::nominal(),
        );
        // Same measured work: the scaled run's dynamic energy must be lower
        // (dynamic_energy_factor < 1 for the default exponent).
        let e_slow = slow.report(1.0, 1).dynamic_joules();
        let e_fast = fast.report(1.0, 1).dynamic_joules();
        assert!(e_slow < e_fast, "scaled {e_slow} J vs nominal {e_fast} J");
    }

    #[test]
    fn domain_transitions_are_counted_per_change() {
        let e = env(Arc::new(ApproxGovernor::new(0.6)));
        for _ in 0..3 {
            e.dispatch(0, &ctx(0.2, false));
        }
        e.dispatch(0, &ctx(0.9, true));
        e.dispatch(0, &ctx(0.2, false));
        let report = e.report(1.0, 1);
        // nominal→0.6, 0.6→nominal, nominal→0.6: three switches.
        assert_eq!(report.workers[0].frequency_transitions, 3);
        assert_eq!(report.workers[0].frequency_ratio, 0.6);
    }

    #[test]
    fn reading_combines_static_idle_and_scaled_dynamic() {
        let model = PowerModel {
            sockets: 1,
            cores_per_socket: 2,
            static_watts_per_socket: 10.0,
            active_watts_per_core: 4.0,
            idle_watts_per_core: 1.0,
        };
        let e = ExecutionEnv::new(model, Arc::new(NominalGovernor), 2);
        e.record(
            0,
            ExecutionMode::Accurate,
            Duration::from_secs(1),
            FrequencyScale::nominal(),
        );
        let report = e.report(1.0, 2);
        let reading = report.reading();
        // static 10 + dynamic 1*4 + idle (2-1)*1 = 15 J over 1 s.
        assert!((reading.joules - 15.0).abs() < 1e-6, "{reading:?}");
        assert!((reading.breakdown.dynamic_joules - 4.0).abs() < 1e-6);
        assert!((reading.average_watts - 15.0).abs() < 1e-6);
    }
}

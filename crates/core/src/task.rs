//! Task descriptors: the runtime's internal representation of a spawned task.
//!
//! A task carries (Section 2 / 3.1 of the paper):
//!
//! * its **significance**,
//! * an **accurate body** and an optional **approximate body** (`approxfun`),
//! * the **task group** it belongs to (`label`),
//! * its **data footprint** (`in`/`out` dependence keys),
//! * scheduling state: how many predecessors are still outstanding, whether
//!   the master has released it to the workers (GTB buffering), and the
//!   execution-mode decision once it has been made.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::deps::DepKey;
use crate::group::GroupId;
use crate::significance::Significance;

/// Unique identifier of a spawned task, in program (spawn) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// The raw spawn-order index.
    pub fn index(self) -> u64 {
        self.0
    }
}

/// A task body: an arbitrary `FnOnce` closure executed on a worker thread.
pub type TaskBody = Box<dyn FnOnce() + Send + 'static>;

/// How a task was (or will be) executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// The accurate body ran.
    Accurate,
    /// The approximate (`approxfun`) body ran.
    Approximate,
    /// The task was selected for approximation but had no approximate body,
    /// so it was dropped entirely (Section 2: "it is simply dropped by the
    /// runtime").
    Dropped,
}

const MODE_UNDECIDED: u8 = 0;
const MODE_ACCURATE: u8 = 1;
const MODE_APPROXIMATE: u8 = 2;

/// Internal state of a spawned task, shared between the master thread, the
/// dependence tracker and the workers.
pub(crate) struct Task {
    pub(crate) id: TaskId,
    pub(crate) group: GroupId,
    pub(crate) significance: Significance,
    /// Accurate body; taken (at most once) when the task executes.
    pub(crate) accurate: Mutex<Option<TaskBody>>,
    /// Optional approximate body; taken when the task executes approximately.
    pub(crate) approximate: Mutex<Option<TaskBody>>,
    /// Execution-mode decision (GTB decides at flush time, LQH at execution
    /// time). `MODE_UNDECIDED` until then.
    mode: AtomicU8,
    /// Number of yet-uncompleted predecessor tasks.
    pub(crate) pending_deps: AtomicUsize,
    /// Whether the master has released the task towards the worker queues
    /// (GTB holds tasks back until its buffer flushes).
    pub(crate) released: AtomicBool,
    /// Guard so a task is enqueued into a worker queue exactly once even if
    /// the release path and the last-dependence-completion path race.
    pub(crate) enqueued: AtomicBool,
    /// Set once the task has finished executing (in any mode). Read and
    /// written under the `successors` lock by the registration/completion
    /// paths so late successors never wait on an already-finished task.
    pub(crate) completed: AtomicBool,
    /// Tasks that must be notified when this task completes.
    pub(crate) successors: Mutex<Vec<Arc<Task>>>,
    /// Output keys (needed to release `taskwait on(...)` waiters).
    pub(crate) out_keys: Vec<DepKey>,
}

impl Task {
    pub(crate) fn new(
        id: TaskId,
        group: GroupId,
        significance: Significance,
        accurate: TaskBody,
        approximate: Option<TaskBody>,
        out_keys: Vec<DepKey>,
    ) -> Self {
        Task {
            id,
            group,
            significance,
            accurate: Mutex::new(Some(accurate)),
            approximate: Mutex::new(approximate),
            mode: AtomicU8::new(MODE_UNDECIDED),
            pending_deps: AtomicUsize::new(0),
            released: AtomicBool::new(false),
            enqueued: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            successors: Mutex::new(Vec::new()),
            out_keys,
        }
    }

    /// Whether an approximate body was supplied at spawn time.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn has_approx_body(&self) -> bool {
        self.approximate.lock().is_some()
    }

    /// Record the accurate/approximate decision. The first decision wins;
    /// later attempts are ignored (they can arise when a GTB flush races with
    /// a barrier flush of the same group).
    pub(crate) fn decide(&self, accurate: bool) {
        let value = if accurate { MODE_ACCURATE } else { MODE_APPROXIMATE };
        let _ = self.mode.compare_exchange(
            MODE_UNDECIDED,
            value,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The decision made so far, if any. `Some(true)` means accurate.
    pub(crate) fn decision(&self) -> Option<bool> {
        match self.mode.load(Ordering::Acquire) {
            MODE_ACCURATE => Some(true),
            MODE_APPROXIMATE => Some(false),
            _ => None,
        }
    }

    /// Mark the task as released by the master (GTB flush or immediate
    /// release). Returns `true` the first time.
    pub(crate) fn release(&self) -> bool {
        !self.released.swap(true, Ordering::AcqRel)
    }

    /// Whether the task has been released towards the worker queues.
    pub(crate) fn is_released(&self) -> bool {
        self.released.load(Ordering::Acquire)
    }

    /// Whether all predecessors have completed.
    pub(crate) fn is_ready(&self) -> bool {
        self.pending_deps.load(Ordering::Acquire) == 0
    }

    /// Atomically claim the right to enqueue this task. Returns `true` for
    /// exactly one caller.
    pub(crate) fn claim_enqueue(&self) -> bool {
        !self.enqueued.swap(true, Ordering::AcqRel)
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("group", &self.group)
            .field("significance", &self.significance)
            .field("decision", &self.decision())
            .field("pending_deps", &self.pending_deps.load(Ordering::Relaxed))
            .field("released", &self.is_released())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_task(significance: f64) -> Task {
        Task::new(
            TaskId(0),
            GroupId::GLOBAL,
            Significance::new(significance),
            Box::new(|| {}),
            None,
            Vec::new(),
        )
    }

    #[test]
    fn new_task_is_undecided_unreleased_ready() {
        let t = dummy_task(0.5);
        assert_eq!(t.decision(), None);
        assert!(!t.is_released());
        assert!(t.is_ready());
        assert!(!t.has_approx_body());
    }

    #[test]
    fn first_decision_wins() {
        let t = dummy_task(0.5);
        t.decide(true);
        assert_eq!(t.decision(), Some(true));
        t.decide(false);
        assert_eq!(t.decision(), Some(true), "later decisions must not override");
    }

    #[test]
    fn release_returns_true_once() {
        let t = dummy_task(0.2);
        assert!(t.release());
        assert!(!t.release());
        assert!(t.is_released());
    }

    #[test]
    fn claim_enqueue_is_exclusive() {
        let t = dummy_task(0.2);
        assert!(t.claim_enqueue());
        assert!(!t.claim_enqueue());
    }

    #[test]
    fn approx_body_detection() {
        let t = Task::new(
            TaskId(1),
            GroupId::GLOBAL,
            Significance::new(0.3),
            Box::new(|| {}),
            Some(Box::new(|| {})),
            Vec::new(),
        );
        assert!(t.has_approx_body());
    }

    #[test]
    fn pending_deps_tracking() {
        let t = dummy_task(0.7);
        t.pending_deps.store(2, Ordering::Release);
        assert!(!t.is_ready());
        t.pending_deps.fetch_sub(1, Ordering::AcqRel);
        assert!(!t.is_ready());
        t.pending_deps.fetch_sub(1, Ordering::AcqRel);
        assert!(t.is_ready());
    }

    #[test]
    fn debug_format_is_nonempty() {
        let t = dummy_task(0.4);
        assert!(!format!("{t:?}").is_empty());
    }

    #[test]
    fn task_id_ordering_matches_spawn_order() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(TaskId(7).index(), 7);
    }
}

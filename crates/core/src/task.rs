//! Task descriptors: the runtime's internal representation of a spawned task.
//!
//! A task carries (Section 2 / 3.1 of the paper):
//!
//! * its **significance**,
//! * an **accurate body** and an optional **approximate body** (`approxfun`),
//! * the **task group** it belongs to (`label`),
//! * its **data footprint** (`in`/`out` dependence keys),
//! * scheduling state: how many predecessors are still outstanding, whether
//!   the master has released it to the workers (GTB buffering), and the
//!   execution-mode decision once it has been made.
//!
//! All scheduling state lives in **one atomic byte** ([`Task::decide`],
//! [`Task::release`], [`Task::claim_enqueue`]), the two bodies live in
//! take-once [`BodyCell`]s, and the successor list is a lock-free Treiber
//! stack sealed at completion — so executing a ready task performs **zero
//! mutex acquisitions**. The seed design spent two mutex locks per executed
//! task on the body slots alone plus one on the successor list.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::deps::DepKey;
use crate::group::{GroupId, GroupState};
use crate::handle::{HandleNotify, TaskOutcome};
use crate::significance::Significance;

/// Unique identifier of a spawned task, in program (spawn) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// The raw spawn-order index.
    pub fn index(self) -> u64 {
        self.0
    }
}

/// A task body: an arbitrary `FnOnce` closure executed on a worker thread.
pub type TaskBody = Box<dyn FnOnce() + Send + 'static>;

/// How a task was (or will be) executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// The accurate body ran.
    Accurate,
    /// The approximate (`approxfun`) body ran.
    Approximate,
    /// The task was selected for approximation but had no approximate body,
    /// so it was dropped entirely (Section 2: "it is simply dropped by the
    /// runtime").
    Dropped,
}

// Layout of the task state byte.
const MODE_MASK: u8 = 0b11; // 0 = undecided
const MODE_ACCURATE: u8 = 1;
const MODE_APPROXIMATE: u8 = 2;
const RELEASED: u8 = 1 << 2;
const ENQUEUED: u8 = 1 << 3;
const COMPLETED: u8 = 1 << 4;
const CANCELLED: u8 = 1 << 5;
const PANICKED: u8 = 1 << 6;

/// A cooperative cancellation flag shared between spawners and task bodies.
///
/// A token attached to a task (via
/// [`TaskBuilder::cancel_token`](crate::runtime::TaskBuilder::cancel_token))
/// is checked once when the task is dequeued for execution: if the token has
/// been cancelled, the task's bodies are dropped unrun, its outputs are
/// poisoned, and it completes with the `Cancelled` outcome. Task bodies may
/// also poll their own clone of the token to bail out of long loops early.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation of every task the token is attached to.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A task body slot consumed exactly once, without a lock.
///
/// The cell is written only at construction. It is taken by the single
/// worker that won [`Task::claim_enqueue`] and popped the task from a queue;
/// the queue handoff (release store / CAS acquire) orders the construction
/// write before the take.
struct BodyCell(UnsafeCell<Option<TaskBody>>);

// SAFETY: see the take-once discipline documented on the type; the cell is
// never accessed from two threads without an intervening synchronisation
// edge (queue push/pop or `&mut` creation).
unsafe impl Send for BodyCell {}
unsafe impl Sync for BodyCell {}

impl BodyCell {
    fn new(body: Option<TaskBody>) -> Self {
        BodyCell(UnsafeCell::new(body))
    }

    /// Take the body out of the cell.
    ///
    /// # Safety
    ///
    /// Only the task's unique executor (the [`Task::claim_enqueue`] winner
    /// after dequeuing the task) may call this, and nothing may read the
    /// cell concurrently.
    unsafe fn take(&self) -> Option<TaskBody> {
        (*self.0.get()).take()
    }
}

/// Sentinel marking a sealed successor list. Never dereferenced (and never
/// equal to a real allocation: `dangling_mut` is the type's alignment).
fn sealed() -> *mut SuccessorNode {
    std::ptr::dangling_mut()
}

struct SuccessorNode {
    task: Arc<Task>,
    next: *mut SuccessorNode,
}

/// Lock-free list of tasks waiting on this task's completion.
///
/// Registrars push with a CAS; the completing worker swaps in a `sealed`
/// sentinel and drains. A push that observes the sentinel knows the
/// predecessor already completed and reports so — replacing the seed's
/// `Mutex<Vec<Arc<Task>>>` plus separate `completed` flag read under that
/// lock.
pub(crate) struct SuccessorList {
    head: AtomicPtr<SuccessorNode>,
}

impl SuccessorList {
    fn new() -> Self {
        SuccessorList {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Register `successor`; returns `false` if this task already completed
    /// (the caller must then not count the dependence).
    pub(crate) fn try_push(&self, successor: Arc<Task>) -> bool {
        let node = Box::into_raw(Box::new(SuccessorNode {
            task: successor,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            if head == sealed() {
                // SAFETY: the node was just allocated above and never shared.
                drop(unsafe { Box::from_raw(node) });
                return false;
            }
            // SAFETY: the node is still exclusively ours until the CAS wins.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(observed) => head = observed,
            }
        }
    }

    /// Seal the list (no further pushes succeed) and drain the registered
    /// successors in registration order.
    pub(crate) fn seal(&self) -> Vec<Arc<Task>> {
        let mut head = self.head.swap(sealed(), Ordering::AcqRel);
        let mut successors = Vec::new();
        while !head.is_null() && head != sealed() {
            // SAFETY: the swap above made this list unreachable to pushers;
            // each node came from `Box::into_raw` and is freed exactly once.
            let node = unsafe { Box::from_raw(head) };
            successors.push(node.task);
            head = node.next;
        }
        successors.reverse();
        successors
    }
}

impl Drop for SuccessorList {
    fn drop(&mut self) {
        // Frees any nodes never drained (e.g. a task dropped unexecuted).
        let _ = self.seal();
    }
}

/// Internal state of a spawned task, shared between the master thread, the
/// dependence tracker and the workers.
pub(crate) struct Task {
    pub(crate) id: TaskId,
    /// The group resolved at spawn time, so the execution hot path never
    /// touches the group registry lock.
    pub(crate) group_state: Arc<GroupState>,
    pub(crate) significance: Significance,
    /// Accurate body; taken (at most once) when the task executes.
    accurate: BodyCell,
    /// Optional approximate body; taken when the task executes approximately.
    approximate: BodyCell,
    /// Combined decision + released + enqueued + completed state.
    state: AtomicU8,
    /// Number of yet-uncompleted predecessor tasks.
    pub(crate) pending_deps: AtomicUsize,
    /// Tasks that must be notified when this task completes.
    pub(crate) successors: SuccessorList,
    /// Output keys (needed to release `taskwait on(...)` waiters).
    pub(crate) out_keys: Vec<DepKey>,
    /// Whether the task declared any `in`/`out` keys. A footprint-free task
    /// can never be a predecessor, so its completion path skips the
    /// successor-list seal and the dependence tracker entirely.
    pub(crate) footprint: bool,
    /// Runtime-internal helper task (e.g. a parallel GTB-flush chunk):
    /// executed like any other task but invisible to user-facing statistics
    /// and energy accounting.
    pub(crate) system: bool,
    /// Input keys, kept for transitive poison propagation: a task whose
    /// inputs were written by a failed predecessor poisons its own outputs.
    pub(crate) in_keys: Vec<DepKey>,
    /// Completion deadline in nanoseconds since runtime start; `0` = none.
    pub(crate) deadline_nanos: u64,
    /// Cooperative cancellation token attached at spawn, if any.
    pub(crate) cancel: Option<CancelToken>,
    /// Spawn-handle notification target, resolved exactly once with the
    /// task's terminal outcome (see [`crate::handle::SpawnHandle`]).
    pub(crate) handle: Option<Arc<dyn HandleNotify>>,
}

impl Task {
    pub(crate) fn new(
        id: TaskId,
        group_state: Arc<GroupState>,
        significance: Significance,
        accurate: TaskBody,
        approximate: Option<TaskBody>,
        out_keys: Vec<DepKey>,
        footprint: bool,
    ) -> Self {
        Task {
            id,
            group_state,
            significance,
            accurate: BodyCell::new(Some(accurate)),
            approximate: BodyCell::new(approximate),
            state: AtomicU8::new(0),
            pending_deps: AtomicUsize::new(0),
            successors: SuccessorList::new(),
            out_keys,
            footprint,
            system: false,
            in_keys: Vec::new(),
            deadline_nanos: 0,
            cancel: None,
            handle: None,
        }
    }

    /// A runtime-internal helper task: footprint-free, critical significance,
    /// excluded from user-facing statistics.
    pub(crate) fn new_system(id: TaskId, group_state: Arc<GroupState>, body: TaskBody) -> Self {
        Task {
            system: true,
            ..Task::new(
                id,
                group_state,
                Significance::CRITICAL,
                body,
                None,
                Vec::new(),
                false,
            )
        }
    }

    /// Spawn fast path: mark the task released and enqueued (and decided
    /// accurate, for the agnostic policy) before it is ever shared — a plain
    /// store through `&mut`, not an atomic op. Valid only for tasks that go
    /// straight to a queue from `spawn` (no GTB buffering, no predecessors).
    pub(crate) fn prime_spawn_enqueued(&mut self, accurate: bool) {
        let bits = if accurate {
            MODE_ACCURATE | RELEASED | ENQUEUED
        } else {
            RELEASED | ENQUEUED
        };
        *self.state.get_mut() |= bits;
    }

    /// Take the accurate body.
    ///
    /// # Safety
    ///
    /// Caller must be the task's unique executor (see [`BodyCell::take`]).
    pub(crate) unsafe fn take_accurate(&self) -> Option<TaskBody> {
        self.accurate.take()
    }

    /// Take the approximate body.
    ///
    /// # Safety
    ///
    /// Caller must be the task's unique executor (see [`BodyCell::take`]).
    pub(crate) unsafe fn take_approximate(&self) -> Option<TaskBody> {
        self.approximate.take()
    }

    /// Whether an approximate body was supplied at spawn time. Must not race
    /// with the executor; used by spawn-side code and tests only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn has_approx_body(&self) -> bool {
        // SAFETY: callers hold the task before it is ever enqueued.
        unsafe { (*self.approximate.0.get()).is_some() }
    }

    /// Record the accurate/approximate decision. The first decision wins;
    /// later attempts are ignored (they can arise when a GTB flush races with
    /// a barrier flush of the same group).
    pub(crate) fn decide(&self, accurate: bool) {
        let mode = if accurate {
            MODE_ACCURATE
        } else {
            MODE_APPROXIMATE
        };
        let _ = self
            .state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |state| {
                (state & MODE_MASK == 0).then_some(state | mode)
            });
    }

    /// The decision made so far, if any. `Some(true)` means accurate.
    pub(crate) fn decision(&self) -> Option<bool> {
        match self.state.load(Ordering::Acquire) & MODE_MASK {
            MODE_ACCURATE => Some(true),
            MODE_APPROXIMATE => Some(false),
            _ => None,
        }
    }

    /// Mark the task as released by the master (GTB flush or immediate
    /// release). Returns `true` the first time.
    ///
    /// SeqCst: `release` + `is_ready` on one thread races `pending_deps`
    /// decrement + `is_released` on another (the GTB-flush vs
    /// last-predecessor-completion pair). With anything weaker than SeqCst
    /// this is a store-buffering pattern where both sides could read stale
    /// and neither enqueues the task.
    pub(crate) fn release(&self) -> bool {
        self.state.fetch_or(RELEASED, Ordering::SeqCst) & RELEASED == 0
    }

    /// Spawn-path fast combination of `decide(true)` + `release()` in one
    /// atomic op, valid only while no other thread can have decided yet
    /// (the significance-agnostic policy decides at spawn, before the task
    /// is shared with any flush path).
    pub(crate) fn release_accurate(&self) {
        self.state
            .fetch_or(MODE_ACCURATE | RELEASED, Ordering::SeqCst);
    }

    /// Whether the task has been released towards the worker queues.
    /// SeqCst: see [`Task::release`].
    pub(crate) fn is_released(&self) -> bool {
        self.state.load(Ordering::SeqCst) & RELEASED != 0
    }

    /// Whether all predecessors have completed.
    /// SeqCst: see [`Task::release`].
    pub(crate) fn is_ready(&self) -> bool {
        self.pending_deps.load(Ordering::SeqCst) == 0
    }

    /// Atomically claim the right to enqueue this task. Returns `true` for
    /// exactly one caller.
    pub(crate) fn claim_enqueue(&self) -> bool {
        self.state.fetch_or(ENQUEUED, Ordering::AcqRel) & ENQUEUED == 0
    }

    /// The group the task was spawned into.
    pub(crate) fn group_id(&self) -> GroupId {
        self.group_state.id
    }

    /// Record that the task finished executing (in any mode).
    pub(crate) fn mark_completed(&self) {
        self.state.fetch_or(COMPLETED, Ordering::AcqRel);
    }

    /// Whether the task finished executing.
    pub(crate) fn is_completed(&self) -> bool {
        self.state.load(Ordering::Acquire) & COMPLETED != 0
    }

    /// Request cancellation of this specific task. Honoured cooperatively:
    /// the task is skipped if the request lands before a worker dequeues it.
    /// Returns `true` the first time.
    pub(crate) fn request_cancel(&self) -> bool {
        self.state.fetch_or(CANCELLED, Ordering::AcqRel) & CANCELLED == 0
    }

    /// Whether cancellation was requested through any channel (the per-task
    /// bit, an attached token, or the whole group).
    pub(crate) fn cancel_requested(&self) -> bool {
        if self.state.load(Ordering::Acquire) & CANCELLED != 0 {
            return true;
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        self.group_state.is_cancelled()
    }

    /// Resolve the attached spawn handle, if any, with the task's terminal
    /// outcome. Called exactly once, by the single worker retiring the task,
    /// strictly before the completion protocol releases barriers.
    pub(crate) fn notify_handle(&self, outcome: TaskOutcome) {
        if let Some(handle) = &self.handle {
            handle.notify(outcome);
        }
    }

    /// Record that the task's body panicked.
    pub(crate) fn mark_panicked(&self) {
        self.state.fetch_or(PANICKED, Ordering::AcqRel);
    }

    /// Whether the task's body panicked.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_panicked(&self) -> bool {
        self.state.load(Ordering::Acquire) & PANICKED != 0
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("group", &self.group_id())
            .field("significance", &self.significance)
            .field("decision", &self.decision())
            .field("pending_deps", &self.pending_deps.load(Ordering::Relaxed))
            .field("released", &self.is_released())
            .field("completed", &self.is_completed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_group() -> Arc<GroupState> {
        Arc::new(GroupState::new(
            GroupId::GLOBAL,
            Arc::from("<test>"),
            1.0,
            1,
        ))
    }

    fn dummy_task(significance: f64) -> Task {
        Task::new(
            TaskId(0),
            test_group(),
            Significance::new(significance),
            Box::new(|| {}),
            None,
            Vec::new(),
            false,
        )
    }

    #[test]
    fn new_task_is_undecided_unreleased_ready() {
        let t = dummy_task(0.5);
        assert_eq!(t.decision(), None);
        assert!(!t.is_released());
        assert!(t.is_ready());
        assert!(!t.has_approx_body());
        assert!(!t.is_completed());
    }

    #[test]
    fn first_decision_wins() {
        let t = dummy_task(0.5);
        t.decide(true);
        assert_eq!(t.decision(), Some(true));
        t.decide(false);
        assert_eq!(
            t.decision(),
            Some(true),
            "later decisions must not override"
        );
    }

    #[test]
    fn release_returns_true_once() {
        let t = dummy_task(0.2);
        assert!(t.release());
        assert!(!t.release());
        assert!(t.is_released());
    }

    #[test]
    fn claim_enqueue_is_exclusive() {
        let t = dummy_task(0.2);
        assert!(t.claim_enqueue());
        assert!(!t.claim_enqueue());
    }

    #[test]
    fn state_flags_are_independent() {
        let t = dummy_task(0.9);
        t.decide(false);
        t.release();
        t.claim_enqueue();
        t.mark_completed();
        assert_eq!(t.decision(), Some(false));
        assert!(t.is_released());
        assert!(t.is_completed());
        assert!(!t.claim_enqueue());
    }

    #[test]
    fn bodies_are_take_once() {
        let ran = std::sync::Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let t = Task::new(
            TaskId(1),
            test_group(),
            Significance::new(0.3),
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
            Some(Box::new(|| {})),
            Vec::new(),
            false,
        );
        assert!(t.has_approx_body());
        // SAFETY: single-threaded test, no concurrent executor.
        let body = unsafe { t.take_accurate() }.expect("first take yields the body");
        body();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert!(
            unsafe { t.take_accurate() }.is_none(),
            "second take is empty"
        );
        assert!(unsafe { t.take_approximate() }.is_some());
        assert!(unsafe { t.take_approximate() }.is_none());
    }

    #[test]
    fn successor_list_rejects_after_seal() {
        let t = dummy_task(0.4);
        let a = Arc::new(dummy_task(0.1));
        let b = Arc::new(dummy_task(0.2));
        assert!(t.successors.try_push(a.clone()));
        assert!(t.successors.try_push(b.clone()));
        let drained = t.successors.seal();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id, a.id);
        assert!(
            !t.successors.try_push(a.clone()),
            "push after seal must report completion"
        );
        assert!(t.successors.seal().is_empty(), "second seal drains nothing");
    }

    #[test]
    fn successor_list_concurrent_push_and_seal_loses_no_task() {
        for _ in 0..50 {
            let t = Arc::new(dummy_task(0.5));
            let registrar = {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut wired = 0usize;
                    for _ in 0..64 {
                        if t.successors.try_push(Arc::new(dummy_task(0.1))) {
                            wired += 1;
                        }
                    }
                    wired
                })
            };
            let sealer = {
                let t = t.clone();
                std::thread::spawn(move || t.successors.seal().len())
            };
            let wired = registrar.join().unwrap();
            let drained = sealer.join().unwrap();
            assert!(drained <= wired);
            // Tasks pushed after the seal were rejected; every accepted one
            // must be drained by exactly one of the two seals.
            let late = t.successors.seal().len();
            assert_eq!(drained + late, wired, "no accepted successor may leak");
        }
    }

    #[test]
    fn pending_deps_tracking() {
        let t = dummy_task(0.7);
        t.pending_deps.store(2, Ordering::Release);
        assert!(!t.is_ready());
        t.pending_deps.fetch_sub(1, Ordering::AcqRel);
        assert!(!t.is_ready());
        t.pending_deps.fetch_sub(1, Ordering::AcqRel);
        assert!(t.is_ready());
    }

    #[test]
    fn debug_format_is_nonempty() {
        let t = dummy_task(0.4);
        assert!(!format!("{t:?}").is_empty());
    }

    #[test]
    fn task_id_ordering_matches_spawn_order() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(TaskId(7).index(), 7);
    }

    #[test]
    fn cancel_and_panic_bits_are_independent() {
        let t = dummy_task(0.5);
        assert!(!t.cancel_requested());
        assert!(t.request_cancel());
        assert!(
            !t.request_cancel(),
            "second request reports already-cancelled"
        );
        assert!(t.cancel_requested());
        assert!(!t.is_panicked());
        t.mark_panicked();
        assert!(t.is_panicked());
        assert!(!t.is_completed());
        assert!(
            t.claim_enqueue(),
            "cancel must not consume the enqueue claim"
        );
    }

    #[test]
    fn cancel_token_reaches_attached_task() {
        let token = CancelToken::new();
        let mut t = dummy_task(0.5);
        t.cancel = Some(token.clone());
        assert!(!t.cancel_requested());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(t.cancel_requested());
    }
}

//! The significance-aware task runtime.
//!
//! This module ties the pieces together into the system described in
//! Section 3 of the paper:
//!
//! * a **master/slave work-sharing scheduler** — the spawning thread is the
//!   master, worker threads execute tasks from per-worker lock-free queues
//!   filled round-robin, stealing from each other when empty;
//! * **dependence tracking** over the `in()`/`out()` footprints declared at
//!   spawn time;
//! * the **execution policies** (significance-agnostic, GTB, GTB Max-Buffer,
//!   LQH) that pick the accurate or approximate body of each task while
//!   honouring the per-group accurate-task ratio;
//! * **barriers**: a global `taskwait`, a per-group `taskwait label(...)`, and
//!   `taskwait on(<data>)`, each optionally carrying a `ratio(...)` clause.
//!
//! # Scheduling hot path
//!
//! Executing a ready task takes **zero mutex acquisitions** on the worker
//! fast path: queue pops are single-CAS ([`crate::deque`]), the
//! accurate/approximate decision and the body handoff are a single atomic
//! byte plus take-once cells ([`crate::task`]), statistics are per-worker
//! shards ([`crate::stats`]), and completion signalling is an atomic
//! decrement that only touches a condvar when a barrier is actually waiting
//! ([`crate::sync::EventCount`]). Idle workers park on a per-worker
//! [`crate::sync::Parker`] and are woken *targeted* — the seed design's
//! 1 ms idle polling loop and per-completion `notify_all` broadcast are
//! gone, and the queue-empty/wakeup race they papered over is closed by the
//! SeqCst sleep-flag protocol documented in [`crate::sync`].
//!
//! # Example
//!
//! ```
//! use sig_core::{Runtime, Policy, Significance};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let rt = Runtime::builder()
//!     .workers(4)
//!     .policy(Policy::Gtb { buffer_size: 16 })
//!     .build();
//! let group = rt.create_group("demo", 0.5);
//! let accurate_runs = Arc::new(AtomicUsize::new(0));
//! let approx_runs = Arc::new(AtomicUsize::new(0));
//!
//! for i in 0..100u32 {
//!     let acc = accurate_runs.clone();
//!     let apx = approx_runs.clone();
//!     rt.task(move || { acc.fetch_add(1, Ordering::Relaxed); })
//!         .approx(move || { apx.fetch_add(1, Ordering::Relaxed); })
//!         .significance(((i % 9) + 1) as f64 / 10.0)
//!         .group(&group)
//!         .spawn();
//! }
//! rt.wait_group(&group);
//! let stats = rt.group_stats(&group);
//! assert_eq!(stats.total(), 100);
//! assert!(stats.accurate >= 50);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sig_energy::{
    BudgetConfig, BudgetSetpoint, BudgetTarget, PowerModel, SleepState, TransitionCost,
};

use crate::deps::{DepKey, DependenceTracker};
use crate::deque::QueueSet;
use crate::env::{DispatchContext, EnergyReport, ExecutionEnv, Governor, NominalGovernor};
use crate::faults::{FaultAction, FaultPlan};
use crate::group::{GroupId, GroupRegistry, GroupState, TaskGroup};
use crate::handle::{HandleCore, HandleNotify, SpawnHandle, TaskOutcome};
use crate::policy::{gtb_classify, LqhState, Policy};
use crate::significance::Significance;
use crate::stats::{GroupStatsSnapshot, OutcomeSummary, RuntimeStats};
use crate::sync::{CachePadded, EventCount, Parker};
use crate::task::{CancelToken, ExecutionMode, Task, TaskBody, TaskId};

/// Issues a unique id per runtime so the worker thread-local below can tell
/// which runtime (if any) the current thread belongs to.
static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(runtime id, worker index)` of the current thread, if it is a worker.
    /// Id `0` is never issued, so the default means "not a worker".
    static CURRENT_WORKER: Cell<(u64, usize)> = const { Cell::new((0, 0)) };
}

/// Builder for [`Runtime`] instances.
#[derive(Clone, Default)]
pub struct RuntimeBuilder {
    workers: Option<usize>,
    policy: Policy,
    pin_hint: bool,
    energy_model: Option<PowerModel>,
    governor: Option<Arc<dyn Governor>>,
    sleep_state: Option<SleepState>,
    transition_cost: Option<TransitionCost>,
    queue_watermark: Option<usize>,
    miss_watermark: Option<f64>,
    fault_plan: Option<FaultPlan>,
    energy_budget: Option<BudgetConfig>,
}

impl std::fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("workers", &self.workers)
            .field("policy", &self.policy)
            .field("pin_hint", &self.pin_hint)
            .field("energy_model", &self.energy_model)
            .field("governor", &self.governor.as_ref().map(|g| g.name()))
            .field("sleep_state", &self.sleep_state)
            .field("transition_cost", &self.transition_cost)
            .field("queue_watermark", &self.queue_watermark)
            .field("miss_watermark", &self.miss_watermark)
            .field("fault_plan", &self.fault_plan)
            .field("energy_budget", &self.energy_budget)
            .finish()
    }
}

impl RuntimeBuilder {
    /// Number of worker threads. Defaults to the host's available
    /// parallelism.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a runtime needs at least one worker");
        self.workers = Some(workers);
        self
    }

    /// The execution policy (default: [`Policy::SignificanceAgnostic`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Advisory flag mirroring the paper's thread pinning. Thread affinity is
    /// platform-specific and not required for correctness; the flag is kept
    /// so experiment configurations can record the intent.
    pub fn pin_threads(mut self, pin: bool) -> Self {
        self.pin_hint = pin;
        self
    }

    /// Power model used by the runtime's energy accounting (default:
    /// [`PowerModel::for_host`]).
    pub fn energy_model(mut self, model: PowerModel) -> Self {
        self.energy_model = Some(model);
        self
    }

    /// Frequency governor mapping each task's significance/policy decision
    /// to a DVFS step at dispatch time (default: [`NominalGovernor`], i.e.
    /// no frequency scaling).
    pub fn governor(mut self, governor: impl Governor + 'static) -> Self {
        self.governor = Some(Arc::new(governor));
        self
    }

    /// [`RuntimeBuilder::governor`] for an already-shared governor.
    pub fn governor_arc(mut self, governor: Arc<dyn Governor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Sleep state race-to-idle residency is priced at (default: none —
    /// residency is priced like ordinary shallow idle, with no static
    /// gating and free wakeups). Pair a deep state with a
    /// [`crate::env::RaceToIdleGovernor`] or [`crate::env::AdaptiveGovernor`]
    /// to model "finish fast, sleep deep" execution.
    pub fn sleep_state(mut self, state: SleepState) -> Self {
        self.sleep_state = Some(state);
        self
    }

    /// Cost charged per DVFS frequency-domain switch (default:
    /// [`TransitionCost::free`], the idealised pre-transition-model
    /// accounting). Set [`TransitionCost::typical`] to make governor
    /// thrashing visible in the energy report.
    pub fn transition_cost(mut self, cost: TransitionCost) -> Self {
        self.transition_cost = Some(cost);
        self
    }

    /// Queue depth (issued but not yet started tasks) at which the brownout
    /// overload controller begins shedding approximate-tier work (default:
    /// disabled). The shed threshold grows linearly with the overshoot: at
    /// twice the watermark every sub-critical task the policy decided to run
    /// approximately is shed. Accurate-decided and critical tasks are never
    /// shed.
    pub fn queue_watermark(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue watermark must be positive");
        self.queue_watermark = Some(depth);
        self
    }

    /// Deadline-miss rate (fraction of completed tasks that finished past
    /// their deadline, in `[0, 1]`) above which the overload controller
    /// sheds every sub-critical approximate-tier task (default: disabled).
    pub fn deadline_miss_watermark(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "deadline-miss watermark must be a finite rate in [0, 1], got {rate}"
        );
        self.miss_watermark = Some(rate);
        self
    }

    /// Deterministic fault-injection plan applied to every non-system task
    /// (default: none). Chaos-testing hook; see [`FaultPlan`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enforce an online energy budget (default: none). A
    /// [`sig_energy::BudgetController`] samples the runtime's own
    /// [`Runtime::energy_report_at`] deltas from the execute path (amortised,
    /// like the brownout controller) and re-targets two knobs from what it
    /// *observes* rather than what the power model predicts: a
    /// multiplicative throttle on every group's accurate-task ratio (groups
    /// pinned at ratio 1.0 are exempt — critical work is never degraded) and
    /// a frequency cap on approximate dispatches via
    /// [`ExecutionEnv::set_dispatch_cap`]. With no budget configured the
    /// dispatch path is bit-for-bit identical to previous releases.
    pub fn energy_budget(mut self, config: BudgetConfig) -> Self {
        self.energy_budget = Some(config);
        self
    }

    /// Construct the runtime and start its worker threads.
    pub fn build(self) -> Runtime {
        Runtime::start(self)
    }
}

/// Brownout overload controller: build-time watermarks plus the current shed
/// threshold, recomputed amortised (every [`OverloadState::TICK_MASK`]` + 1`
/// executes per worker) from queue depth and the deadline-miss rate.
struct OverloadState {
    /// Queue depth at which shedding starts (`usize::MAX` = disabled).
    queue_watermark: usize,
    /// Deadline-miss fraction above which every sub-critical approximate
    /// tier is shed (`INFINITY` = disabled).
    miss_watermark: f64,
    /// Current shed threshold in `[0, 1]`, stored as `f64` bits so the
    /// execution hot path reads it with one relaxed load. Tasks the policy
    /// decided to run non-accurately shed iff their significance is strictly
    /// below the threshold; `0.0` therefore disables shedding outright. On
    /// its own cache line: read by every worker, written only on recompute.
    shed_bits: CachePadded<AtomicU64>,
    /// Precomputed "any watermark configured" flag: the disabled-runtime
    /// cost of the controller is this one byte load per execute.
    enabled: bool,
}

impl OverloadState {
    /// Recompute the shed threshold once per this many + 1 executes *per
    /// worker* (the tick counters live in worker-local memory).
    const TICK_MASK: usize = 31;

    fn new(queue_watermark: Option<usize>, miss_watermark: Option<f64>) -> Self {
        let queue_watermark = queue_watermark.unwrap_or(usize::MAX);
        let miss_watermark = miss_watermark.unwrap_or(f64::INFINITY);
        OverloadState {
            queue_watermark,
            miss_watermark,
            shed_bits: CachePadded::new(AtomicU64::new(0.0f64.to_bits())),
            enabled: queue_watermark != usize::MAX || miss_watermark.is_finite(),
        }
    }

    /// Whether any watermark was configured.
    fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current shed threshold; one relaxed load.
    fn threshold(&self) -> f64 {
        f64::from_bits(self.shed_bits.load(Ordering::Relaxed))
    }

    /// Whether the controller currently sheds anything at all.
    fn is_overloaded(&self) -> bool {
        self.threshold() > 0.0
    }
}

/// Online energy-budget loop state: the controller plus its sampling pacing.
/// Amortised like [`OverloadState`]: every `TICK_MASK + 1` executes per
/// worker one worker *tries* to take the turn (`try_lock`, never blocking
/// the execute path), and takes a sample only once the minimum interval has
/// elapsed — so tiny tasks don't oversample and idle periods are simply
/// sampled at the next execute.
struct BudgetState {
    inner: Mutex<BudgetInner>,
}

struct BudgetInner {
    controller: sig_energy::BudgetController,
    /// Next sample time, nanoseconds since runtime start.
    next_sample_nanos: u64,
    interval_nanos: u64,
    setpoint: BudgetSetpoint,
}

impl BudgetState {
    /// Attempt a budget sample once per this many + 1 executes per worker.
    const TICK_MASK: usize = 31;

    fn new(config: BudgetConfig) -> Self {
        // Sample pacing: ~1/200th of the horizon for joule budgets (enough
        // observations to converge well inside the tolerance band), 1 ms for
        // open-ended watt envelopes; clamped to [50 µs, 50 ms].
        let interval_seconds = match config.target {
            BudgetTarget::TotalJoules {
                horizon_seconds, ..
            } => (horizon_seconds / 200.0).clamp(50e-6, 50e-3),
            BudgetTarget::WattEnvelope { .. } => 1e-3,
        };
        BudgetState {
            inner: Mutex::new(BudgetInner {
                controller: sig_energy::BudgetController::new(config),
                next_sample_nanos: 0,
                interval_nanos: (interval_seconds * 1e9) as u64,
                setpoint: BudgetSetpoint::unconstrained(config.target.planned_watts(0.0, 0.0)),
            }),
        }
    }
}

/// Shared state between the master, the workers and the public handle.
struct RuntimeInner {
    id: u64,
    policy: Policy,
    queues: QueueSet,
    groups: GroupRegistry,
    /// The implicit global group, cached so unlabeled spawns skip the
    /// registry lock.
    global_group: Arc<GroupState>,
    tracker: DependenceTracker,
    stats: RuntimeStats,
    /// Per-worker DVFS frequency domains and energy accounting shards.
    env: ExecutionEnv,
    /// Runtime creation time, the start of the energy-accounting window.
    started: Instant,
    next_task_id: AtomicU64,
    /// Tasks spawned and not yet completed, across all groups. A single
    /// counter (not a sum over groups): `wait_all` must observe spawn and
    /// completion atomically even when a task body spawns children into
    /// other groups mid-barrier.
    outstanding: AtomicUsize,
    /// Brownout overload controller (watermarks + current shed threshold).
    overload: OverloadState,
    /// Online energy-budget loop, if `RuntimeBuilder::energy_budget` was set.
    budget: Option<BudgetState>,
    /// Deterministic fault-injection plan, if chaos testing is enabled.
    faults: Option<FaultPlan>,
    /// Cancelled task-id ranges (`cancel_tasks`). Cold master-side state; the
    /// execution hot path checks `cancel_active` (one load) before touching
    /// the lock.
    cancel_ranges: Mutex<Vec<(u64, u64)>>,
    /// Whether any id-range cancellation was ever requested.
    cancel_active: AtomicBool,
    shutdown: AtomicBool,
    /// One parker per worker for targeted wakeups.
    parkers: Box<[Parker]>,
    /// Number of workers currently in (or entering) a park.
    sleepers: AtomicUsize,
    /// Barrier for `wait_all`: notified when `outstanding` hits zero.
    idle_barrier: EventCount,
    /// Barrier for `wait_on`: notified whenever a writing task completes.
    writes_barrier: EventCount,
}

impl RuntimeInner {
    /// Worker index of the calling thread, if it belongs to this runtime.
    fn local_worker(&self) -> Option<usize> {
        let (id, index) = CURRENT_WORKER.get();
        (id == self.id).then_some(index)
    }

    /// Amortised overload recomputation, called from the execute path (the
    /// only place the shed threshold is consumed, so spawn-side ticks would
    /// buy nothing: a stale threshold while nothing executes is harmless).
    /// `tick` is the calling worker's private counter, threaded down from
    /// its run loop — most calls are one increment of worker-local memory
    /// with no shared-line traffic at all; every `TICK_MASK + 1`-th call
    /// per worker recomputes the shed threshold from the current queue
    /// depth and deadline-miss rate.
    fn overload_tick(&self, t: usize) {
        let overload = &self.overload;
        if !overload.enabled() {
            return;
        }
        if t & OverloadState::TICK_MASK != 0 {
            return;
        }
        let mut pressure = 0.0f64;
        if overload.queue_watermark != usize::MAX {
            let depth = self.queues.total_queued();
            if depth > overload.queue_watermark {
                let watermark = overload.queue_watermark.max(1) as f64;
                pressure = ((depth - overload.queue_watermark) as f64 / watermark).clamp(0.0, 1.0);
            }
        }
        if overload.miss_watermark.is_finite() {
            let completed = self.stats.completed();
            if completed > 0 {
                let rate = self.stats.deadline_misses() as f64 / completed as f64;
                if rate > overload.miss_watermark {
                    pressure = 1.0;
                }
            }
        }
        overload
            .shed_bits
            .store(pressure.to_bits(), Ordering::Relaxed);
    }

    /// Amortised energy-budget sample, called from the execute path next to
    /// [`RuntimeInner::overload_tick`]. `try_lock` keeps it wait-free for
    /// every worker but the one taking the sample; the minimum-interval
    /// check inside makes the sampling rate task-size independent.
    fn budget_tick(&self, t: usize) {
        let Some(budget) = &self.budget else { return };
        if t & BudgetState::TICK_MASK != 0 {
            return;
        }
        let Ok(mut inner) = budget.inner.try_lock() else {
            return;
        };
        let elapsed = self.started.elapsed();
        let now_nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        if now_nanos < inner.next_sample_nanos {
            return;
        }
        inner.next_sample_nanos = now_nanos + inner.interval_nanos;
        let wall = elapsed.as_secs_f64();
        let reading = self.env.report(wall, self.parkers.len()).reading();
        let setpoint = inner.controller.observe(wall, &reading);
        inner.setpoint = setpoint;
        drop(inner);
        self.apply_budget_setpoint(&setpoint);
    }

    /// Push a controller setpoint into the two actuators: the environment's
    /// approximate-dispatch frequency cap and every group's budget throttle
    /// (groups at ratio 1.0 are exempt inside `effective_ratio`).
    fn apply_budget_setpoint(&self, setpoint: &BudgetSetpoint) {
        self.env
            .set_dispatch_cap(setpoint.frequency_cap.clamp(0.05, 1.0));
        for group in self.groups.all() {
            group.set_budget_scale(setpoint.ratio_scale);
        }
    }

    /// Whether `id` falls in a range cancelled via `Runtime::cancel_tasks`.
    fn id_cancelled(&self, id: TaskId) -> bool {
        if !self.cancel_active.load(Ordering::Acquire) {
            return false;
        }
        self.cancel_ranges
            .lock()
            .unwrap()
            .iter()
            .any(|&(start, end)| (start..end).contains(&id.0))
    }

    /// Abandon a task without running either body: drop the bodies, poison
    /// its written keys so dependents observe the failure, account it as
    /// shed (brownout) or cancelled, and run the full completion protocol —
    /// abandoned tasks still release successors and barriers, keeping the
    /// exactly-once accounting `spawned == completed + cancelled + shed +
    /// panicked` intact.
    fn abandon(&self, task: &Arc<Task>, worker: usize, shed: bool) {
        // SAFETY: this worker dequeued the task and is its unique executor.
        unsafe {
            drop(task.take_accurate());
            drop(task.take_approximate());
        }
        if !task.out_keys.is_empty() {
            self.tracker.poison_writes(&task.out_keys);
        }
        if shed {
            self.stats.record_shed(worker, task.significance.level());
            task.notify_handle(TaskOutcome::Shed);
        } else {
            task.request_cancel();
            self.stats.record_cancelled(worker);
            task.notify_handle(TaskOutcome::Cancelled);
        }
        self.complete(task);
    }

    /// Try to move a task into a worker queue. A task is enqueued exactly
    /// once, as soon as it is both *released* (by the master / a GTB flush)
    /// and *ready* (all predecessors completed).
    fn try_enqueue(&self, task: &Arc<Task>) {
        if task.is_released() && task.is_ready() && task.claim_enqueue() {
            let target = self.queues.push(task.clone(), self.local_worker());
            self.wake_for_push(target);
        }
    }

    /// Wake the worker whose queue just received work; if it is already
    /// running, wake one sleeper instead so the task is stealable without
    /// delay. Both checks are single atomic loads when everyone is busy —
    /// no broadcast, no mutex.
    fn wake_for_push(&self, target: usize) {
        if self.parkers[target].unpark_if_sleeping() {
            return;
        }
        self.wake_one_sleeper(usize::MAX);
    }

    /// Wake one sleeping worker other than `except` (pass `usize::MAX` for
    /// no exclusion). A single atomic load when nobody sleeps.
    fn wake_one_sleeper(&self, except: usize) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        for (index, parker) in self.parkers.iter().enumerate() {
            if index != except && parker.unpark_if_sleeping() {
                return;
            }
        }
    }

    /// One coalesced wake for a whole injected batch: scan the `touched`
    /// consecutive workers whose queues just received a chunk (a cheap flag
    /// load each when they are already running) and unpark **the first
    /// sleeping one only**; if none of them sleeps, wake one other sleeper
    /// so the batch is stealable without delay. A single unpark replaces
    /// one `wake_for_push` per task — the dominant syscall cost of
    /// fine-grained floods. The rest of the pool is woken by *propagation*:
    /// every steal that deposits surplus work (and every spill refill)
    /// wakes one further sleeper, spreading a large batch geometrically
    /// without the master paying one syscall per worker.
    ///
    /// Spill-overflowed targets additionally get a directed unpark each:
    /// thieves *can* rescue a spill (via the consumer token), but the owner
    /// drains it with the best locality and without waiting for an idle
    /// thief to happen upon it.
    fn wake_for_batch(&self, push: &crate::deque::BatchPush) {
        for &target in &push.spilled {
            self.parkers[target].unpark_if_sleeping();
        }
        let count = self.parkers.len();
        for offset in 0..push.touched.min(count) {
            if self.parkers[(push.first + offset) % count].unpark_if_sleeping() {
                return;
            }
        }
        self.wake_one_sleeper(usize::MAX);
    }

    /// Flushes at or above this size fan the decide/release/enqueue sweep
    /// out to the workers instead of running it on the flushing thread.
    /// Classification itself is a cheap O(n + levels) histogram scan (see
    /// [`gtb_classify`]); the sweep — two atomic RMWs, a queue push and a
    /// possible wakeup per task — is what dominates large Max-Buffer
    /// flushes.
    const PARALLEL_FLUSH_MIN: usize = 4096;
    /// Tasks released per worker chunk in a parallel flush.
    const FLUSH_CHUNK: usize = 1024;

    /// GTB flush: classify the buffered tasks of `group`, then release them.
    fn flush_tasks(self: &Arc<Self>, group: &GroupState, tasks: Vec<Arc<Task>>) {
        if tasks.is_empty() {
            return;
        }
        self.stats.record_flush();
        let significances: Vec<Significance> = tasks.iter().map(|t| t.significance).collect();
        let decisions = gtb_classify(&significances, group.effective_ratio());
        if tasks.len() < Self::PARALLEL_FLUSH_MIN {
            Self::release_classified(self, &tasks, &decisions);
            return;
        }
        // Large-group flush: classification decisions are already fixed, so
        // chunks of the release sweep are independent — spawn them onto the
        // workers as internal system tasks. The group barrier stays correct
        // without waiting on the chunks themselves: every buffered task
        // already counts in the group's `outstanding`, and can only complete
        // after its chunk releases it.
        let mut tasks = tasks;
        let mut decisions = decisions;
        while tasks.len() > Self::FLUSH_CHUNK {
            let split = tasks.len() - Self::FLUSH_CHUNK;
            let chunk_tasks = tasks.split_off(split);
            let chunk_decisions = decisions.split_off(split);
            let inner = self.clone();
            self.spawn_system(move || {
                RuntimeInner::release_classified(&inner, &chunk_tasks, &chunk_decisions);
            });
        }
        Self::release_classified(self, &tasks, &decisions);
    }

    /// Apply pre-computed GTB decisions and hand the tasks to the workers.
    fn release_classified(self: &Arc<Self>, tasks: &[Arc<Task>], decisions: &[bool]) {
        for (task, accurate) in tasks.iter().zip(decisions) {
            task.decide(*accurate);
        }
        for task in tasks {
            task.release();
            self.try_enqueue(task);
        }
    }

    /// Enqueue a runtime-internal helper task. It participates in the
    /// outstanding counters (so `wait_all` and shutdown see it) but not in
    /// user-facing statistics or energy accounting.
    fn spawn_system(self: &Arc<Self>, body: impl FnOnce() + Send + 'static) {
        let id = TaskId(self.next_task_id.fetch_add(1, Ordering::Relaxed));
        let mut task = Arc::new(Task::new_system(
            id,
            self.global_group.clone(),
            Box::new(body),
        ));
        Arc::get_mut(&mut task)
            .expect("task not yet shared")
            .prime_spawn_enqueued(true);
        // Relaxed: see the invariant note on the `outstanding` bumps in
        // `TaskBuilder::spawn`.
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        self.global_group
            .outstanding
            .fetch_add(1, Ordering::Relaxed);
        let target = self.queues.push(task, self.local_worker());
        self.wake_for_push(target);
    }

    /// Batched submission: prime, count and enqueue a whole slice of
    /// footprint-free tasks with per-*batch* instead of per-task overhead —
    /// one task-id reservation, one bump of each outstanding counter, one
    /// statistics record, one (chunked round-robin) queue pass and one
    /// coalesced wake. Under a buffering (GTB) policy the batch lands in
    /// the group buffer with a single lock acquisition instead.
    fn spawn_batch_into(
        self: &Arc<Self>,
        group_state: &Arc<GroupState>,
        items: Vec<BatchTask>,
        deadline_nanos: u64,
        cancel: Option<CancelToken>,
    ) -> TaskIdRange {
        let n = items.len();
        if n == 0 {
            let id = self.next_task_id.load(Ordering::Relaxed);
            return TaskIdRange { next: id, end: id };
        }
        let first = self.next_task_id.fetch_add(n as u64, Ordering::Relaxed);
        // Relaxed: see the invariant note in `TaskBuilder::spawn`.
        self.outstanding.fetch_add(n, Ordering::Relaxed);
        group_state.outstanding.fetch_add(n, Ordering::Relaxed);
        self.stats.record_spawns(n);

        let buffering = self.policy.is_buffering();
        let accurate = matches!(self.policy, Policy::SignificanceAgnostic);
        let mut tasks = Vec::with_capacity(n);
        for (offset, item) in items.into_iter().enumerate() {
            let mut task = Arc::new(Task::new(
                TaskId(first + offset as u64),
                group_state.clone(),
                item.significance,
                item.accurate,
                item.approximate,
                Vec::new(),
                false,
            ));
            // A per-task deadline offset overrides the batch-wide deadline.
            let task_deadline = if item.deadline_nanos != 0 {
                item.deadline_nanos
            } else {
                deadline_nanos
            };
            if !buffering || task_deadline != 0 || cancel.is_some() {
                // Primed through `&mut` before sharing: released + enqueued
                // (+ decided, for the agnostic policy) cost zero atomics,
                // and the batch-wide robustness clauses land for free.
                let t = Arc::get_mut(&mut task).expect("task not yet shared");
                if !buffering {
                    t.prime_spawn_enqueued(accurate);
                }
                t.deadline_nanos = task_deadline;
                t.cancel = cancel.clone();
            }
            tasks.push(task);
        }

        if buffering {
            let capacity = self
                .policy
                .buffer_capacity()
                .expect("buffering policy has a capacity");
            if let Some(flush) = group_state.append_buffered(tasks, capacity) {
                self.flush_tasks(group_state, flush);
            } else {
                self.notify_buffered(group_state);
            }
        } else {
            let push = self.queues.push_batch(tasks, self.local_worker());
            self.wake_for_batch(&push);
        }
        TaskIdRange {
            next: first,
            end: first + n as u64,
        }
    }

    /// Flush the pending GTB buffer of one group.
    fn flush_group(self: &Arc<Self>, group: &GroupState) {
        let tasks = std::mem::take(&mut *group.buffer.lock().unwrap());
        self.flush_tasks(group, tasks);
    }

    /// Entering a barrier hands the caller's "awakeness" to the pool: if
    /// the calling thread is about to block while queued work exists, one
    /// sleeping worker is invited to keep draining. Without this, the
    /// batched injector's single coalesced wake could strand work: the one
    /// woken worker blocks in a *nested* barrier inside a task body, every
    /// other chunk recipient is still parked, and nobody is left awake to
    /// steal the tasks the barrier is waiting for. Each nested wait wakes
    /// one further sleeper, so at least one worker stays awake while any
    /// thread is blocked and work remains. One atomic load when nobody
    /// sleeps.
    fn wake_for_wait(&self) {
        self.wake_one_sleeper(usize::MAX);
    }

    /// Re-flush GTB buffers from inside a barrier predicate. A no-op (no
    /// locks) for non-buffering policies, whose buffers are always empty.
    fn flush_all_groups_if_buffering(self: &Arc<Self>) {
        if self.policy.is_buffering() {
            self.flush_all_groups();
        }
    }

    /// A spawn left tasks sitting in a GTB buffer: nudge every barrier that
    /// could be blocked on them so its predicate — which re-flushes the
    /// buffers — runs. Without this, a spawn issued *during* a barrier
    /// (e.g. from an executing task body) could stay buffered forever: the
    /// buffered tasks are already counted outstanding, so no completion
    /// will ever bring the counter to zero and fire the notify itself.
    /// Three atomic loads when no barrier waits.
    fn notify_buffered(&self, group: &GroupState) {
        group.barrier.notify();
        self.idle_barrier.notify();
        self.writes_barrier.notify();
    }

    /// Flush the GTB buffers of every group (used by global barriers).
    fn flush_all_groups(self: &Arc<Self>) {
        for group in self.groups.all() {
            self.flush_group(&group);
        }
    }

    /// Execute a task on worker `worker`: make the accuracy decision if it is
    /// still open, run the chosen body, record statistics, then resolve
    /// dependences and barriers. Lock-free on every step.
    fn execute(&self, task: Arc<Task>, worker: usize, lqh: &mut LqhState, tick: &mut usize) {
        if task.system {
            // Internal helper tasks (e.g. parallel GTB flush chunks) skip
            // policy, DVFS, statistics, cancellation and fault injection
            // entirely.
            // SAFETY: as below — this worker is the task's unique executor.
            if let Some(body) = unsafe { task.take_accurate() } {
                self.run_body(body);
            }
            self.complete(&task);
            return;
        }
        // Cooperative cancellation: a task cancelled before it starts (via
        // its token, its group or an id-range cancel) is skipped entirely.
        if task.cancel_requested() || self.id_cancelled(task.id) {
            self.abandon(&task, worker, false);
            return;
        }
        let accurate = match task.decision() {
            Some(decision) => decision,
            None => match self.policy {
                Policy::Lqh => lqh.decide(
                    task.group_id(),
                    task.significance,
                    task.group_state.effective_ratio(),
                ),
                // The significance-agnostic runtime and any GTB task that
                // somehow reaches a worker undecided run accurately: the
                // conservative choice never degrades output quality.
                _ => true,
            },
        };

        // Brownout shedding: under overload, drop work strictly in
        // significance order — only tasks the policy already decided to run
        // non-accurately, never critical ones, lowest significance first
        // (the threshold rises with queue pressure).
        let t = *tick;
        *tick = t.wrapping_add(1);
        self.overload_tick(t);
        self.budget_tick(t);
        let shed_threshold = self.overload.threshold();
        if shed_threshold > 0.0
            && !accurate
            && !task.significance.is_critical()
            && task.significance.value() < shed_threshold
        {
            self.abandon(&task, worker, true);
            return;
        }

        // Deterministic fault injection (chaos testing only; `faults` is
        // `None` in production configurations).
        let fault = self.faults.as_ref().and_then(|plan| plan.decide(task.id.0));
        if let Some(FaultAction::Stall(pause)) = fault {
            // A stalled worker: the pause happens before the timed window so
            // it distorts schedules, not per-task busy accounting.
            std::thread::sleep(pause);
        }
        let inject_panic = matches!(fault, Some(FaultAction::Panic));

        // One clock read serves the whole dispatch: the timed window opens
        // here, and the deadline checks below are pure arithmetic on it.
        let start = Instant::now();

        // A task whose deadline is endangered (already past, or any deadline
        // while the runtime is overloaded) races to nominal frequency: the
        // governor's scaling decision is overridden at dispatch.
        let deadline = task.deadline_nanos;
        let started_nanos = (start - self.started).as_nanos() as u64;
        let deadline_pressure =
            deadline != 0 && (self.overload.is_overloaded() || started_nanos >= deadline);

        // Pick the energy strategy for this dispatch: approximate tasks may
        // run under a lower modelled frequency, or race at nominal and bank
        // the slack as sleep residency (zero atomics for the default nominal
        // governor, lock-free always).
        let decision = self.env.dispatch(
            worker,
            &DispatchContext {
                worker,
                significance: task.significance,
                accurate,
                policy: self.policy,
                group_ratio: task.group_state.effective_ratio(),
                deadline_pressure,
            },
        );
        // SAFETY (all `take_*` calls below): this worker won `claim_enqueue`
        // and dequeued the task, making it the unique executor; nothing else
        // touches the body cells after spawn.
        let (mode, ok) = if accurate {
            let body = unsafe { task.take_accurate() };
            (
                ExecutionMode::Accurate,
                self.run_or_inject(body, inject_panic),
            )
        } else {
            match unsafe { task.take_approximate() } {
                Some(body) => (
                    ExecutionMode::Approximate,
                    self.run_or_inject(Some(body), inject_panic),
                ),
                None => (ExecutionMode::Dropped, !inject_panic),
            }
        };
        if let Some(FaultAction::Dilate(extra)) = fault {
            // Dilated execution: the task "runs long", inside the timed
            // window, endangering deadlines downstream.
            std::thread::sleep(extra);
        }
        let busy = start.elapsed();

        // Drop whichever body was not executed *before* completion is
        // signalled, so resources captured by it (for example
        // `SharedGrid` region writers shared between the accurate and the
        // approximate closure) are released by the time a barrier returns.
        unsafe {
            drop(task.take_accurate());
            drop(task.take_approximate());
        }

        if deadline != 0 && started_nanos + busy.as_nanos() as u64 > deadline {
            self.stats.record_deadline_miss(worker);
        }

        if ok {
            // Transitive poison: a task that read a poisoned key produced
            // output derived from failed data — its own writes are suspect.
            if !task.out_keys.is_empty()
                && task.in_keys.iter().any(|&k| self.tracker.is_poisoned(k))
            {
                self.tracker.poison_writes(&task.out_keys);
            }
            self.stats.record_execution(worker, mode, busy);
            self.env.record(worker, mode, busy, decision);
            task.group_state
                .stats
                .record(worker, task.significance.level(), mode);
            task.notify_handle(TaskOutcome::Completed(mode));
        } else {
            // The body panicked: mark the task, poison its written keys
            // *before* completion releases any dependent, and account it
            // under `panicked` (not `completed`).
            task.mark_panicked();
            if !task.out_keys.is_empty() {
                self.tracker.poison_writes(&task.out_keys);
            }
            self.stats.record_panicked(worker, busy);
            self.env.record(worker, mode, busy, decision);
            task.group_state.stats.record_panicked(worker);
            task.notify_handle(TaskOutcome::Panicked);
        }
        self.complete(&task);
    }

    /// Run a body (catching panics so one failing task cannot take a worker
    /// thread down), or simulate an injected panic by dropping it. Returns
    /// whether the task succeeded.
    fn run_or_inject(&self, body: Option<TaskBody>, inject_panic: bool) -> bool {
        match body {
            Some(body) if inject_panic => {
                drop(body);
                false
            }
            Some(body) => self.run_body(body),
            None => true,
        }
    }

    /// Run a task body, catching panics. Returns `true` on success.
    fn run_body(&self, body: TaskBody) -> bool {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).is_ok()
    }

    /// Post-execution bookkeeping: wake successors, update dependence and
    /// group counters, and signal barriers. The barrier notifications cost
    /// one atomic load each unless a `taskwait` is actually blocked.
    fn complete(&self, task: &Arc<Task>) {
        // Footprint-free tasks can never have successors (only tasks that
        // declared keys enter the dependence tracker), so the seal and the
        // tracker are skipped entirely.
        if task.footprint {
            let successors = task.successors.seal();
            task.mark_completed();
            for successor in successors {
                // SeqCst: pairs with `Task::release` + `is_ready` on the
                // GTB-flush side (see Task::release).
                if successor.pending_deps.fetch_sub(1, Ordering::SeqCst) == 1 {
                    self.try_enqueue(&successor);
                }
            }
            if !task.out_keys.is_empty() {
                self.tracker.complete_writes(&task.out_keys);
                self.writes_barrier.notify();
            }
        } else {
            task.mark_completed();
        }
        let group = &task.group_state;
        if group.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            group.barrier.notify();
        }
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.idle_barrier.notify();
        }
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        /// Idle rounds spent spinning (multicore: let an in-flight push land)
        /// before yielding.
        const SPIN_ROUNDS: u32 = 4;
        /// Further idle rounds spent yielding (giving producers the core)
        /// before actually parking. Keeping the worker officially awake
        /// through short work gaps means producers skip the futex wake —
        /// without this, fine-grained streams degenerate into one
        /// park/unpark round trip per task.
        const YIELD_ROUNDS: u32 = 20;

        self.parkers[index].register();
        CURRENT_WORKER.set((self.id, index));
        let mut lqh = LqhState::new();
        // Worker-private overload tick counter (see `overload_tick`).
        let mut overload_tick = 0usize;
        let mut idle_rounds = 0u32;
        loop {
            let popped = self.queues.pop_local(index);
            if popped.refilled {
                // A spill refill just published stealable work on this
                // worker's deque: invite one sleeper to share the backlog.
                self.wake_one_sleeper(index);
            }
            if let Some(task) = popped.task {
                idle_rounds = 0;
                self.execute(task, index, &mut lqh, &mut overload_tick);
                continue;
            }
            // Steal-half: the oldest victim task is returned, the rest of
            // the claimed half now sits on this worker's own deque.
            if let Some(task) = self.queues.steal(index) {
                idle_rounds = 0;
                self.stats.record_steal(index);
                if self.queues.has_local_backlog(index) {
                    // The steal deposited surplus stealable work: propagate
                    // the wake so a large batch fans out geometrically
                    // (the batched injector only unparks one worker).
                    self.wake_one_sleeper(index);
                }
                self.execute(task, index, &mut lqh, &mut overload_tick);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if idle_rounds < SPIN_ROUNDS {
                idle_rounds += 1;
                for _ in 0..1 << (4 + idle_rounds) {
                    std::hint::spin_loop();
                }
                continue;
            }
            if idle_rounds < SPIN_ROUNDS + YIELD_ROUNDS {
                idle_rounds += 1;
                std::thread::yield_now();
                continue;
            }
            // Sleep protocol (no timed polling): announce intent, re-check
            // every queue, then park. A producer pushes before it loads the
            // sleep flag, so either the re-check sees the task or the
            // producer sees the flag and unparks — never neither.
            let parker = &self.parkers[index];
            parker.prepare_park();
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.queues.any_work() || self.shutdown.load(Ordering::SeqCst) {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                parker.cancel();
                continue;
            }
            std::thread::park();
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            parker.cancel();
            idle_rounds = 0;
        }
    }
}

/// The significance-aware task runtime (public handle).
///
/// Dropping the runtime waits for all outstanding tasks (flushing any GTB
/// buffers first) and then joins the worker threads.
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Start building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Convenience constructor: default worker count with the given policy.
    pub fn with_policy(policy: Policy) -> Runtime {
        Runtime::builder().policy(policy).build()
    }

    fn start(builder: RuntimeBuilder) -> Runtime {
        let workers = builder.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let policy = builder.policy;
        let model = builder.energy_model.unwrap_or_else(PowerModel::for_host);
        let governor = builder
            .governor
            .unwrap_or_else(|| Arc::new(NominalGovernor));
        let groups = GroupRegistry::new(workers + 1);
        let global_group = groups.get(GroupId::GLOBAL);
        let inner = Arc::new(RuntimeInner {
            id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
            policy,
            queues: QueueSet::new(workers),
            groups,
            global_group,
            tracker: DependenceTracker::new(),
            stats: RuntimeStats::new(workers),
            env: ExecutionEnv::new(
                model,
                governor,
                builder.sleep_state,
                builder.transition_cost.unwrap_or_default(),
                workers,
            ),
            started: Instant::now(),
            next_task_id: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            overload: OverloadState::new(builder.queue_watermark, builder.miss_watermark),
            budget: builder.energy_budget.map(BudgetState::new),
            faults: builder.fault_plan,
            cancel_ranges: Mutex::new(Vec::new()),
            cancel_active: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            parkers: (0..workers).map(|_| Parker::default()).collect(),
            sleepers: AtomicUsize::new(0),
            idle_barrier: EventCount::default(),
            writes_barrier: EventCount::default(),
        });
        let handles = (0..workers)
            .map(|index| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("sig-worker-{index}"))
                    .spawn(move || inner.worker_loop(index))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime {
            inner,
            workers: handles,
        }
    }

    /// The policy this runtime applies.
    pub fn policy(&self) -> Policy {
        self.inner.policy
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// Whole-runtime execution statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.inner.stats
    }

    /// Tasks spawned but not yet terminal (queued, buffered or executing) —
    /// the queue-depth signal serving-layer admission control keys on.
    pub fn outstanding_tasks(&self) -> usize {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// Energy accounting snapshot built from the per-worker execution
    /// environment shards: measured and DVFS-dilated busy time, dynamic
    /// joules priced at the dispatched frequency, and per-worker frequency
    /// domain state. The wall-clock window runs from runtime creation to
    /// now; callers that measured a makespan themselves (e.g. around a
    /// barrier) should prefer [`Runtime::energy_report_at`], which prices
    /// static and idle power over exactly that window.
    pub fn energy_report(&self) -> EnergyReport {
        self.energy_report_at(self.inner.started.elapsed())
    }

    /// [`Runtime::energy_report`] over an explicitly measured wall-clock
    /// window.
    pub fn energy_report_at(&self, wall: std::time::Duration) -> EnergyReport {
        self.inner.env.report(wall.as_secs_f64(), self.workers())
    }

    /// The power model the runtime's energy accounting prices work with.
    pub fn energy_model(&self) -> &PowerModel {
        self.inner.env.model()
    }

    /// Latest setpoint of the online energy-budget controller, or `None`
    /// when no budget was configured ([`RuntimeBuilder::energy_budget`]).
    pub fn energy_budget_setpoint(&self) -> Option<BudgetSetpoint> {
        let budget = self.inner.budget.as_ref()?;
        Some(budget.inner.lock().unwrap().setpoint)
    }

    /// Force one budget-controller observation right now, bypassing the
    /// amortised execute-path pacing, and return the resulting setpoint
    /// (`None` without a configured budget). Useful around barriers: the
    /// sample prices the full window, so `energy_budget_setpoint` reflects
    /// the final spend.
    pub fn energy_budget_sample(&self) -> Option<BudgetSetpoint> {
        let budget = self.inner.budget.as_ref()?;
        let mut inner = budget.inner.lock().unwrap();
        let elapsed = self.inner.started.elapsed();
        let wall = elapsed.as_secs_f64();
        let reading = self.inner.env.report(wall, self.workers()).reading();
        let setpoint = inner.controller.observe(wall, &reading);
        inner.setpoint = setpoint;
        drop(inner);
        self.inner.apply_budget_setpoint(&setpoint);
        Some(setpoint)
    }

    /// Number of task bodies that panicked. The panics are caught, the tasks
    /// accounted under [`OutcomeSummary::panicked`] (not `completed`), and
    /// any keys they write poisoned — see [`Runtime::is_poisoned`].
    pub fn panicked_tasks(&self) -> usize {
        self.inner.stats.panicked()
    }

    /// Terminal-outcome summary across the whole runtime: every spawned task
    /// ends in exactly one of completed / cancelled / panicked / shed, and
    /// after a barrier the books balance ([`OutcomeSummary::failed`] +
    /// `completed == spawned`).
    pub fn outcomes(&self) -> OutcomeSummary {
        self.inner.stats.outcomes()
    }

    /// Whether `key` was written by a failed (panicked, cancelled or shed)
    /// task, directly or transitively. Poison is sticky: once set, readers
    /// of the key never observe it clean again.
    pub fn is_poisoned(&self, key: DepKey) -> bool {
        self.inner.tracker.is_poisoned(key)
    }

    /// Cooperatively cancel every not-yet-started task in `range` (ids from
    /// a batched spawn). Tasks already executing run to completion; tasks
    /// still queued are abandoned at dequeue time and accounted under
    /// [`OutcomeSummary::cancelled`].
    pub fn cancel_tasks(&self, range: &TaskIdRange) {
        if range.is_empty() {
            return;
        }
        self.inner
            .cancel_ranges
            .lock()
            .unwrap()
            .push((range.next, range.end));
        self.inner.cancel_active.store(true, Ordering::Release);
    }

    /// Cooperatively cancel every not-yet-started task of `group` (current
    /// and future spawns into it). See [`Runtime::cancel_tasks`].
    pub fn cancel_group(&self, group: &TaskGroup) {
        self.inner.groups.get(group.id).request_cancel();
    }

    /// Observability counter: single-key read-only footprint registrations
    /// that the dependence tracker resolved on its lock-free fast path
    /// (multi-key and writing footprints always take the ordered locked
    /// path — see `deps.rs` module docs for the cycle hazard that forces
    /// this). Used by regression tests to pin the fast/slow-path split.
    pub fn tracker_fast_path_reads(&self) -> usize {
        self.inner.tracker.fast_path_reads()
    }

    /// Create (or look up) a task group with the given label and target
    /// accurate-task ratio — the runtime-API equivalent of
    /// `tpc_init_group()`.
    pub fn create_group(&self, label: &str, ratio: f64) -> TaskGroup {
        let state = self.inner.groups.get_or_create(label, Some(ratio));
        TaskGroup {
            id: state.id,
            name: state.name.clone(),
        }
    }

    /// Look up a group previously created with [`Runtime::create_group`]
    /// (or implicitly via [`TaskBuilder::label`]).
    pub fn find_group(&self, label: &str) -> Option<TaskGroup> {
        let state = self.inner.groups.find(label)?;
        Some(TaskGroup {
            id: state.id,
            name: state.name.clone(),
        })
    }

    /// Begin describing a task whose accurate body is `body` — the equivalent
    /// of `#pragma omp task`.
    pub fn task<F>(&self, body: F) -> TaskBuilder<'_>
    where
        F: FnOnce() + Send + 'static,
    {
        TaskBuilder {
            runtime: self,
            accurate: Box::new(body),
            approximate: None,
            significance: Significance::default(),
            group: None,
            in_keys: Vec::new(),
            out_keys: Vec::new(),
            deadline_nanos: 0,
            cancel: None,
            handle: None,
        }
    }

    /// Begin describing a task whose body returns a value, observed through
    /// a [`SpawnHandle`] — the serving-oriented entry point. The handle
    /// resolves exactly once to the task's terminal [`TaskOutcome`]
    /// (completed / panicked / cancelled / shed) with no barrier involved,
    /// and carries the executed body's return value on success.
    ///
    /// ```
    /// use sig_core::{Runtime, TaskOutcome, ExecutionMode};
    ///
    /// let rt = Runtime::builder().workers(2).build();
    /// let handle = rt.submit(|| 6 * 7).spawn();
    /// assert_eq!(
    ///     handle.wait(),
    ///     TaskOutcome::Completed(ExecutionMode::Accurate)
    /// );
    /// assert_eq!(handle.take_value(), Some(42));
    /// ```
    pub fn submit<T, F>(&self, body: F) -> HandledTaskBuilder<'_, T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        HandledTaskBuilder {
            runtime: self,
            accurate: Box::new(body),
            approximate: None,
            significance: Significance::default(),
            group: None,
            deadline_nanos: 0,
            cancel: None,
        }
    }

    /// Start describing a **batch** of tasks submitted through the amortised
    /// injection pipeline: per-batch (not per-task) counter updates,
    /// statistics, sticky round-robin chunked distribution and one coalesced
    /// wake. See [`BatchBuilder`].
    pub fn batch(&self) -> BatchBuilder<'_> {
        BatchBuilder {
            runtime: self,
            group: None,
            significance: Significance::default(),
            tasks: Vec::new(),
            deadline_nanos: 0,
            deadline_offsets: Vec::new(),
            cancel: None,
        }
    }

    /// Submit a pre-built collection of [`BatchTask`]s to the implicit
    /// global group in one batched injection — shorthand for
    /// `self.batch().spawn_tasks(items)`.
    pub fn spawn_batch(&self, items: impl IntoIterator<Item = BatchTask>) -> TaskIdRange {
        self.batch().spawn_tasks(items)
    }

    /// Global barrier (`#pragma omp taskwait`): flush all GTB buffers and
    /// wait until every spawned task has completed.
    ///
    /// Under a buffering policy the flush is repeated before every
    /// predicate re-check: tasks spawned into a buffering group *during*
    /// the barrier (e.g. from an executing task body) would otherwise sit
    /// in the GTB buffer with no master left to flush them, deadlocking
    /// the barrier. (Non-buffering policies skip the re-flush — their
    /// buffers are always empty.)
    pub fn wait_all(&self) -> OutcomeSummary {
        self.inner.flush_all_groups();
        let inner = &self.inner;
        inner.wake_for_wait();
        inner.idle_barrier.wait(|| {
            inner.flush_all_groups_if_buffering();
            inner.outstanding.load(Ordering::SeqCst) == 0
        });
        self.outcomes()
    }

    /// Global barrier with a `ratio(...)` clause: the ratio is applied to the
    /// implicit global group before flushing.
    pub fn wait_all_with_ratio(&self, ratio: f64) -> OutcomeSummary {
        self.inner.global_group.set_ratio(ratio);
        self.wait_all()
    }

    /// Group barrier (`#pragma omp taskwait label(...)`): flush the group's
    /// GTB buffer and wait for its tasks. Re-flushes before every predicate
    /// re-check (see [`Runtime::wait_all`]) so spawns issued from inside
    /// the group's own tasks drain instead of deadlocking the barrier.
    pub fn wait_group(&self, group: &TaskGroup) -> OutcomeSummary {
        let state = self.inner.groups.get(group.id);
        self.inner.flush_group(&state);
        let inner = &self.inner;
        inner.wake_for_wait();
        state.barrier.wait(|| {
            if inner.policy.is_buffering() {
                inner.flush_group(&state);
            }
            state.outstanding.load(Ordering::SeqCst) == 0
        });
        self.outcomes()
    }

    /// Group barrier with a `ratio(...)` clause
    /// (`#pragma omp taskwait label(...) ratio(...)`).
    ///
    /// The ratio is installed before the flush so a Max-Buffer GTB flush and
    /// all still-undecided LQH decisions observe it.
    pub fn wait_group_with_ratio(&self, group: &TaskGroup, ratio: f64) -> OutcomeSummary {
        let state = self.inner.groups.get(group.id);
        state.set_ratio(ratio);
        self.inner.flush_group(&state);
        let inner = &self.inner;
        inner.wake_for_wait();
        state.barrier.wait(|| {
            if inner.policy.is_buffering() {
                inner.flush_group(&state);
            }
            state.outstanding.load(Ordering::SeqCst) == 0
        });
        self.outcomes()
    }

    /// Data barrier (`#pragma omp taskwait on(...)`): wait until every task
    /// that writes `key` has completed. All GTB buffers are flushed first, as
    /// buffered tasks could be writers of `key`.
    pub fn wait_on(&self, key: DepKey) {
        self.inner.flush_all_groups();
        let inner = &self.inner;
        inner.wake_for_wait();
        inner.writes_barrier.wait(|| {
            inner.flush_all_groups_if_buffering();
            inner.tracker.outstanding_writes(key) == 0
        });
    }

    /// Execution statistics of one group (Table 2 inputs).
    pub fn group_stats(&self, group: &TaskGroup) -> GroupStatsSnapshot {
        let state = self.inner.groups.get(group.id);
        state.stats.snapshot(state.ratio())
    }

    /// Execution statistics of every group, labelled by group name.
    pub fn all_group_stats(&self) -> Vec<(String, GroupStatsSnapshot)> {
        self.inner
            .groups
            .all()
            .iter()
            .map(|state| (state.name.to_string(), state.stats.snapshot(state.ratio())))
            .collect()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Make sure nothing is lost in GTB buffers, then stop the workers.
        self.wait_all();
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for parker in self.inner.parkers.iter() {
            parker.unpark_always();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("policy", &self.inner.policy)
            .field("workers", &self.workers.len())
            .field(
                "outstanding",
                &self.inner.outstanding.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// Fluent description of a task before it is spawned — the programming-model
/// clauses of `#pragma omp task` map to the methods of this builder.
#[must_use = "a task builder does nothing until .spawn() is called"]
pub struct TaskBuilder<'rt> {
    runtime: &'rt Runtime,
    accurate: TaskBody,
    approximate: Option<TaskBody>,
    significance: Significance,
    group: Option<GroupId>,
    in_keys: Vec<DepKey>,
    out_keys: Vec<DepKey>,
    deadline_nanos: u64,
    cancel: Option<CancelToken>,
    handle: Option<Arc<dyn HandleNotify>>,
}

impl TaskBuilder<'_> {
    /// `significant(expr)` — the task's significance in `[0.0, 1.0]`.
    pub fn significance(mut self, significance: impl Into<Significance>) -> Self {
        self.significance = significance.into();
        self
    }

    /// `approxfun(function)` — the approximate task body executed when the
    /// runtime opts for a non-accurate computation of the task.
    pub fn approx<F>(mut self, body: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        self.approximate = Some(Box::new(body));
        self
    }

    /// `label(...)` by group handle.
    pub fn group(mut self, group: &TaskGroup) -> Self {
        self.group = Some(group.id);
        self
    }

    /// `label(...)` by name; the group is created with a default ratio of 1.0
    /// if it does not exist yet.
    pub fn label(mut self, label: &str) -> Self {
        let state = self.runtime.inner.groups.get_or_create(label, None);
        self.group = Some(state.id);
        self
    }

    /// `in(...)` — dependence keys this task reads.
    pub fn reads(mut self, keys: impl IntoIterator<Item = DepKey>) -> Self {
        self.in_keys.extend(keys);
        self
    }

    /// `out(...)` — dependence keys this task writes.
    pub fn writes(mut self, keys: impl IntoIterator<Item = DepKey>) -> Self {
        self.out_keys.extend(keys);
        self
    }

    /// `deadline(...)` — relative deadline from now. A task finishing past
    /// its deadline counts a deadline miss; while the runtime is overloaded
    /// (or the deadline already passed at dispatch), the task races to
    /// nominal frequency regardless of the governor's scaling decision.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        let absolute = self.runtime.inner.started.elapsed() + deadline;
        // 0 means "no deadline": clamp real deadlines away from it.
        self.deadline_nanos = (absolute.as_nanos().min(u64::MAX as u128) as u64).max(1);
        self
    }

    /// Attach a cooperative [`CancelToken`]: cancelling the token skips
    /// every not-yet-started task carrying it.
    pub fn cancel_token(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Submit the task to the runtime. Returns the task's id (spawn order).
    pub fn spawn(self) -> TaskId {
        let inner = &self.runtime.inner;
        let group_state = match self.group {
            // Unlabeled tasks take the cached global group: no registry lock
            // on the common spawn path.
            None => inner.global_group.clone(),
            Some(id) if id == GroupId::GLOBAL => inner.global_group.clone(),
            Some(id) => inner.groups.get(id),
        };
        let id = TaskId(inner.next_task_id.fetch_add(1, Ordering::Relaxed));
        let footprint = !(self.in_keys.is_empty() && self.out_keys.is_empty());
        let mut task = Arc::new(Task::new(
            id,
            group_state.clone(),
            self.significance,
            self.accurate,
            self.approximate,
            self.out_keys,
            footprint,
        ));
        {
            // Not yet shared: robustness clauses land through `&mut`, free.
            let t = Arc::get_mut(&mut task).expect("task not yet shared");
            t.in_keys = self.in_keys;
            t.deadline_nanos = self.deadline_nanos;
            t.cancel = self.cancel;
            t.handle = self.handle;
        }

        // Fast path: footprint-free task under a non-buffering policy goes
        // straight to a queue. Its released/enqueued (and, for the agnostic
        // policy, decided) state is primed through `&mut` before the task is
        // ever shared — zero atomic ops, no claim race to arbitrate because
        // `spawn` is the only possible enqueue site.
        if !footprint && !inner.policy.is_buffering() {
            let accurate = matches!(inner.policy, Policy::SignificanceAgnostic);
            Arc::get_mut(&mut task)
                .expect("task not yet shared")
                .prime_spawn_enqueued(accurate);
            // Relaxed is sufficient for both `outstanding` bumps. Invariant:
            // an increment must be observable (a) by the matching
            // `fetch_sub` in `complete`, which RMW coherence orders after it
            // (the sub can only run once the task reached a worker, and the
            // queue handoff's release/acquire edge orders the add before the
            // pop), and (b) by any barrier predicate load *on the spawning
            // thread*, which same-thread coherence guarantees. A barrier on
            // another thread racing this spawn is unordered by construction
            // — it may legitimately return before the spawn lands — so no
            // cross-thread SC fence is load-bearing here. The decrement side
            // stays SeqCst: it pairs with the EventCount register/re-check
            // protocol.
            inner.outstanding.fetch_add(1, Ordering::Relaxed);
            group_state.outstanding.fetch_add(1, Ordering::Relaxed);
            inner.stats.record_spawn();
            let target = inner.queues.push(task, inner.local_worker());
            inner.wake_for_push(target);
            return id;
        }

        // Relaxed: see the invariant note on the fast path above.
        inner.outstanding.fetch_add(1, Ordering::Relaxed);
        group_state.outstanding.fetch_add(1, Ordering::Relaxed);
        inner.stats.record_spawn();

        // Hold one phantom dependence while wiring real ones, so the task
        // cannot be enqueued halfway through registration.
        task.pending_deps.store(1, Ordering::Release);
        if footprint {
            let predecessors = inner.tracker.register(&task, &task.in_keys, &task.out_keys);
            let mut wired = 0usize;
            for predecessor in predecessors {
                // `try_push` fails iff the predecessor already completed
                // (its successor list is sealed): no dependence to count.
                if predecessor.successors.try_push(task.clone()) {
                    wired += 1;
                }
            }
            if wired > 0 {
                task.pending_deps.fetch_add(wired, Ordering::AcqRel);
            }
        }

        match inner.policy {
            Policy::SignificanceAgnostic => {
                task.release_accurate();
            }
            Policy::Lqh => {
                task.release();
            }
            Policy::Gtb { .. } | Policy::GtbMaxBuffer => {
                let capacity = inner
                    .policy
                    .buffer_capacity()
                    .expect("buffering policy has a capacity");
                let mut buffer = group_state.buffer.lock().unwrap();
                buffer.push(task.clone());
                if buffer.len() >= capacity {
                    let tasks = std::mem::take(&mut *buffer);
                    drop(buffer);
                    inner.flush_tasks(&group_state, tasks);
                } else {
                    drop(buffer);
                    inner.notify_buffered(&group_state);
                }
            }
        }

        // Drop the phantom dependence; enqueue if everything is already in
        // place (released + no outstanding predecessors).
        task.pending_deps.fetch_sub(1, Ordering::AcqRel);
        inner.try_enqueue(&task);
        id
    }
}

/// Fluent description of a *handled* task: like [`TaskBuilder`], but the
/// bodies return a value and [`HandledTaskBuilder::spawn`] yields a
/// [`SpawnHandle`] resolving to the task's terminal [`TaskOutcome`]. Created
/// with [`Runtime::submit`].
///
/// Handled tasks are footprint-free by design: they exist for serving-style
/// workloads where completion is observed per request through the handle,
/// not through dependence chains.
#[must_use = "a handled task builder does nothing until .spawn() is called"]
pub struct HandledTaskBuilder<'rt, T> {
    runtime: &'rt Runtime,
    accurate: Box<dyn FnOnce() -> T + Send + 'static>,
    approximate: Option<Box<dyn FnOnce() -> T + Send + 'static>>,
    significance: Significance,
    group: Option<GroupId>,
    deadline_nanos: u64,
    cancel: Option<CancelToken>,
}

impl<T: Send + 'static> HandledTaskBuilder<'_, T> {
    /// `significant(expr)` — the task's significance in `[0.0, 1.0]`.
    pub fn significance(mut self, significance: impl Into<Significance>) -> Self {
        self.significance = significance.into();
        self
    }

    /// `approxfun(function)` — the approximate body. Its return value lands
    /// in the handle exactly like the accurate one's.
    pub fn approx<F>(mut self, body: F) -> Self
    where
        F: FnOnce() -> T + Send + 'static,
    {
        self.approximate = Some(Box::new(body));
        self
    }

    /// `label(...)` by group handle.
    pub fn group(mut self, group: &TaskGroup) -> Self {
        self.group = Some(group.id);
        self
    }

    /// `deadline(...)` — relative deadline from now. See
    /// [`TaskBuilder::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        let absolute = self.runtime.inner.started.elapsed() + deadline;
        self.deadline_nanos = (absolute.as_nanos().min(u64::MAX as u128) as u64).max(1);
        self
    }

    /// Attach a cooperative [`CancelToken`]. See
    /// [`TaskBuilder::cancel_token`].
    pub fn cancel_token(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Submit the task and return its [`SpawnHandle`].
    pub fn spawn(self) -> SpawnHandle<T> {
        let core = Arc::new(HandleCore::new());
        let accurate_core = core.clone();
        let accurate_body = self.accurate;
        let accurate: TaskBody = Box::new(move || accurate_core.put_value(accurate_body()));
        let approximate: Option<TaskBody> = self.approximate.map(|body| {
            let approx_core = core.clone();
            Box::new(move || approx_core.put_value(body())) as TaskBody
        });
        let id = TaskBuilder {
            runtime: self.runtime,
            accurate,
            approximate,
            significance: self.significance,
            group: self.group,
            in_keys: Vec::new(),
            out_keys: Vec::new(),
            deadline_nanos: self.deadline_nanos,
            cancel: self.cancel,
            handle: Some(core.clone() as Arc<dyn HandleNotify>),
        }
        .spawn();
        SpawnHandle::new(core, id)
    }
}

/// One task of a batched spawn: the accurate body plus the optional
/// per-task clauses of the programming model (`approxfun`, `significant`).
///
/// Batched tasks are footprint-free by design: a task declaring `in`/`out`
/// keys needs an individual dependence-tracker registration, which is
/// exactly the per-task cost batching exists to amortise — spawn those
/// through [`Runtime::task`] instead.
#[must_use = "a batch task does nothing until handed to a batch spawn"]
pub struct BatchTask {
    accurate: TaskBody,
    approximate: Option<TaskBody>,
    significance: Significance,
    /// Absolute per-task deadline (nanos since runtime start); `0` means
    /// "inherit the batch-wide deadline". Set through
    /// [`BatchBuilder::deadline_offset`].
    deadline_nanos: u64,
}

impl BatchTask {
    /// A batch task whose accurate body is `body`, at the default (critical)
    /// significance.
    pub fn new<F>(body: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        BatchTask {
            accurate: Box::new(body),
            approximate: None,
            significance: Significance::default(),
            deadline_nanos: 0,
        }
    }

    /// `approxfun(function)` — the approximate body.
    pub fn approx<F>(mut self, body: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        self.approximate = Some(Box::new(body));
        self
    }

    /// `significant(expr)` — the task's significance in `[0.0, 1.0]`.
    pub fn significance(mut self, significance: impl Into<Significance>) -> Self {
        self.significance = significance.into();
        self
    }
}

impl std::fmt::Debug for BatchTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchTask")
            .field("significance", &self.significance)
            .field("has_approx", &self.approximate.is_some())
            .finish()
    }
}

/// The contiguous range of [`TaskId`]s issued to one batched spawn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskIdRange {
    next: u64,
    end: u64,
}

impl TaskIdRange {
    /// The one-element range covering a single spawned task — lets
    /// [`Runtime::cancel_tasks`] address individually spawned tasks (e.g. a
    /// serving layer cancelling every retry generation of one request).
    pub fn single(id: TaskId) -> Self {
        TaskIdRange {
            next: id.0,
            end: id.0 + 1,
        }
    }

    /// Number of tasks the batch spawned.
    #[allow(clippy::len_without_is_empty)] // is_empty is provided below
    pub fn len(&self) -> usize {
        (self.end - self.next) as usize
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.next == self.end
    }
}

impl Iterator for TaskIdRange {
    type Item = TaskId;

    fn next(&mut self) -> Option<TaskId> {
        if self.next == self.end {
            return None;
        }
        let id = TaskId(self.next);
        self.next += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = self.len();
        (len, Some(len))
    }
}

impl ExactSizeIterator for TaskIdRange {}

/// Fluent description of a batched spawn — the amortised counterpart of
/// [`TaskBuilder`]. All tasks of a batch share a group; bodies added through
/// [`BatchBuilder::spawn_all`] share the builder's default significance,
/// while [`BatchTask`] items carry their own clauses.
///
/// The whole batch is injected with **per-batch** master-side overhead: one
/// task-id reservation, one bump of each outstanding counter, one
/// statistics record, one pass of sticky round-robin chunked queue pushes
/// (lock-free end to end) and one coalesced wake. Under a GTB policy the
/// batch enters the group buffer with a single lock acquisition.
///
/// ```
/// use sig_core::{BatchTask, Policy, Runtime};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let rt = Runtime::builder().workers(2).policy(Policy::GtbMaxBuffer).build();
/// let group = rt.create_group("rows", 0.5);
/// let ran = Arc::new(AtomicUsize::new(0));
/// let ids = rt.batch().group(&group).spawn_tasks((0..100u32).map(|i| {
///     let acc = ran.clone();
///     let apx = ran.clone();
///     BatchTask::new(move || { acc.fetch_add(1, Ordering::Relaxed); })
///         .approx(move || { apx.fetch_add(1, Ordering::Relaxed); })
///         .significance(((i % 9) + 1) as f64 / 10.0)
/// }));
/// assert_eq!(ids.len(), 100);
/// rt.wait_group(&group);
/// assert_eq!(ran.load(Ordering::Relaxed), 100);
/// ```
#[must_use = "a batch builder does nothing until a spawn method is called"]
pub struct BatchBuilder<'rt> {
    runtime: &'rt Runtime,
    group: Option<GroupId>,
    significance: Significance,
    tasks: Vec<BatchTask>,
    deadline_nanos: u64,
    deadline_offsets: Vec<(usize, u64)>,
    cancel: Option<CancelToken>,
}

impl BatchBuilder<'_> {
    /// `label(...)` by group handle, for every task of the batch.
    pub fn group(mut self, group: &TaskGroup) -> Self {
        self.group = Some(group.id);
        self
    }

    /// `label(...)` by name; the group is created with a default ratio of
    /// 1.0 if it does not exist yet.
    pub fn label(mut self, label: &str) -> Self {
        let state = self.runtime.inner.groups.get_or_create(label, None);
        self.group = Some(state.id);
        self
    }

    /// Default significance for bodies added through
    /// [`BatchBuilder::spawn_all`] (individual [`BatchTask`]s override it).
    pub fn significance(mut self, significance: impl Into<Significance>) -> Self {
        self.significance = significance.into();
        self
    }

    /// `deadline(...)` — relative deadline from now, applied to every task
    /// of the batch. See [`TaskBuilder::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        let absolute = self.runtime.inner.started.elapsed() + deadline;
        self.deadline_nanos = (absolute.as_nanos().min(u64::MAX as u128) as u64).max(1);
        self
    }

    /// Give the `index`-th task of the batch its own deadline, `offset_nanos`
    /// from now. Batched requests arriving together often carry *distinct*
    /// arrival-relative deadlines (per request class); a batch-wide
    /// [`BatchBuilder::deadline`] cannot express that. Offsets are resolved
    /// to absolute deadlines at spawn time and override the batch-wide
    /// deadline for their task; indexes refer to the final task order (tasks
    /// added before `spawn`, in insertion order) and out-of-range indexes
    /// are ignored.
    pub fn deadline_offset(mut self, index: usize, offset_nanos: u64) -> Self {
        self.deadline_offsets.push((index, offset_nanos));
        self
    }

    /// Attach a cooperative [`CancelToken`] to every task of the batch. See
    /// [`TaskBuilder::cancel_token`].
    pub fn cancel_token(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Add one pre-described task to the batch (loop-friendly form).
    pub fn push(&mut self, task: BatchTask) {
        self.tasks.push(task);
    }

    /// Add one pre-described task to the batch (fluent form).
    pub fn task(mut self, task: BatchTask) -> Self {
        self.tasks.push(task);
        self
    }

    /// Append `items` to the batch and submit everything.
    pub fn spawn_tasks(mut self, items: impl IntoIterator<Item = BatchTask>) -> TaskIdRange {
        self.tasks.extend(items);
        self.spawn()
    }

    /// Append one plain accurate `body` per iterator item — each at the
    /// builder's default significance — and submit everything. The
    /// `TaskBuilder`-compatible spelling for uniform fine-grained floods.
    pub fn spawn_all<I, F>(mut self, bodies: I) -> TaskIdRange
    where
        I: IntoIterator<Item = F>,
        F: FnOnce() + Send + 'static,
    {
        let significance = self.significance;
        self.tasks.extend(
            bodies
                .into_iter()
                .map(|body| BatchTask::new(body).significance(significance)),
        );
        self.spawn()
    }

    /// Submit the batch. Returns the contiguous range of issued task ids.
    pub fn spawn(self) -> TaskIdRange {
        let mut tasks = self.tasks;
        if !self.deadline_offsets.is_empty() {
            let now = self.runtime.inner.started.elapsed().as_nanos() as u64;
            for (index, offset_nanos) in self.deadline_offsets {
                if let Some(task) = tasks.get_mut(index) {
                    // 0 means "no deadline": clamp real deadlines away.
                    task.deadline_nanos = now.saturating_add(offset_nanos).max(1);
                }
            }
        }
        let inner = &self.runtime.inner;
        let group_state = match self.group {
            // Unlabeled batches take the cached global group: no registry
            // lock on the injection path.
            None => inner.global_group.clone(),
            Some(id) if id == GroupId::GLOBAL => inner.global_group.clone(),
            Some(id) => inner.groups.get(id),
        };
        inner.spawn_batch_into(&group_state, tasks, self.deadline_nanos, self.cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;
    use std::time::Duration;

    fn count_runtime(policy: Policy) -> Runtime {
        Runtime::builder().workers(4).policy(policy).build()
    }

    #[test]
    fn builder_defaults() {
        let rt = Runtime::builder().workers(2).build();
        assert_eq!(rt.workers(), 2);
        assert_eq!(rt.policy(), Policy::SignificanceAgnostic);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Runtime::builder().workers(0);
    }

    #[test]
    fn agnostic_runtime_runs_everything_accurately() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let accurate = Arc::new(AtomicUsize::new(0));
        let approx = Arc::new(AtomicUsize::new(0));
        for i in 0..64u32 {
            let a = accurate.clone();
            let b = approx.clone();
            rt.task(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
            .approx(move || {
                b.fetch_add(1, Ordering::Relaxed);
            })
            .significance((i % 10) as f64 / 10.0)
            .spawn();
        }
        rt.wait_all();
        assert_eq!(accurate.load(Ordering::Relaxed), 64);
        assert_eq!(approx.load(Ordering::Relaxed), 0);
        assert_eq!(rt.stats().accurate(), 64);
        assert_eq!(rt.stats().completed(), 64);
    }

    #[test]
    fn gtb_respects_ratio_and_significance() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("g", 0.5);
        let accurate = Arc::new(AtomicUsize::new(0));
        let approx = Arc::new(AtomicUsize::new(0));
        for i in 0..100u32 {
            let a = accurate.clone();
            let b = approx.clone();
            rt.task(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
            .approx(move || {
                b.fetch_add(1, Ordering::Relaxed);
            })
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), 100);
        // Max-buffer GTB has perfect information: the requested ratio is met
        // exactly (within the ceil rounding) and no inversion happens.
        assert!(stats.accurate >= 50 && stats.accurate <= 51, "{stats:?}");
        assert_eq!(stats.inverted, 0);
        assert!(stats.ratio_diff() < 0.02);
    }

    #[test]
    fn gtb_small_buffer_still_tracks_ratio() {
        let rt = count_runtime(Policy::Gtb { buffer_size: 10 });
        let group = rt.create_group("g", 0.3);
        for i in 0..200u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), 200);
        // Each 10-task window is classified independently; the overall ratio
        // still lands on target because windows see the same distribution.
        assert!(
            (stats.achieved_ratio() - 0.3).abs() < 0.1,
            "achieved {}",
            stats.achieved_ratio()
        );
    }

    #[test]
    fn dropped_tasks_have_no_approx_body() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("drop", 0.0);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let r = ran.clone();
            rt.task(move || {
                r.fetch_add(1, Ordering::Relaxed);
            })
            .significance(0.5)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.dropped, 10);
        assert_eq!(
            ran.load(Ordering::Relaxed),
            0,
            "dropped bodies must not run"
        );
    }

    #[test]
    fn lqh_runs_critical_tasks_accurately() {
        let rt = count_runtime(Policy::Lqh);
        let group = rt.create_group("lqh", 0.2);
        let accurate = Arc::new(AtomicUsize::new(0));
        for i in 0..50u32 {
            let a = accurate.clone();
            let sig = if i % 2 == 0 { 1.0 } else { 0.0 };
            rt.task(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
            .approx(|| {})
            .significance(sig)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        // Exactly the 25 critical tasks must have run accurately.
        assert_eq!(accurate.load(Ordering::Relaxed), 25);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.accurate, 25);
        assert_eq!(stats.approximate, 25);
    }

    #[test]
    fn dependencies_order_writer_before_reader() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let key = DepKey::named("value");
        let cell = Arc::new(AtomicUsize::new(0));
        let observed = Arc::new(AtomicUsize::new(0));
        {
            let cell = cell.clone();
            rt.task(move || {
                std::thread::sleep(Duration::from_millis(20));
                cell.store(42, Ordering::SeqCst);
            })
            .writes([key])
            .spawn();
        }
        {
            let cell = cell.clone();
            let observed = observed.clone();
            rt.task(move || {
                observed.store(cell.load(Ordering::SeqCst), Ordering::SeqCst);
            })
            .reads([key])
            .spawn();
        }
        rt.wait_all();
        assert_eq!(observed.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn dependency_chain_executes_in_order() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let key = DepKey::named("chain");
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..16usize {
            let log = log.clone();
            rt.task(move || {
                log.lock().unwrap().push(i);
            })
            .reads([key])
            .writes([key])
            .spawn();
        }
        rt.wait_all();
        let log = log.lock().unwrap().clone();
        assert_eq!(log, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn wait_on_blocks_until_writers_finish() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let key = DepKey::named("result");
        let flag = Arc::new(AtomicBool::new(false));
        {
            let flag = flag.clone();
            rt.task(move || {
                std::thread::sleep(Duration::from_millis(30));
                flag.store(true, Ordering::SeqCst);
            })
            .writes([key])
            .spawn();
        }
        rt.wait_on(key);
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_group_only_waits_for_that_group() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let fast = rt.create_group("fast", 1.0);
        let slow = rt.create_group("slow", 1.0);
        let slow_done = Arc::new(AtomicBool::new(false));
        {
            let slow_done = slow_done.clone();
            rt.task(move || {
                std::thread::sleep(Duration::from_millis(80));
                slow_done.store(true, Ordering::SeqCst);
            })
            .group(&slow)
            .spawn();
        }
        rt.task(|| {}).group(&fast).spawn();
        rt.wait_group(&fast);
        // The slow group may still be running when the fast barrier returns.
        let fast_stats = rt.group_stats(&fast);
        assert_eq!(fast_stats.total(), 1);
        rt.wait_group(&slow);
        assert!(slow_done.load(Ordering::SeqCst));
    }

    #[test]
    fn ratio_at_barrier_controls_max_buffer_flush() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("late-ratio", 1.0);
        for i in 0..40u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        // The ratio arrives only at the barrier, like
        // `#pragma omp taskwait label(...) ratio(0.25)`.
        rt.wait_group_with_ratio(&group, 0.25);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), 40);
        assert_eq!(stats.accurate, 10);
    }

    #[test]
    fn panicking_task_is_contained() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        rt.task(|| panic!("boom")).spawn();
        rt.task(|| {}).spawn();
        let summary = rt.wait_all();
        assert_eq!(rt.panicked_tasks(), 1);
        // A panicked task is a terminal outcome of its own, not `completed`.
        assert_eq!(rt.stats().completed(), 1);
        assert_eq!(summary.spawned, 2);
        assert_eq!(summary.panicked, 1);
        assert_eq!(summary.completed + summary.failed(), summary.spawned);
        assert!(!summary.is_clean());
    }

    #[test]
    fn drop_flushes_and_completes_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let rt = count_runtime(Policy::GtbMaxBuffer);
            let group = rt.create_group("g", 1.0);
            for _ in 0..32 {
                let c = counter.clone();
                rt.task(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .group(&group)
                .spawn();
            }
            // No explicit barrier: dropping the runtime must flush the GTB
            // buffer and run every task.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn stats_expose_steals_and_flushes() {
        let rt = Runtime::builder()
            .workers(4)
            .policy(Policy::Gtb { buffer_size: 4 })
            .build();
        let group = rt.create_group("s", 1.0);
        for _ in 0..64 {
            rt.task(|| std::thread::sleep(Duration::from_micros(200)))
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        assert!(rt.stats().buffer_flushes() >= 16);
        assert!(rt.stats().busy_core_seconds() > 0.0);
    }

    #[test]
    fn large_max_buffer_flush_parallelises_without_stat_pollution() {
        // Above PARALLEL_FLUSH_MIN the release sweep runs as system chunk
        // tasks on the workers; results must be indistinguishable from the
        // inline path and invisible in user-facing statistics.
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("big", 0.5);
        const N: usize = 10_000;
        for i in 0..N {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), N);
        assert_eq!(stats.accurate, N / 2);
        assert_eq!(stats.inverted, 0);
        rt.wait_all();
        assert_eq!(rt.stats().completed(), N, "system chunks must not count");
        assert_eq!(rt.stats().spawned(), N);
    }

    #[test]
    fn energy_report_reflects_executed_work() {
        let rt = Runtime::builder()
            .workers(2)
            .policy(Policy::GtbMaxBuffer)
            .governor(crate::env::ApproxGovernor::new(0.5))
            .build();
        let group = rt.create_group("energy", 0.5);
        for i in 0..64u32 {
            rt.task(|| std::thread::sleep(Duration::from_micros(300)))
                .approx(|| std::thread::sleep(Duration::from_micros(100)))
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        let report = rt.energy_report();
        assert_eq!(report.governor, "approx-step");
        // 32 approximate tasks were dispatched below nominal frequency.
        assert_eq!(report.scaled_tasks(), 32);
        assert!(report.busy_seconds() > 0.0);
        // Dilation: modelled busy exceeds measured busy.
        assert!(report.modelled_busy_seconds() > report.busy_seconds());
        let reading = report.reading();
        assert!(reading.joules > 0.0);
        assert!(reading.breakdown.dynamic_joules > 0.0);
        // Busy time is conserved between scheduler stats and energy shards.
        assert!((report.busy_seconds() - rt.stats().busy_core_seconds()).abs() < 1e-9);
    }

    #[test]
    fn find_group_after_label_spawn() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        rt.task(|| {}).label("implicit").spawn();
        rt.wait_all();
        let group = rt.find_group("implicit").expect("group should exist");
        assert_eq!(rt.group_stats(&group).total(), 1);
        assert!(rt.find_group("missing").is_none());
    }

    #[test]
    fn wait_all_with_ratio_applies_to_unlabelled_tasks() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        for i in 0..20u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .spawn();
        }
        rt.wait_all_with_ratio(0.5);
        assert_eq!(rt.stats().accurate(), 10);
        assert_eq!(rt.stats().approximate(), 10);
    }

    #[test]
    fn many_small_tasks_complete() {
        let rt = Runtime::builder().workers(8).policy(Policy::Lqh).build();
        let group = rt.create_group("many", 0.5);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..2000u32 {
            let c = counter.clone();
            rt.task(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .approx({
                let c = counter.clone();
                move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
        assert_eq!(rt.group_stats(&group).total(), 2000);
    }

    #[test]
    fn spawn_batch_runs_everything_under_every_policy() {
        for policy in [
            Policy::SignificanceAgnostic,
            Policy::Gtb { buffer_size: 16 },
            Policy::GtbMaxBuffer,
            Policy::Lqh,
        ] {
            let rt = count_runtime(policy);
            let group = rt.create_group("batch", 0.5);
            let ran = Arc::new(AtomicUsize::new(0));
            let ids = rt.batch().group(&group).spawn_tasks((0..500u32).map(|i| {
                let acc = ran.clone();
                let apx = ran.clone();
                BatchTask::new(move || {
                    acc.fetch_add(1, Ordering::Relaxed);
                })
                .approx(move || {
                    apx.fetch_add(1, Ordering::Relaxed);
                })
                .significance(((i % 9) + 1) as f64 / 10.0)
            }));
            assert_eq!(ids.len(), 500);
            assert!(!ids.is_empty());
            rt.wait_group(&group);
            assert_eq!(ran.load(Ordering::Relaxed), 500, "{policy:?}");
            let stats = rt.group_stats(&group);
            assert_eq!(stats.total(), 500, "{policy:?}");
            assert_eq!(rt.stats().spawned(), 500);
            if policy == Policy::GtbMaxBuffer {
                // Batched spawns reach the Max-Buffer classifier intact:
                // perfect-information ratio, zero inversions.
                assert_eq!(stats.accurate, 250);
                assert_eq!(stats.inverted, 0);
            }
        }
    }

    #[test]
    fn spawn_batch_ids_are_contiguous_and_interleave_with_spawn() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let single = rt.task(|| {}).spawn();
        let batch: Vec<TaskId> = rt
            .spawn_batch((0..10).map(|_| BatchTask::new(|| {})))
            .collect();
        assert_eq!(batch.len(), 10);
        for pair in batch.windows(2) {
            assert_eq!(pair[1].index(), pair[0].index() + 1, "contiguous ids");
        }
        assert!(batch[0] > single);
        let after = rt.task(|| {}).spawn();
        assert!(after > batch[9]);
        rt.wait_all();
        assert_eq!(rt.stats().completed(), 12);
    }

    #[test]
    fn spawn_all_applies_builder_defaults() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("all", 1.0);
        let ran = Arc::new(AtomicUsize::new(0));
        let ids = rt
            .batch()
            .group(&group)
            .significance(0.5)
            .spawn_all((0..32).map(|_| {
                let ran = ran.clone();
                move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }
            }));
        assert_eq!(ids.len(), 32);
        // Ratio 1.0: everything runs accurately regardless of significance.
        rt.wait_group(&group);
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        assert_eq!(rt.group_stats(&group).accurate, 32);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let ids = rt.spawn_batch(std::iter::empty());
        assert!(ids.is_empty());
        assert_eq!(ids.len(), 0);
        rt.wait_all();
        assert_eq!(rt.stats().spawned(), 0);
    }

    #[test]
    fn batch_builder_push_and_task_forms_compose() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let ran = Arc::new(AtomicUsize::new(0));
        let mut batch = rt.batch().task({
            let ran = ran.clone();
            BatchTask::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        });
        for _ in 0..3 {
            let ran = ran.clone();
            batch.push(BatchTask::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
        }
        assert_eq!(batch.spawn().len(), 4);
        rt.wait_all();
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn mid_barrier_spawn_into_buffering_group_does_not_deadlock() {
        // A task body spawning into its own (buffering) group while the
        // barrier is already waiting: the buffered children have no master
        // left to flush them, so the barrier predicate must re-flush and
        // the buffering spawn must nudge the blocked waiter.
        for policy in [Policy::Gtb { buffer_size: 64 }, Policy::GtbMaxBuffer] {
            let rt = Arc::new(count_runtime(policy));
            let group = rt.create_group("nested", 1.0);
            let ran = Arc::new(AtomicUsize::new(0));
            {
                let rt2 = rt.clone();
                let group2 = group.clone();
                let ran2 = ran.clone();
                rt.task(move || {
                    // One per-task spawn and one batch, both from inside a
                    // worker, both under the open barrier.
                    let r = ran2.clone();
                    rt2.task(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    })
                    .significance(1.0)
                    .group(&group2)
                    .spawn();
                    let ran3 = &ran2;
                    rt2.batch().group(&group2).spawn_tasks((0..5).map(|_| {
                        let r = ran3.clone();
                        BatchTask::new(move || {
                            r.fetch_add(1, Ordering::Relaxed);
                        })
                        .significance(1.0)
                    }));
                })
                .significance(1.0)
                .group(&group)
                .spawn();
            }
            rt.wait_group(&group);
            assert_eq!(ran.load(Ordering::Relaxed), 6, "{policy:?}");
            assert_eq!(rt.group_stats(&group).total(), 7, "{policy:?}");
        }
    }

    #[test]
    fn two_runtimes_do_not_cross_wire_worker_locals() {
        // A task body of one runtime spawning into another runtime must go
        // through the external (inbox) path, not the first runtime's deques.
        let a = Arc::new(count_runtime(Policy::SignificanceAgnostic));
        let b = Arc::new(count_runtime(Policy::SignificanceAgnostic));
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let b = b.clone();
            let ran = ran.clone();
            a.task(move || {
                let r = ran.clone();
                b.task(move || {
                    r.fetch_add(1, Ordering::Relaxed);
                })
                .spawn();
            })
            .spawn();
        }
        a.wait_all();
        b.wait_all();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    /// Occupy the single worker of `rt` until the returned sender fires.
    /// The task is guaranteed to be *running* (not just queued) on return,
    /// so everything spawned afterwards sits in the queue behind it.
    fn block_single_worker(rt: &Runtime) -> std::sync::mpsc::Sender<()> {
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        rt.task(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .spawn();
        started_rx.recv().unwrap();
        release_tx
    }

    #[test]
    fn cancel_token_skips_queued_tasks() {
        let rt = Runtime::builder()
            .workers(1)
            .policy(Policy::SignificanceAgnostic)
            .build();
        let release = block_single_worker(&rt);
        let token = CancelToken::new();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let r = ran.clone();
            rt.task(move || {
                r.fetch_add(1, Ordering::Relaxed);
            })
            .cancel_token(&token)
            .spawn();
        }
        token.cancel();
        release.send(()).unwrap();
        let summary = rt.wait_all();
        assert_eq!(
            ran.load(Ordering::Relaxed),
            0,
            "cancelled bodies must not run"
        );
        assert_eq!(summary.cancelled, 50);
        assert_eq!(summary.completed, 1, "only the blocker completed");
        assert_eq!(summary.spawned, 51);
        assert_eq!(summary.completed + summary.failed(), summary.spawned);
    }

    #[test]
    fn cancel_tasks_by_id_range() {
        let rt = Runtime::builder()
            .workers(1)
            .policy(Policy::SignificanceAgnostic)
            .build();
        let release = block_single_worker(&rt);
        let ran = Arc::new(AtomicUsize::new(0));
        let ids = rt.batch().spawn_tasks((0..40).map(|_| {
            let r = ran.clone();
            BatchTask::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            })
        }));
        rt.cancel_tasks(&ids);
        release.send(()).unwrap();
        let summary = rt.wait_all();
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert_eq!(summary.cancelled, 40);
        assert_eq!(summary.completed, 1);
    }

    #[test]
    fn cancel_group_skips_only_that_group() {
        let rt = Runtime::builder()
            .workers(1)
            .policy(Policy::SignificanceAgnostic)
            .build();
        let doomed = rt.create_group("doomed", 1.0);
        let alive = rt.create_group("alive", 1.0);
        let release = block_single_worker(&rt);
        let doomed_ran = Arc::new(AtomicUsize::new(0));
        let alive_ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let d = doomed_ran.clone();
            rt.task(move || {
                d.fetch_add(1, Ordering::Relaxed);
            })
            .group(&doomed)
            .spawn();
            let a = alive_ran.clone();
            rt.task(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
            .group(&alive)
            .spawn();
        }
        rt.cancel_group(&doomed);
        release.send(()).unwrap();
        let summary = rt.wait_all();
        assert_eq!(doomed_ran.load(Ordering::Relaxed), 0);
        assert_eq!(alive_ran.load(Ordering::Relaxed), 20);
        assert_eq!(summary.cancelled, 20);
        assert_eq!(summary.completed, 21);
    }

    #[test]
    fn poisoned_read_is_never_observed_clean() {
        let rt = Arc::new(count_runtime(Policy::SignificanceAgnostic));
        let key = DepKey::named("poisoned-input");
        let derived = DepKey::named("derived-output");
        rt.task(|| panic!("writer dies")).writes([key]).spawn();
        let observed_clean = Arc::new(AtomicBool::new(false));
        {
            let rt2 = rt.clone();
            let observed_clean = observed_clean.clone();
            rt.task(move || {
                if !rt2.is_poisoned(key) {
                    observed_clean.store(true, Ordering::SeqCst);
                }
            })
            .reads([key])
            .writes([derived])
            .spawn();
        }
        let summary = rt.wait_all();
        assert!(
            !observed_clean.load(Ordering::SeqCst),
            "a dependent of a panicked writer observed the key clean"
        );
        assert!(rt.is_poisoned(key));
        // The reader itself succeeded, but its output derives from poisoned
        // data: poison propagates transitively.
        assert!(rt.is_poisoned(derived));
        assert_eq!(summary.panicked, 1);
        assert_eq!(summary.completed, 1);
    }

    #[test]
    fn overload_sheds_approximate_tiers_only() {
        let rt = Runtime::builder()
            .workers(1)
            .policy(Policy::Lqh)
            .queue_watermark(1)
            .build();
        let crit = rt.create_group("critical", 1.0);
        let soft = rt.create_group("soft", 0.0);
        let release = block_single_worker(&rt);
        let ran_critical = Arc::new(AtomicUsize::new(0));
        let ran_soft = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = ran_critical.clone();
            rt.task(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .significance(1.0)
            .group(&crit)
            .spawn();
            let s = ran_soft.clone();
            rt.task(|| unreachable!("accurate tier must not run at ratio 0"))
                .approx(move || {
                    s.fetch_add(1, Ordering::Relaxed);
                })
                .significance(0.1)
                .group(&soft)
                .spawn();
        }
        release.send(()).unwrap();
        let summary = rt.wait_all();
        // Brownout: sheds strictly from the approximate tiers upward —
        // every critical task ran, nothing was cancelled, and the books
        // balance exactly.
        assert_eq!(ran_critical.load(Ordering::Relaxed), 50);
        assert_eq!(summary.cancelled, 0);
        assert!(summary.shed >= 1, "2x overload must shed: {summary:?}");
        assert_eq!(ran_soft.load(Ordering::Relaxed) + summary.shed, 50);
        assert_eq!(summary.spawned, 101);
        assert_eq!(summary.completed + summary.failed(), summary.spawned);
    }

    #[test]
    fn deadline_pressure_races_to_nominal() {
        let run = |deadline: Option<Duration>| {
            let rt = Runtime::builder()
                .workers(1)
                .policy(Policy::Lqh)
                .governor(crate::env::ApproxGovernor::new(0.5))
                .build();
            let group = rt.create_group("soft", 0.0);
            let mut builder = rt
                .task(|| {})
                .approx(|| std::thread::sleep(Duration::from_micros(100)))
                .significance(0.0)
                .group(&group);
            if let Some(d) = deadline {
                builder = builder.deadline(d);
            }
            builder.spawn();
            rt.wait_group(&group);
            (
                rt.energy_report().scaled_tasks(),
                rt.stats().deadline_misses(),
            )
        };
        // No deadline: the approximate task is dispatched below nominal.
        let (scaled, misses) = run(None);
        assert_eq!(scaled, 1);
        assert_eq!(misses, 0);
        // An already-expired deadline: the dispatch races to nominal and
        // the miss is recorded.
        let (scaled, misses) = run(Some(Duration::ZERO));
        assert_eq!(scaled, 0, "deadline pressure must override scaling");
        assert!(misses >= 1);
    }

    #[test]
    fn panic_during_barrier_releases_waiter_with_failure_visible() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let group = rt.create_group("mixed", 1.0);
        for i in 0..8 {
            rt.task(move || {
                if i % 2 == 0 {
                    panic!("task {i} dies");
                }
            })
            .group(&group)
            .spawn();
        }
        let summary = rt.wait_group(&group);
        assert_eq!(summary.panicked, 4);
        assert_eq!(summary.completed, 4);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.panicked, 4);
        assert_eq!(stats.total(), 4, "only successful executions count");
    }

    #[test]
    fn panic_inside_gtb_buffered_task_is_contained() {
        for policy in [Policy::Gtb { buffer_size: 4 }, Policy::GtbMaxBuffer] {
            let rt = count_runtime(policy);
            let group = rt.create_group("explosive", 1.0);
            for _ in 0..10 {
                rt.task(|| panic!("buffered boom")).group(&group).spawn();
            }
            let summary = rt.wait_group(&group);
            assert_eq!(summary.panicked, 10, "{policy:?}");
            assert_eq!(summary.completed, 0, "{policy:?}");
            assert_eq!(rt.group_stats(&group).panicked, 10, "{policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn wait_all_with_nan_ratio_panics() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        rt.wait_all_with_ratio(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn wait_group_with_out_of_range_ratio_panics() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let group = rt.create_group("g", 1.0);
        rt.wait_group_with_ratio(&group, 1.5);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn create_group_with_negative_ratio_panics() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let _ = rt.create_group("negative", -0.1);
    }

    #[test]
    #[should_panic(expected = "watermark must be positive")]
    fn zero_queue_watermark_rejected() {
        let _ = Runtime::builder().queue_watermark(0);
    }

    #[test]
    #[should_panic(expected = "watermark must be a finite rate")]
    fn nan_miss_watermark_rejected() {
        let _ = Runtime::builder().deadline_miss_watermark(f64::NAN);
    }

    #[test]
    fn inert_robustness_features_do_not_change_outcomes() {
        // Watermarks never crossed, deadlines far away, a token never
        // cancelled: the robustness plumbing must be invisible.
        let rt = Runtime::builder()
            .workers(4)
            .policy(Policy::GtbMaxBuffer)
            .queue_watermark(1_000_000)
            .deadline_miss_watermark(1.0)
            .build();
        let group = rt.create_group("inert", 0.5);
        let token = CancelToken::new();
        for i in 0..100u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .deadline(Duration::from_secs(3600))
                .cancel_token(&token)
                .spawn();
        }
        let summary = rt.wait_group(&group);
        assert!(summary.is_clean(), "{summary:?}");
        assert_eq!(summary.completed, 100);
        assert_eq!(summary.deadline_misses, 0);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), 100);
        assert_eq!(stats.accurate, 50);
    }
}
